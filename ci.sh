#!/usr/bin/env bash
# CI gate for the meg workspace. Mirrors what a hosted pipeline would run;
# everything works fully offline (dependencies are vendored under
# crates/compat/). Run from the repository root:
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build and example smoke-runs
#
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"

step() { printf '\n\033[1m== %s\033[0m\n' "$*"; }

step "markdown link check (intra-repo links in README + docs)"
LINK_ERR_FILE=$(mktemp)
for md in README.md PAPER.md PAPERS.md ROADMAP.md CHANGES.md docs/*.md crates/*/README.md; do
    [ -f "$md" ] || continue
    # Extract [text](target) links, keep repo-relative targets only (skip
    # http(s), mailto, and pure #anchors), strip any #fragment.
    { grep -oE '\]\([^)]+\)' "$md" || true; } |
    sed -e 's/^](//' -e 's/)$//' -e 's/#.*$//' |
    while read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|"") continue ;;
        esac
        # Resolve relative to the linking file only — a root-relative
        # fallback would pass links that 404 when the file is rendered.
        if [ ! -e "$(dirname "$md")/$target" ]; then
            echo "broken link in $md: $target" | tee -a "$LINK_ERR_FILE" >&2
        fi
    done
done
if [ -s "$LINK_ERR_FILE" ]; then
    echo "$(wc -l < "$LINK_ERR_FILE") broken intra-repo markdown link(s)" >&2
    rm -f "$LINK_ERR_FILE"
    exit 1
fi
rm -f "$LINK_ERR_FILE"
echo "all intra-repo markdown links resolve"

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (all targets, -D warnings)"
cargo clippy -q --workspace --all-targets --offline -- -D warnings

step "cargo build"
cargo build --workspace --offline

if [ "$MODE" != "quick" ]; then
    step "cargo build --release (tier-1)"
    cargo build --release --workspace --offline
fi

step "cargo test -q (tier-1: unit + property + integration + doc)"
cargo test -q --workspace --offline

step "test-count floor (the tier-1 suite must not shrink)"
TEST_COUNT=$(cargo test -q --workspace --offline -- --list 2>/dev/null | grep -c ': test')
TEST_FLOOR=600
if [ "$TEST_COUNT" -lt "$TEST_FLOOR" ]; then
    echo "test count $TEST_COUNT fell below the floor of $TEST_FLOOR" >&2
    exit 1
fi
echo "test count: $TEST_COUNT (floor $TEST_FLOOR)"

if [ "$MODE" != "quick" ]; then
    step "test-stats (gof + stepping-equivalence + delta-consistency, release)"
    cargo test -q --release --offline -p meg-stats gof
    cargo test -q --release --offline -p meg-edge --test stepping_equivalence
    cargo test -q --release --offline -p meg-graph --test delta_consistency
fi

step "cargo doc --workspace --no-deps (must be warning-free)"
DOCWARN=$(cargo doc --workspace --no-deps --offline 2>&1 | grep -c '^warning' || true)
if [ "$DOCWARN" -ne 0 ]; then
    echo "cargo doc produced $DOCWARN warning(s)" >&2
    cargo doc --workspace --no-deps --offline 2>&1 | grep -A4 '^warning' >&2
    exit 1
fi

if [ "$MODE" != "quick" ]; then
    step "example smoke-runs (MEG_EXAMPLE_SCALE=0.1)"
    for ex in examples/*.rs; do
        name="$(basename "$ex" .rs)"
        echo "-- example $name"
        MEG_EXAMPLE_SCALE=0.1 cargo run -q --release --offline --example "$name" >/dev/null
    done

    step "meg-lab smoke (built-in scenario, JSON-lines schema)"
    SMOKE_OUT=$(MEG_SCALE=0.1 cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        run quick_smoke --trials 2 --format json)
    ROWS=$(printf '%s\n' "$SMOKE_OUT" | grep -c '^{"scenario":.*"completion_rate":.*}$' || true)
    if [ "$ROWS" -lt 1 ]; then
        echo "meg-lab smoke produced no well-formed JSON-lines rows:" >&2
        printf '%s\n' "$SMOKE_OUT" >&2
        exit 1
    fi
    echo "meg-lab emitted $ROWS well-formed JSON rows"

    step "meg-lab sharded smoke (0/2 + 1/2 + merge, byte-identical to unsharded)"
    MEG_LAB="cargo run -q --release --offline -p meg-engine --bin meg-lab --"
    DIST_DIR=$(mktemp -d)
    COMMON="--scale 0.1 --trials 2 --seed 2009 --format json"
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON > "$DIST_DIR/unsharded.jsonl"
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON --shard 0/2 --out "$DIST_DIR/parts" > /dev/null
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON --shard 1/2 --out "$DIST_DIR/parts" > /dev/null
    $MEG_LAB merge "$DIST_DIR/parts" > "$DIST_DIR/merged.jsonl" 2> /dev/null
    if ! diff -u "$DIST_DIR/unsharded.jsonl" "$DIST_DIR/merged.jsonl"; then
        echo "sharded+merged output differs from the unsharded run" >&2
        rm -rf "$DIST_DIR"
        exit 1
    fi
    echo "sharded run merged byte-identically ($(wc -l < "$DIST_DIR/merged.jsonl") rows)"
    rm -rf "$DIST_DIR"

    step "meg-lab adaptive smoke (--target-stderr converges on every row)"
    ADAPTIVE_OUT=$(MEG_SCALE=0.1 cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        run quick_smoke --seed 2009 --target-stderr 0.75 --min-trials 2 --max-trials 4 \
        --format json)
    # A row is acceptable iff it met the target (achieved_stderr ≤ eps) or
    # spent the whole budget (trials == max_trials) — the acceptance
    # contract of adaptive mode.
    if ! printf '%s\n' "$ADAPTIVE_OUT" | awk -F'"achieved_stderr":' '
        /^\{/ {
            rows++
            split($2, a, ","); se = a[1]
            if ($0 ~ /"trials":4,/ || (se != "null" && se + 0 <= 0.75)) converged++
        }
        END {
            printf "adaptive smoke: %d of %d rows converged or exhausted the budget\n", \
                converged, rows
            exit (rows < 1 || converged < rows) ? 1 : 0
        }'; then
        printf '%s\n' "$ADAPTIVE_OUT" >&2
        exit 1
    fi

    step "bench-smoke (meg-lab bench: harness runs, JSON well-formed)"
    BENCH_DIR=$(mktemp -d)
    cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        bench --repetitions 2 --warmup 1 --scale 0.1 \
        --label ci-smoke --out "$BENCH_DIR/bench.json" > "$BENCH_DIR/lines.jsonl"
    python3 - "$BENCH_DIR" <<'PYEOF'
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
doc = json.loads((d / "bench.json").read_text())
assert doc["label"] == "ci-smoke" and doc["repetitions"] == 2, "bad meta"
results = doc["results"]
assert len(results) >= 5, f"only {len(results)} bench results"
for r in results:
    for key in ("bench", "median_ms", "iqr_ms", "min_ms", "max_ms", "samples_ms",
                "checksum"):
        assert key in r, f"missing {key} in {r}"
    assert r["min_ms"] >= 0 and r["median_ms"] >= r["min_ms"], f"bad stats in {r}"
    # Raw repetitions ride along for offline noise analysis: one sample per
    # measured repetition, each inside the reported [min, max] envelope.
    assert len(r["samples_ms"]) == doc["repetitions"], f"bad samples_ms in {r}"
    assert all(r["min_ms"] <= s <= r["max_ms"] for s in r["samples_ms"]), \
        f"samples outside [min, max] in {r}"
lines = [json.loads(l) for l in (d / "lines.jsonl").read_text().splitlines() if l.strip()]
assert len(lines) == len(results), "stdout lines and document disagree"
print(f"bench-smoke: {len(results)} workloads, JSON well-formed")
# A/B stepping pair: the per-pair and transitions dense-flood workloads run
# the same population, so both must be present and report sane medians.
by_name = {r["bench"]: r for r in results}
a = by_name.get("edge_dense_flood_n4096")
b = by_name.get("edge_dense_flood_fast_n4096")
assert a and b, "stepping A/B pair missing from bench results"
ratio = a["median_ms"] / b["median_ms"] if b["median_ms"] > 0 else float("inf")
print(f"bench-smoke A/B: dense_flood per_pair {a['median_ms']:.2f} ms vs "
      f"transitions {b['median_ms']:.2f} ms ({ratio:.1f}x at smoke scale)")
# Golden checksum: the scale-0.1 dense flood is fully deterministic, so its
# checksum is a behaviour fingerprint of the whole stepping + flooding
# pipeline — any drift in the RNG schedule or snapshot contents changes it.
c = by_name.get("edge_dense_flood_n1024")
assert c, "edge_dense_flood_n1024 missing from bench results"
assert c["checksum"] == 315, \
    f"edge_dense_flood_n1024 checksum drifted: {c['checksum']} != 315"
print("bench-smoke golden: edge_dense_flood_n1024 checksum 315 ok")
PYEOF
    rm -rf "$BENCH_DIR"

    step "bench baseline gate smoke (--baseline BENCH_PR8.json on one workload)"
    # Full-scale single workload (~0.3 s): the checksum must equal the
    # committed PR 8 record exactly, and the median must stay within a loose
    # ratio (this box is 1-core and noisy; docs/PERF.md has the honest A/B
    # procedure — this smoke asserts the gate *mechanism*, not peak perf).
    cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        bench geo_flood_n4096 --repetitions 3 --warmup 1 \
        --baseline BENCH_PR8.json --baseline-threshold 1.5 > /dev/null
    # The gate must also *fail* correctly: an absurd threshold flags the
    # workload and exits 4.
    if cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        bench geo_flood_n4096 --repetitions 2 --warmup 1 \
        --baseline BENCH_PR8.json --baseline-threshold 0.001 \
        > /dev/null 2>&1; then
        echo "baseline gate failed to flag a regression at threshold 0.001" >&2
        exit 1
    fi
    echo "baseline gate: pass path clean, regression path exits nonzero"

    step "metrics-smoke (--metrics report: counters live, stdout untouched)"
    MET_DIR=$(mktemp -d)
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON > "$MET_DIR/off.jsonl"
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON --metrics report \
        > "$MET_DIR/on.jsonl" 2> "$MET_DIR/metrics.txt"
    if ! diff -u "$MET_DIR/off.jsonl" "$MET_DIR/on.jsonl"; then
        echo "row stream changed when the recorder was installed" >&2
        rm -rf "$MET_DIR"
        exit 1
    fi
    grep -q "── metrics report" "$MET_DIR/metrics.txt" || {
        echo "no metrics report on stderr" >&2; cat "$MET_DIR/metrics.txt" >&2; exit 1; }
    # Counters that must be present AND nonzero for this workload.
    for c in edge_births edge_deaths rng_draws bucket_scan_visits rounds trials; do
        grep -qE "^  $c +[1-9][0-9]*$" "$MET_DIR/metrics.txt" || {
            echo "counter $c missing or zero in the metrics report:" >&2
            cat "$MET_DIR/metrics.txt" >&2
            rm -rf "$MET_DIR"
            exit 1
        }
    done
    # Span timings must have been recorded for the core phases.
    for s in advance trial cell; do
        grep -qE "^  $s +[1-9][0-9]*" "$MET_DIR/metrics.txt" || {
            echo "span $s missing from the metrics report" >&2
            rm -rf "$MET_DIR"
            exit 1
        }
    done
    echo "metrics report carries live counters and spans; rows byte-identical"
    rm -rf "$MET_DIR"

    step "protocol-family smoke (epidemics + rumor + byzantine, per-protocol counters live)"
    PROTO_DIR=$(mktemp -d)
    proto_smoke() {
        scenario=$1; shift
        # shellcheck disable=SC2086
        $MEG_LAB run "$scenario" $COMMON --metrics report \
            > "$PROTO_DIR/$scenario.jsonl" 2> "$PROTO_DIR/$scenario.metrics.txt"
        PROWS=$(grep -c '^{"scenario":.*"completion_rate":.*}$' "$PROTO_DIR/$scenario.jsonl" || true)
        if [ "$PROWS" -lt 1 ]; then
            echo "$scenario produced no well-formed JSON rows" >&2
            cat "$PROTO_DIR/$scenario.jsonl" >&2
            exit 1
        fi
        for c in "$@"; do
            grep -qE "^  $c +[1-9][0-9]*$" "$PROTO_DIR/$scenario.metrics.txt" || {
                echo "counter $c missing or zero for $scenario:" >&2
                cat "$PROTO_DIR/$scenario.metrics.txt" >&2
                exit 1
            }
        done
        echo "$scenario: $PROWS rows, counters live ($*)"
    }
    proto_smoke epidemic_threshold infections recoveries
    proto_smoke rumor_dynamism rumor_pushes
    proto_smoke byzantine_tamper tampered_adoptions
    rm -rf "$PROTO_DIR"

    step "distributed observability smoke (fault-injected pool: shipping + trace + progress)"
    OBS_DIR=$(mktemp -d)
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON > "$OBS_DIR/reference.jsonl"
    # Every worker aborts after one cell, so the sweep only completes through
    # the respawn path — with the whole observability stack turned on.
    # shellcheck disable=SC2086
    MEG_PROGRESS_FORCE=1 $MEG_LAB run quick_smoke $COMMON \
        --workers 2 --worker-fail-after 1 --verbose \
        --metrics jsonl --trace "$OBS_DIR/trace.json" --progress \
        > "$OBS_DIR/rows.jsonl" 2> "$OBS_DIR/stderr.txt"
    if ! diff -u "$OBS_DIR/reference.jsonl" "$OBS_DIR/rows.jsonl"; then
        echo "row stream changed under workers + shipping + trace + progress" >&2
        rm -rf "$OBS_DIR"
        exit 1
    fi
    python3 - "$OBS_DIR" <<'PYEOF'
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
cells = len((d / "reference.jsonl").read_text().splitlines())
lines = (d / "stderr.txt").read_text().splitlines()

# Narrated faults must agree with the merged worker_respawns counter.
narrated = sum(1 for l in lines if "worker respawned" in l)
assert narrated >= 1, "fault injection produced no narrated respawns"
merged = [json.loads(l) for l in lines if l.startswith('{"counters":')][-1]
counted = merged["counters"].get("worker_respawns", 0)
assert counted == narrated, f"worker_respawns {counted} != narrated {narrated}"

# Worker-side counters must be shipped, tagged per worker, and reach the
# merged snapshot (the coordinator itself runs no trials).
workers = [json.loads(l) for l in lines if l.startswith('{"worker":')]
assert len(workers) == 2, f"expected 2 per-worker lines, got {len(workers)}"
shipped = sum(w["metrics"].get("counters", {}).get("trials", 0) for w in workers)
assert shipped > 0, "worker-side trial counters never arrived"
assert merged["counters"].get("trials", 0) >= shipped, "merge lost worker counters"

# The progress meter drew (forced on via MEG_PROGRESS_FORCE).
assert any("cells" in l and "rows/s" in l for l in lines), "no progress line"

# The trace journal is valid JSON with >= 1 complete-phase event per cell.
trace = json.loads((d / "trace.json").read_text())
spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
assert spans >= cells, f"{spans} complete spans for {cells} cells"
print(f"distributed observability smoke: {cells} cells, {narrated} respawn(s) "
      f"(counter agrees), {shipped} worker-side trials shipped, "
      f"{spans} trace spans")
PYEOF
    rm -rf "$OBS_DIR"

    step "metrics overhead guard (dense stepping bench, on/off median ratio ≤ 1.05)"
    OVERHEAD_OUT=$(cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        bench --overhead edge_dense_flood_fast_n4096 --repetitions 5 --warmup 2 --scale 0.25)
    python3 - "$OVERHEAD_OUT" <<'PYEOF'
import json, sys
m = json.loads(sys.argv[1].splitlines()[0])
print(f"overhead: off {m['off_median_ms']:.2f} ms vs on {m['on_median_ms']:.2f} ms "
      f"(ratio {m['ratio']:.4f})")
assert m["ratio"] <= 1.05, f"metrics overhead {m['ratio']:.4f} exceeds the 5% budget"
PYEOF

    step "bench compile check"
    cargo check -q --workspace --benches --offline
fi

printf '\n\033[1;32mCI gate passed (%s mode).\033[0m\n' "$MODE"
