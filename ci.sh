#!/usr/bin/env bash
# CI gate for the meg workspace. Mirrors what a hosted pipeline would run;
# everything works fully offline (dependencies are vendored under
# crates/compat/). Run from the repository root:
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build and example smoke-runs
#
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"

step() { printf '\n\033[1m== %s\033[0m\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (all targets, -D warnings)"
cargo clippy -q --workspace --all-targets --offline -- -D warnings

step "cargo build"
cargo build --workspace --offline

if [ "$MODE" != "quick" ]; then
    step "cargo build --release (tier-1)"
    cargo build --release --workspace --offline
fi

step "cargo test -q (tier-1: unit + property + integration + doc)"
cargo test -q --workspace --offline

step "cargo doc --workspace --no-deps (must be warning-free)"
DOCWARN=$(cargo doc --workspace --no-deps --offline 2>&1 | grep -c '^warning' || true)
if [ "$DOCWARN" -ne 0 ]; then
    echo "cargo doc produced $DOCWARN warning(s)" >&2
    cargo doc --workspace --no-deps --offline 2>&1 | grep -A4 '^warning' >&2
    exit 1
fi

if [ "$MODE" != "quick" ]; then
    step "example smoke-runs (MEG_EXAMPLE_SCALE=0.1)"
    for ex in examples/*.rs; do
        name="$(basename "$ex" .rs)"
        echo "-- example $name"
        MEG_EXAMPLE_SCALE=0.1 cargo run -q --release --offline --example "$name" >/dev/null
    done

    step "meg-lab smoke (built-in scenario, JSON-lines schema)"
    SMOKE_OUT=$(MEG_SCALE=0.1 cargo run -q --release --offline -p meg-engine --bin meg-lab -- \
        run quick_smoke --trials 2 --format json)
    ROWS=$(printf '%s\n' "$SMOKE_OUT" | grep -c '^{"scenario":.*"completion_rate":.*}$' || true)
    if [ "$ROWS" -lt 1 ]; then
        echo "meg-lab smoke produced no well-formed JSON-lines rows:" >&2
        printf '%s\n' "$SMOKE_OUT" >&2
        exit 1
    fi
    echo "meg-lab emitted $ROWS well-formed JSON rows"

    step "meg-lab sharded smoke (0/2 + 1/2 + merge, byte-identical to unsharded)"
    MEG_LAB="cargo run -q --release --offline -p meg-engine --bin meg-lab --"
    DIST_DIR=$(mktemp -d)
    COMMON="--scale 0.1 --trials 2 --seed 2009 --format json"
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON > "$DIST_DIR/unsharded.jsonl"
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON --shard 0/2 --out "$DIST_DIR/parts" > /dev/null
    # shellcheck disable=SC2086
    $MEG_LAB run quick_smoke $COMMON --shard 1/2 --out "$DIST_DIR/parts" > /dev/null
    $MEG_LAB merge "$DIST_DIR/parts" > "$DIST_DIR/merged.jsonl" 2> /dev/null
    if ! diff -u "$DIST_DIR/unsharded.jsonl" "$DIST_DIR/merged.jsonl"; then
        echo "sharded+merged output differs from the unsharded run" >&2
        rm -rf "$DIST_DIR"
        exit 1
    fi
    echo "sharded run merged byte-identically ($(wc -l < "$DIST_DIR/merged.jsonl") rows)"
    rm -rf "$DIST_DIR"

    step "bench compile check"
    cargo check -q --workspace --benches --offline
fi

printf '\n\033[1;32mCI gate passed (%s mode).\033[0m\n' "$MODE"
