//! Lossless JSON transport for [`MetricsSnapshot`].
//!
//! `meg-obs` sits below the engine in the dependency DAG and carries no JSON
//! layer of its own, so the snapshot ⇄ [`Json`] codec lives here. Workers
//! serialize counter-delta snapshots with [`snapshot_to_json`] and ship them
//! over the JSON-lines protocol; the coordinator parses them back with
//! [`snapshot_from_json`] and pools them via `MetricsSnapshot::merge`.
//!
//! The codec is **lossless over the full `u64` range**: values ≤ 2⁵³ render
//! as plain JSON numbers, larger ones as decimal strings (the same
//! convention the engine uses for raw seeds), and the parser accepts either
//! form. Span histograms are encoded sparsely as `[bucket, count]` pairs so
//! a mostly-empty 48-bucket histogram costs a few bytes on the wire.

use crate::json::Json;
use meg_obs::{GaugeStats, MetricsSnapshot, SpanStats, SPAN_HIST_BUCKETS};

/// Encodes a `u64` losslessly: a JSON number when exactly representable as
/// `f64`, a decimal string beyond 2⁵³.
fn u64_to_json(v: u64) -> Json {
    if v <= (1u64 << 53) {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

/// Decodes a `u64` written by [`u64_to_json`] (number or decimal string).
fn u64_from_json(v: &Json) -> Result<u64, String> {
    match v {
        Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => Ok(*x as u64),
        Json::Str(s) => s.parse::<u64>().map_err(|e| format!("bad u64 {s:?}: {e}")),
        other => Err(format!("expected u64, got {other}")),
    }
}

fn field(obj: &Json, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(v) => u64_from_json(v).map_err(|e| format!("{key}: {e}")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Serializes a snapshot to its transport form. Zero-valued counters, empty
/// gauges, and empty spans are omitted — [`snapshot_from_json`] restores the
/// full vocabulary with zeros, so the round trip is still exact.
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> Json {
    let counters: Vec<(String, Json)> = snap
        .counters
        .iter()
        .filter(|(_, v)| *v > 0)
        .map(|&(name, v)| (name.to_string(), u64_to_json(v)))
        .collect();
    let gauges: Vec<(String, Json)> = snap
        .gauges
        .iter()
        .filter(|g| g.count > 0)
        .map(|g| {
            (
                g.name.to_string(),
                Json::obj([
                    ("count", u64_to_json(g.count)),
                    ("sum", u64_to_json(g.sum)),
                    ("min", u64_to_json(g.min)),
                    ("max", u64_to_json(g.max)),
                ]),
            )
        })
        .collect();
    let spans: Vec<(String, Json)> = snap
        .spans
        .iter()
        .filter(|s| s.count > 0)
        .map(|s| {
            let hist: Vec<Json> = s
                .hist
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(b, &n)| Json::Arr(vec![Json::Num(b as f64), u64_to_json(n)]))
                .collect();
            (
                s.name.to_string(),
                Json::obj([
                    ("count", u64_to_json(s.count)),
                    ("total_ns", u64_to_json(s.total_ns)),
                    ("min_ns", u64_to_json(s.min_ns)),
                    ("max_ns", u64_to_json(s.max_ns)),
                    ("hist", Json::Arr(hist)),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("spans", Json::Obj(spans)),
    ])
}

/// Parses a snapshot from its transport form. Missing sections and names
/// decode as zeros; names outside the current vocabulary are ignored (a
/// newer peer may know counters this build does not).
pub fn snapshot_from_json(json: &Json) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::empty();
    if let Some(Json::Obj(pairs)) = json.get("counters") {
        for (key, value) in pairs {
            if let Some(slot) = snap.counters.iter_mut().find(|(n, _)| n == key) {
                slot.1 = u64_from_json(value).map_err(|e| format!("counter {key}: {e}"))?;
            }
        }
    }
    if let Some(Json::Obj(pairs)) = json.get("gauges") {
        for (key, value) in pairs {
            let Some(slot) = snap.gauges.iter_mut().find(|g| g.name == key) else {
                continue;
            };
            *slot = GaugeStats {
                name: slot.name,
                count: field(value, "count").map_err(|e| format!("gauge {key}: {e}"))?,
                sum: field(value, "sum").map_err(|e| format!("gauge {key}: {e}"))?,
                min: field(value, "min").map_err(|e| format!("gauge {key}: {e}"))?,
                max: field(value, "max").map_err(|e| format!("gauge {key}: {e}"))?,
            };
        }
    }
    if let Some(Json::Obj(pairs)) = json.get("spans") {
        for (key, value) in pairs {
            let Some(slot) = snap.spans.iter_mut().find(|s| s.name == key) else {
                continue;
            };
            let mut hist = [0u64; SPAN_HIST_BUCKETS];
            for entry in value.get("hist").and_then(Json::as_arr).unwrap_or(&[]) {
                let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    format!("span {key}: hist entry is not a [bucket, count] pair")
                })?;
                let bucket = pair[0]
                    .as_usize()
                    .filter(|&b| b < SPAN_HIST_BUCKETS)
                    .ok_or_else(|| format!("span {key}: hist bucket out of range"))?;
                hist[bucket] = u64_from_json(&pair[1]).map_err(|e| format!("span {key}: {e}"))?;
            }
            *slot = SpanStats {
                name: slot.name,
                count: field(value, "count").map_err(|e| format!("span {key}: {e}"))?,
                total_ns: field(value, "total_ns").map_err(|e| format!("span {key}: {e}"))?,
                min_ns: field(value, "min_ns").map_err(|e| format!("span {key}: {e}"))?,
                max_ns: field(value, "max_ns").map_err(|e| format!("span {key}: {e}"))?,
                hist,
            };
        }
    }
    Ok(snap)
}

/// Pools any number of snapshots into one, starting from the empty identity.
pub fn merge_all<'a, I: IntoIterator<Item = &'a MetricsSnapshot>>(snaps: I) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::empty();
    for s in snaps {
        merged.merge(s);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_empty_snapshot() {
        let snap = MetricsSnapshot::empty();
        let back = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn round_trips_values_beyond_f64_integer_precision() {
        let mut snap = MetricsSnapshot::empty();
        snap.counters[0].1 = u64::MAX;
        snap.counters[1].1 = (1u64 << 53) + 1;
        snap.gauges[0].count = 3;
        snap.gauges[0].sum = u64::MAX - 1;
        snap.gauges[0].min = 1;
        snap.gauges[0].max = u64::MAX - 7;
        snap.spans[0].count = u64::MAX;
        snap.spans[0].total_ns = u64::MAX;
        snap.spans[0].min_ns = 9;
        snap.spans[0].max_ns = u64::MAX;
        snap.spans[0].hist[SPAN_HIST_BUCKETS - 1] = u64::MAX;
        let text = snapshot_to_json(&snap).render();
        let back = snapshot_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_malformed_sections() {
        for bad in [
            r#"{"counters":{"trials":-1}}"#,
            r#"{"counters":{"trials":1.5}}"#,
            r#"{"gauges":{"queue_depth":{"count":1}}}"#,
            r#"{"spans":{"advance":{"count":1,"total_ns":1,"min_ns":1,"max_ns":1,"hist":[[99,1]]}}}"#,
            r#"{"spans":{"advance":{"count":1,"total_ns":1,"min_ns":1,"max_ns":1,"hist":[3]}}}"#,
        ] {
            let json = Json::parse(bad).unwrap();
            assert!(snapshot_from_json(&json).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn unknown_names_are_ignored_and_missing_sections_decode_to_zero() {
        let json = Json::parse(r#"{"counters":{"trials":4,"not_a_counter":9}}"#).unwrap();
        let snap = snapshot_from_json(&json).unwrap();
        assert_eq!(snap.counter("trials"), 4);
        assert_eq!(snap.counter("edge_births"), 0);
        assert_eq!(snap.span("advance").unwrap().count, 0);
    }

    #[test]
    fn merge_all_pools_counters() {
        let mut a = MetricsSnapshot::empty();
        a.counters[0].1 = 2;
        let mut b = MetricsSnapshot::empty();
        b.counters[0].1 = 5;
        let merged = merge_all([&a, &b]);
        assert_eq!(merged.counters[0].1, 7);
    }
}
