//! Output sinks: one result stream, three renderings.
//!
//! Every engine run (and, through [`render_table`], every legacy `meg-bench`
//! table) can be emitted as
//!
//! * [`OutputFormat::Table`] — aligned ASCII for terminals;
//! * [`OutputFormat::Json`] — JSON-lines, one object per row, for machine
//!   consumption (the perf-trajectory format the ROADMAP asks for);
//! * [`OutputFormat::Csv`] — flat CSV for spreadsheets and plotting.
//!
//! The `MEG_OUTPUT` environment variable selects the format for binaries
//! that do not take a `--format` flag.

use crate::json::Json;
use crate::run::Row;
use meg_stats::table::fmt_f64;
use meg_stats::Table;
use std::str::FromStr;

/// The supported output formats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned ASCII table (default).
    #[default]
    Table,
    /// JSON-lines: one JSON object per row.
    Json,
    /// CSV with a header row.
    Csv,
}

impl FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "table" | "ascii" => Ok(OutputFormat::Table),
            "json" | "jsonl" | "json-lines" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!(
                "unknown output format `{other}` (expected table|json|csv)"
            )),
        }
    }
}

/// Reads the output format from `MEG_OUTPUT` (default [`OutputFormat::Table`];
/// unknown values fall back to the default so legacy binaries never fail on
/// env contents).
pub fn format_from_env() -> OutputFormat {
    std::env::var("MEG_OUTPUT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_default()
}

/// Fixed CSV header for engine result rows.
pub const CSV_HEADER: &str = "scenario,cell,family,substrate,protocol,params,regime,seed,trials,\
requested_trials,achieved_stderr,completion_rate,mean_rounds,min_rounds,max_rounds,std_rounds,\
mean_messages";

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders one engine row as a CSV record (no trailing newline). Every
/// string field is escaped (RFC-4180 style: quoted when it contains a comma,
/// quote, or newline, with quotes doubled), so scenario names, protocol
/// labels, param keys, and regime strings can carry arbitrary text.
pub fn row_to_csv(row: &Row) -> String {
    let opt = |f: fn(&meg_stats::Summary) -> f64| match &row.rounds {
        Some(s) => format!("{}", f(s)),
        None => String::new(),
    };
    [
        csv_escape(&row.scenario),
        row.cell.to_string(),
        csv_escape(&row.family),
        csv_escape(&row.substrate),
        csv_escape(&row.protocol),
        csv_escape(&row.params_compact()),
        csv_escape(&row.regime),
        row.seed.to_string(),
        row.trials.to_string(),
        row.requested_trials.to_string(),
        match row.achieved_stderr {
            Some(se) => format!("{se}"),
            None => String::new(),
        },
        format!("{}", row.completion_rate),
        opt(|s| s.mean),
        opt(|s| s.min),
        opt(|s| s.max),
        opt(|s| s.std_dev),
        format!("{}", row.mean_messages),
    ]
    .join(",")
}

/// Builds the ASCII table for a batch of engine rows.
pub fn rows_to_table(caption: &str, rows: &[Row]) -> Table {
    let mut table = Table::new(
        caption,
        &[
            "cell",
            "substrate",
            "protocol",
            "params",
            "regime",
            "trials",
            "completion",
            "mean T",
            "±se",
            "range",
            "messages",
        ],
    );
    for row in rows {
        let (mean, range) = match &row.rounds {
            Some(s) => (
                format!("{:.2}", s.mean),
                format!("{:.0}–{:.0}", s.min, s.max),
            ),
            None => ("-".into(), "-".into()),
        };
        table.push_row(&[
            row.cell.to_string(),
            row.substrate.clone(),
            row.protocol.clone(),
            row.params_compact(),
            row.regime.clone(),
            // `executed/requested` makes adaptive early stops visible.
            if row.trials == row.requested_trials {
                row.trials.to_string()
            } else {
                format!("{}/{}", row.trials, row.requested_trials)
            },
            format!("{:.0}%", row.completion_rate * 100.0),
            mean,
            match row.achieved_stderr {
                Some(se) => format!("{se:.2}"),
                None => "-".into(),
            },
            range,
            fmt_f64(row.mean_messages),
        ]);
    }
    table
}

/// Renders a batch of engine rows in the given format (ends with a newline
/// when non-empty).
pub fn render_rows(caption: &str, rows: &[Row], format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => rows_to_table(caption, rows).render_ascii(),
        OutputFormat::Json => {
            let mut out = String::new();
            for row in rows {
                out.push_str(&row.to_json().render());
                out.push('\n');
            }
            out
        }
        OutputFormat::Csv => {
            let mut out = String::from(CSV_HEADER);
            out.push('\n');
            for row in rows {
                out.push_str(&row_to_csv(row));
                out.push('\n');
            }
            out
        }
    }
}

/// Renders a legacy `meg_stats::Table` in the given format. This is what
/// routes the pre-engine experiment binaries through the same sink enum:
/// `Json` emits one object per table row keyed by the column headers.
pub fn render_table(table: &Table, format: OutputFormat) -> String {
    match format {
        OutputFormat::Table => table.render_ascii(),
        OutputFormat::Csv => table.render_csv(),
        OutputFormat::Json => {
            let header = table.header();
            let mut out = String::new();
            for r in 0..table.num_rows() {
                let mut pairs: Vec<(String, Json)> = Vec::with_capacity(header.len() + 1);
                if !table.caption().is_empty() {
                    pairs.push(("table".into(), Json::Str(table.caption().into())));
                }
                for (c, name) in header.iter().enumerate() {
                    let cell = table.cell(r, c).unwrap_or_default();
                    // Numbers pass through as JSON numbers when they parse
                    // cleanly; everything else stays a string.
                    let value = match cell.parse::<f64>() {
                        Ok(x) if x.is_finite() => Json::Num(x),
                        _ => Json::Str(cell.to_string()),
                    };
                    pairs.push((name.clone(), value));
                }
                out.push_str(&Json::Obj(pairs).render());
                out.push('\n');
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_stats::Summary;

    fn sample_row() -> Row {
        Row {
            scenario: "demo".into(),
            cell: 3,
            family: "edge".into(),
            substrate: "edge-sparse".into(),
            protocol: "flooding".into(),
            params: vec![("n".into(), 100.0), ("q".into(), 0.5)],
            regime: "Tight".into(),
            seed: u64::MAX,
            trials: 5,
            requested_trials: 5,
            achieved_stderr: Some(0.41),
            completion_rate: 0.8,
            rounds: Summary::of_counts(&[3, 4, 5, 4]),
            mean_messages: 1234.5,
        }
    }

    #[test]
    fn format_parsing() {
        assert_eq!(
            "table".parse::<OutputFormat>().unwrap(),
            OutputFormat::Table
        );
        assert_eq!("JSON".parse::<OutputFormat>().unwrap(), OutputFormat::Json);
        assert_eq!("csv".parse::<OutputFormat>().unwrap(), OutputFormat::Csv);
        assert!("yaml".parse::<OutputFormat>().is_err());
    }

    #[test]
    fn json_lines_round_trip_and_preserve_u64_seeds() {
        let line = render_rows("cap", &[sample_row()], OutputFormat::Json);
        let parsed = Json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("scenario").unwrap().as_str(), Some("demo"));
        assert_eq!(parsed.get("cell").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            parsed.get("seed").unwrap().as_str(),
            Some(u64::MAX.to_string().as_str())
        );
        assert_eq!(parsed.get("mean_rounds").unwrap().as_f64(), Some(4.0));
        assert_eq!(
            parsed.get("params").unwrap().get("n").unwrap().as_f64(),
            Some(100.0)
        );
    }

    #[test]
    fn incomplete_cells_render_nulls_and_blanks() {
        let mut row = sample_row();
        row.rounds = None;
        let line = render_rows("", &[row.clone()], OutputFormat::Json);
        let parsed = Json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("mean_rounds"), Some(&Json::Null));
        let csv = row_to_csv(&row);
        assert!(csv.contains(",,,,"), "blank summary columns in {csv}");
    }

    #[test]
    fn csv_has_aligned_header_and_fields() {
        let record = row_to_csv(&sample_row());
        assert_eq!(
            record.split(',').count(),
            CSV_HEADER.split(',').count(),
            "record fields must match the header"
        );
        let rendered = render_rows("x", &[sample_row()], OutputFormat::Csv);
        assert!(rendered.starts_with(CSV_HEADER));
    }

    #[test]
    fn table_rendering_contains_key_cells() {
        let ascii = render_rows("caption here", &[sample_row()], OutputFormat::Table);
        assert!(ascii.contains("caption here"));
        assert!(ascii.contains("edge-sparse"));
        assert!(ascii.contains("80%"));
        assert!(ascii.contains("3–5"));
    }

    #[test]
    fn legacy_tables_render_in_all_formats() {
        let mut t = Table::new("legacy", &["n", "mean T", "note"]);
        t.push_row(&["100", "3.5", "has,comma"]);
        assert!(render_table(&t, OutputFormat::Table).contains("legacy"));
        assert!(render_table(&t, OutputFormat::Csv).contains("\"has,comma\""));
        let json = render_table(&t, OutputFormat::Json);
        let parsed = Json::parse(json.trim()).unwrap();
        assert_eq!(parsed.get("table").unwrap().as_str(), Some("legacy"));
        assert_eq!(parsed.get("n").unwrap().as_f64(), Some(100.0));
        assert_eq!(parsed.get("mean T").unwrap().as_f64(), Some(3.5));
        assert_eq!(parsed.get("note").unwrap().as_str(), Some("has,comma"));
    }
}
