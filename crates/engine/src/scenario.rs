//! The declarative scenario model: an experiment as **data**.
//!
//! A [`Scenario`] composes
//!
//! * one or more [`Substrate`]s — which MEG family generates the dynamic
//!   graph (edge-MEG dense/sparse with `(p̂, q)` dynamics, or geometric-MEG
//!   with any of the four mobility models);
//! * one or more [`Protocol`]s — which spreading process runs on it;
//! * a [`Sweep`] — a cartesian grid of parameter overrides;
//! * trial and round budgets.
//!
//! The engine (see [`crate::run`]) crosses substrates × protocols × sweep
//! cells into a flat list of *cells*, resolves each cell to concrete
//! parameters, and runs it through `meg_stats::run_trials` under a
//! deterministically derived per-cell seed.
//!
//! Derived parameter specs ([`PHatSpec`], [`RadiusSpec`], [`MoveRadiusSpec`])
//! keep scenarios honest at every scale: `{"log_factor": 3.0}` means
//! "p̂ = 3·ln n / n *whatever `n` ends up being*", which is how the paper's
//! sweeps couple parameters to `n`.
//!
//! All types serialize to JSON via [`to_json`](Scenario::to_json) /
//! [`from_json`](Scenario::from_json) (see [`crate::json`] for why the
//! engine carries its own JSON layer) and round-trip exactly — the property
//! tests in `tests/properties.rs` enforce this for random scenarios.

use crate::json::Json;
use meg_core::evolving::InitialDistribution;
use meg_core::spec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when decoding a scenario from JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn field<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, ScenarioError> {
    v.get(key)
        .ok_or_else(|| ScenarioError(format!("{ctx}: missing field `{key}`")))
}

fn num(v: &Json, key: &str, ctx: &str) -> Result<f64, ScenarioError> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| ScenarioError(format!("{ctx}: field `{key}` must be a number")))
}

fn uint(v: &Json, key: &str, ctx: &str) -> Result<usize, ScenarioError> {
    field(v, key, ctx)?.as_usize().ok_or_else(|| {
        ScenarioError(format!(
            "{ctx}: field `{key}` must be a non-negative integer"
        ))
    })
}

fn string(v: &Json, key: &str, ctx: &str) -> Result<String, ScenarioError> {
    Ok(field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| ScenarioError(format!("{ctx}: field `{key}` must be a string")))?
        .to_string())
}

// ---------------------------------------------------------------------------
// Substrates

/// The four mobility models a geometric substrate can use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// The paper's grid random walk on a reflecting square.
    GridWalk,
    /// Random waypoint on a torus.
    Waypoint,
    /// Random direction with reflection (billiard).
    Billiard,
    /// The walkers model on a toroidal grid.
    Walkers,
}

impl MobilityKind {
    /// All variants, in canonical order.
    pub const ALL: [MobilityKind; 4] = [
        MobilityKind::GridWalk,
        MobilityKind::Waypoint,
        MobilityKind::Billiard,
        MobilityKind::Walkers,
    ];

    /// Stable identifier used in JSON and row labels.
    pub fn id(self) -> &'static str {
        match self {
            MobilityKind::GridWalk => "grid_walk",
            MobilityKind::Waypoint => "waypoint",
            MobilityKind::Billiard => "billiard",
            MobilityKind::Walkers => "walkers",
        }
    }

    fn from_id(s: &str) -> Result<Self, ScenarioError> {
        Self::ALL
            .into_iter()
            .find(|k| k.id() == s)
            .ok_or_else(|| ScenarioError(format!("unknown mobility kind `{s}`")))
    }
}

/// Which edge-MEG evolution engine to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeEngine {
    /// `O(n²)`-per-step reference engine.
    Dense,
    /// Alive-edge set + geometric skip-sampling; the scalable engine.
    Sparse,
}

impl EdgeEngine {
    fn id(self) -> &'static str {
        match self {
            EdgeEngine::Dense => "dense",
            EdgeEngine::Sparse => "sparse",
        }
    }

    fn from_id(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "dense" => Ok(EdgeEngine::Dense),
            "sparse" => Ok(EdgeEngine::Sparse),
            _ => Err(ScenarioError(format!("unknown edge engine `{s}`"))),
        }
    }
}

/// How the edge chains are initialised at time 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitKind {
    /// Stationary start (the paper's setting).
    Stationary,
    /// Empty graph (worst-case cold start).
    Empty,
    /// Complete graph.
    Full,
}

impl InitKind {
    fn id(self) -> &'static str {
        match self {
            InitKind::Stationary => "stationary",
            InitKind::Empty => "empty",
            InitKind::Full => "full",
        }
    }

    fn from_id(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "stationary" => Ok(InitKind::Stationary),
            "empty" => Ok(InitKind::Empty),
            "full" => Ok(InitKind::Full),
            _ => Err(ScenarioError(format!("unknown init kind `{s}`"))),
        }
    }

    /// The `meg-core` initial distribution this selects.
    pub fn to_initial_distribution(self) -> InitialDistribution {
        match self {
            InitKind::Stationary => InitialDistribution::Stationary,
            InitKind::Empty => InitialDistribution::Empty,
            InitKind::Full => InitialDistribution::Full,
        }
    }
}

/// How the per-edge chains are stepped each round (see
/// `meg_core::evolving::Stepping`). Serialized as `"per_pair"` /
/// `"transitions"`; scenarios written before the field existed decode as
/// [`SteppingKind::PerPair`], the reference path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SteppingKind {
    /// One Bernoulli draw per potential pair per round (reference path).
    #[default]
    PerPair,
    /// Geometric skip-sampled flips applied as snapshot deltas (fast path).
    Transitions,
}

impl SteppingKind {
    /// Stable identifier used in JSON and CLI flags.
    pub fn id(self) -> &'static str {
        match self {
            SteppingKind::PerPair => "per_pair",
            SteppingKind::Transitions => "transitions",
        }
    }

    /// Inverse of [`id`](SteppingKind::id).
    pub fn from_id(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "per_pair" => Ok(SteppingKind::PerPair),
            "transitions" => Ok(SteppingKind::Transitions),
            _ => Err(ScenarioError(format!("unknown stepping mode `{s}`"))),
        }
    }

    /// The `meg-core` stepping mode this selects.
    pub fn to_stepping(self) -> meg_core::evolving::Stepping {
        match self {
            SteppingKind::PerPair => meg_core::evolving::Stepping::PerPair,
            SteppingKind::Transitions => meg_core::evolving::Stepping::Transitions,
        }
    }
}

/// The deterministic adversarial constructions of the Introduction
/// (implemented in `meg_core::adversarial`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversarialKind {
    /// The rotating star: constant snapshot diameter, `Θ(n)` flooding.
    RotatingStar,
    /// Two cliques joined by a rotating bridge: constant diameter *and*
    /// constant flooding (the expansion contrast).
    RotatingBridge,
}

impl AdversarialKind {
    /// All variants, in canonical order.
    pub const ALL: [AdversarialKind; 2] = [
        AdversarialKind::RotatingStar,
        AdversarialKind::RotatingBridge,
    ];

    /// Stable identifier used in JSON and row labels.
    pub fn id(self) -> &'static str {
        match self {
            AdversarialKind::RotatingStar => "rotating_star",
            AdversarialKind::RotatingBridge => "rotating_bridge",
        }
    }

    fn from_id(s: &str) -> Result<Self, ScenarioError> {
        Self::ALL
            .into_iter()
            .find(|k| k.id() == s)
            .ok_or_else(|| ScenarioError(format!("unknown adversarial construction `{s}`")))
    }
}

/// Static baseline graphs (flooding on them is plain BFS); the contrast rows
/// of the general-bound experiment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum StaticKind {
    /// A static Erdős–Rényi graph `G(n, p̂)` — one frozen stationary
    /// snapshot of the edge-MEG.
    ErdosRenyi {
        /// Edge probability spec (resolved against `n`).
        p_hat: PHatSpec,
    },
    /// A 2-D grid — the canonical weak expander (`n` is rounded to a
    /// square).
    Grid2d,
}

impl StaticKind {
    /// Stable identifier used in JSON and row labels.
    pub fn id(self) -> &'static str {
        match self {
            StaticKind::ErdosRenyi { .. } => "erdos_renyi",
            StaticKind::Grid2d => "grid2d",
        }
    }
}

/// Stationary edge probability: fixed, or coupled to `n`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PHatSpec {
    /// A literal `p̂` value.
    Fixed(f64),
    /// `p̂ = f · ln n / n` — the paper's sparse-regime coupling.
    LogFactor(f64),
}

impl PHatSpec {
    /// Resolves to a concrete `p̂ ∈ (0, 1)` for `n` nodes, clamped so the
    /// implied birth rate `p = q·p̂/(1−p̂)` stays ≤ 1 for death rate `q`.
    pub fn resolve(self, n: usize, q: f64) -> f64 {
        let raw = match self {
            PHatSpec::Fixed(v) => v,
            PHatSpec::LogFactor(f) => f * (n as f64).ln().max(1.0) / n as f64,
        };
        // p ≤ 1 ⇔ p̂ ≤ 1/(1+q); keep a small margin and a positive floor.
        raw.min(0.999 / (1.0 + q)).max(1e-9)
    }

    fn to_json(self) -> Json {
        match self {
            PHatSpec::Fixed(v) => Json::obj([("fixed", Json::Num(v))]),
            PHatSpec::LogFactor(v) => Json::obj([("log_factor", Json::Num(v))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        if let Some(x) = v.get("fixed").and_then(Json::as_f64) {
            Ok(PHatSpec::Fixed(x))
        } else if let Some(x) = v.get("log_factor").and_then(Json::as_f64) {
            Ok(PHatSpec::LogFactor(x))
        } else {
            Err(ScenarioError(
                "p_hat spec must be {\"fixed\": x} or {\"log_factor\": x}".into(),
            ))
        }
    }
}

/// Transmission radius: fixed, or coupled to the connectivity threshold.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RadiusSpec {
    /// A literal `R` value.
    Fixed(f64),
    /// `R = f · c√(ln n)` (the Theorem 3.4 threshold at
    /// [`spec::DEFAULT_THRESHOLD_CONSTANT`]), capped at `0.95·√n`.
    ThresholdFactor(f64),
}

impl RadiusSpec {
    /// Resolves to a concrete transmission radius for `n` nodes.
    pub fn resolve(self, n: usize) -> f64 {
        let side = (n as f64).sqrt();
        match self {
            RadiusSpec::Fixed(v) => v,
            RadiusSpec::ThresholdFactor(f) => {
                let threshold =
                    spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);
                (f * threshold).min(side * 0.95)
            }
        }
        .max(1.01) // the paper requires ε < R; the engine runs at ε = 1
    }

    fn to_json(self) -> Json {
        match self {
            RadiusSpec::Fixed(v) => Json::obj([("fixed", Json::Num(v))]),
            RadiusSpec::ThresholdFactor(v) => Json::obj([("threshold_factor", Json::Num(v))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        if let Some(x) = v.get("fixed").and_then(Json::as_f64) {
            Ok(RadiusSpec::Fixed(x))
        } else if let Some(x) = v.get("threshold_factor").and_then(Json::as_f64) {
            Ok(RadiusSpec::ThresholdFactor(x))
        } else {
            Err(ScenarioError(
                "radius spec must be {\"fixed\": x} or {\"threshold_factor\": x}".into(),
            ))
        }
    }
}

/// Move radius (node speed): fixed, or a fraction of the transmission radius.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MoveRadiusSpec {
    /// A literal `r` value.
    Fixed(f64),
    /// `r = f · R`.
    RadiusFraction(f64),
}

impl MoveRadiusSpec {
    /// Resolves to a concrete move radius given the resolved transmission
    /// radius.
    pub fn resolve(self, radius: f64) -> f64 {
        match self {
            MoveRadiusSpec::Fixed(v) => v,
            MoveRadiusSpec::RadiusFraction(f) => f * radius,
        }
        .max(1e-6)
    }

    fn to_json(self) -> Json {
        match self {
            MoveRadiusSpec::Fixed(v) => Json::obj([("fixed", Json::Num(v))]),
            MoveRadiusSpec::RadiusFraction(v) => Json::obj([("radius_fraction", Json::Num(v))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        if let Some(x) = v.get("fixed").and_then(Json::as_f64) {
            Ok(MoveRadiusSpec::Fixed(x))
        } else if let Some(x) = v.get("radius_fraction").and_then(Json::as_f64) {
            Ok(MoveRadiusSpec::RadiusFraction(x))
        } else {
            Err(ScenarioError(
                "move_radius spec must be {\"fixed\": x} or {\"radius_fraction\": x}".into(),
            ))
        }
    }
}

/// A dynamic-graph family plus its parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Substrate {
    /// Edge-MEG `M(n, p, q)` parameterised by the stationary probability `p̂`.
    Edge {
        /// Number of nodes.
        n: usize,
        /// Evolution engine.
        engine: EdgeEngine,
        /// Stationary edge probability spec.
        p_hat: PHatSpec,
        /// Death rate `q`.
        q: f64,
        /// Initial distribution of the chains.
        init: InitKind,
        /// Chain stepping mode (defaults to the per-pair reference path).
        stepping: SteppingKind,
    },
    /// Geometric-MEG: a mobility model plus a transmission radius.
    Geometric {
        /// Number of nodes.
        n: usize,
        /// Mobility model.
        mobility: MobilityKind,
        /// Transmission radius spec.
        radius: RadiusSpec,
        /// Move radius spec.
        move_radius: MoveRadiusSpec,
    },
    /// A deterministic adversarial construction (diameter ≠ flooding
    /// separation witnesses).
    Adversarial {
        /// Number of nodes (rounded up to the construction's minimum; the
        /// rotating bridge also needs an even count).
        n: usize,
        /// Which construction.
        construction: AdversarialKind,
    },
    /// A static baseline graph, frozen over time (flooding = BFS).
    Static {
        /// Number of nodes (rounded to a square for [`StaticKind::Grid2d`]).
        n: usize,
        /// Which graph family.
        graph: StaticKind,
    },
}

impl Substrate {
    /// Short label for tables and rows, e.g. `edge-sparse` or
    /// `geo-grid_walk`.
    pub fn label(&self) -> String {
        match self {
            // The stepping mode is surfaced only when it deviates from the
            // default, so pre-existing row labels stay byte-identical.
            Substrate::Edge {
                engine,
                stepping: SteppingKind::Transitions,
                ..
            } => format!("edge-{}-transitions", engine.id()),
            Substrate::Edge { engine, .. } => format!("edge-{}", engine.id()),
            Substrate::Geometric { mobility, .. } => format!("geo-{}", mobility.id()),
            Substrate::Adversarial { construction, .. } => format!("adv-{}", construction.id()),
            Substrate::Static { graph, .. } => format!("static-{}", graph.id()),
        }
    }

    /// Number of nodes before sweep overrides.
    pub fn n(&self) -> usize {
        match self {
            Substrate::Edge { n, .. }
            | Substrate::Geometric { n, .. }
            | Substrate::Adversarial { n, .. }
            | Substrate::Static { n, .. } => *n,
        }
    }

    fn scale_n(&mut self, factor: f64) {
        let scale = |n: usize| ((n as f64) * factor).round().max(4.0) as usize;
        match self {
            Substrate::Edge { n, .. }
            | Substrate::Geometric { n, .. }
            | Substrate::Adversarial { n, .. }
            | Substrate::Static { n, .. } => *n = scale(*n),
        }
    }

    /// Serializes to a JSON object tagged with `"family"`.
    pub fn to_json(&self) -> Json {
        match self {
            Substrate::Edge {
                n,
                engine,
                p_hat,
                q,
                init,
                stepping,
            } => {
                let mut pairs = vec![
                    ("family", Json::Str("edge".into())),
                    ("n", Json::Num(*n as f64)),
                    ("engine", Json::Str(engine.id().into())),
                    ("p_hat", p_hat.to_json()),
                    ("q", Json::Num(*q)),
                    ("init", Json::Str(init.id().into())),
                ];
                // Emitted only when non-default, so scenario files written
                // before the field existed re-render byte-identically.
                if *stepping != SteppingKind::PerPair {
                    pairs.push(("stepping", Json::Str(stepping.id().into())));
                }
                Json::obj(pairs)
            }
            Substrate::Geometric {
                n,
                mobility,
                radius,
                move_radius,
            } => Json::obj([
                ("family", Json::Str("geometric".into())),
                ("n", Json::Num(*n as f64)),
                ("mobility", Json::Str(mobility.id().into())),
                ("radius", radius.to_json()),
                ("move_radius", move_radius.to_json()),
            ]),
            Substrate::Adversarial { n, construction } => Json::obj([
                ("family", Json::Str("adversarial".into())),
                ("n", Json::Num(*n as f64)),
                ("construction", Json::Str(construction.id().into())),
            ]),
            Substrate::Static { n, graph } => {
                let mut pairs = vec![
                    ("family", Json::Str("static".into())),
                    ("n", Json::Num(*n as f64)),
                    ("graph", Json::Str(graph.id().into())),
                ];
                if let StaticKind::ErdosRenyi { p_hat } = graph {
                    pairs.push(("p_hat", p_hat.to_json()));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Decodes from the [`to_json`](Substrate::to_json) representation.
    pub fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let ctx = "substrate";
        match string(v, "family", ctx)?.as_str() {
            "edge" => Ok(Substrate::Edge {
                n: uint(v, "n", ctx)?,
                engine: EdgeEngine::from_id(&string(v, "engine", ctx)?)?,
                p_hat: PHatSpec::from_json(field(v, "p_hat", ctx)?)?,
                q: num(v, "q", ctx)?,
                init: InitKind::from_id(&string(v, "init", ctx)?)?,
                // Absent in scenarios written before PR 6: per-pair default.
                stepping: match v.get("stepping") {
                    Some(_) => SteppingKind::from_id(&string(v, "stepping", ctx)?)?,
                    None => SteppingKind::PerPair,
                },
            }),
            "geometric" => Ok(Substrate::Geometric {
                n: uint(v, "n", ctx)?,
                mobility: MobilityKind::from_id(&string(v, "mobility", ctx)?)?,
                radius: RadiusSpec::from_json(field(v, "radius", ctx)?)?,
                move_radius: MoveRadiusSpec::from_json(field(v, "move_radius", ctx)?)?,
            }),
            "adversarial" => Ok(Substrate::Adversarial {
                n: uint(v, "n", ctx)?,
                construction: AdversarialKind::from_id(&string(v, "construction", ctx)?)?,
            }),
            "static" => Ok(Substrate::Static {
                n: uint(v, "n", ctx)?,
                graph: match string(v, "graph", ctx)?.as_str() {
                    "erdos_renyi" => StaticKind::ErdosRenyi {
                        p_hat: PHatSpec::from_json(field(v, "p_hat", ctx)?)?,
                    },
                    "grid2d" => StaticKind::Grid2d,
                    other => return Err(ScenarioError(format!("unknown static graph `{other}`"))),
                },
            }),
            other => Err(ScenarioError(format!("unknown substrate family `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocols

/// A spreading protocol (all implemented in `meg-core::protocols`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Plain flooding — the paper's baseline.
    Flooding,
    /// Probabilistic flooding: forward with probability `beta` per round.
    Probabilistic {
        /// Forwarding probability `β ∈ [0, 1]`.
        beta: f64,
    },
    /// Parsimonious flooding: forward for `active_rounds` rounds only.
    Parsimonious {
        /// Number of active rounds `k ≥ 1`.
        active_rounds: u64,
    },
    /// Classic randomized push–pull gossip.
    PushPull,
    /// SIS/SIRS epidemic: contagion per exposure, a fixed infection
    /// duration, and a re-susceptibility window (`immunity_rounds = 0` is
    /// classic SIS). Completion is *extinction* — no infectious nodes left —
    /// and endemic cells are censored at the round budget
    /// (`completion_rate` < 1 marks censored trials).
    Sis {
        /// Infection probability per exposure, `∈ [0, 1]`
        /// (sweepable via [`Param::Contagion`]).
        contagion: f64,
        /// Rounds a node stays infectious, `≥ 1`
        /// (sweepable via [`Param::InfectionRounds`]).
        infection_rounds: u64,
        /// Rounds of immunity after recovery before becoming susceptible
        /// again; `0` = immediately susceptible (classic SIS). Sweepable
        /// via [`Param::ImmunityRounds`].
        immunity_rounds: u64,
    },
    /// SIR epidemic: like [`Protocol::Sis`] but recovery is permanent, so
    /// the epidemic always goes extinct; the interesting observable is the
    /// final size (`mean_messages` carries exposures, extinction time is
    /// the round count).
    Sir {
        /// Infection probability per exposure, `∈ [0, 1]`.
        contagion: f64,
        /// Rounds a node stays infectious, `≥ 1`.
        infection_rounds: u64,
    },
    /// Push-only rumor spreading (arXiv:1302.3828): each informed node
    /// pushes to one uniformly random current neighbor per round. The
    /// protocol whose sparse regime shows dynamism *helps* spreading.
    Rumor,
    /// Push–pull gossip with `count` Byzantine nodes spreading a tampered
    /// message; the trial observable is the *correct*-information coverage
    /// fraction, not a round count.
    Byzantine {
        /// Number of Byzantine (tampering) nodes, clamped to `n - 1` at
        /// run time (sweepable via [`Param::ByzantineCount`]).
        count: u64,
    },
    /// Measurement probe: minimum sampled node-expansion ratio at one set
    /// size `h` (sweepable via [`Param::SetSize`]; clamped to `n/2` at
    /// resolution). The trial observable is the ratio, not a round count.
    ExpansionProbe {
        /// Set size `h` to probe.
        set_size: u64,
        /// Candidate sets sampled per snapshot.
        samples: u64,
    },
    /// Measurement probe: exact diameter of one snapshot.
    DiameterProbe,
    /// Measurement probe: the data-driven Lemma 2.4 / Theorem 2.5 flooding
    /// bound evaluated on a measured expansion sequence.
    BoundProbe {
        /// Snapshots inspected per trial.
        snapshots: u64,
        /// Candidate sets sampled per set size per snapshot.
        samples: u64,
    },
    /// Measurement probe (geometric substrates only): the Claim 1 cell
    /// occupancy concentration `λ` of one stationary snapshot. Inert (never
    /// completes) on other substrate families.
    OccupancyProbe,
}

impl Protocol {
    /// Human-readable label, e.g. `probabilistic(beta=0.3)`.
    pub fn label(&self) -> String {
        match self {
            Protocol::Flooding => "flooding".into(),
            Protocol::Probabilistic { beta } => format!("probabilistic(beta={beta})"),
            Protocol::Parsimonious { active_rounds } => format!("parsimonious(k={active_rounds})"),
            Protocol::PushPull => "push_pull".into(),
            Protocol::Sis {
                contagion,
                infection_rounds,
                immunity_rounds,
            } => format!("sis(c={contagion},d={infection_rounds},w={immunity_rounds})"),
            Protocol::Sir {
                contagion,
                infection_rounds,
            } => format!("sir(c={contagion},d={infection_rounds})"),
            Protocol::Rumor => "rumor".into(),
            Protocol::Byzantine { count } => format!("byzantine(b={count})"),
            Protocol::ExpansionProbe { set_size, .. } => format!("expansion(h={set_size})"),
            Protocol::DiameterProbe => "diameter".into(),
            Protocol::BoundProbe { .. } => "bound".into(),
            Protocol::OccupancyProbe => "occupancy".into(),
        }
    }

    /// `true` for the measurement probes, whose trial observable is a
    /// measured quantity instead of a completion round count.
    pub fn is_probe(&self) -> bool {
        matches!(
            self,
            Protocol::ExpansionProbe { .. }
                | Protocol::DiameterProbe
                | Protocol::BoundProbe { .. }
                | Protocol::OccupancyProbe
        )
    }

    /// Serializes: unit variants as strings, parameterised ones as objects.
    pub fn to_json(&self) -> Json {
        match self {
            Protocol::Flooding => Json::Str("flooding".into()),
            Protocol::PushPull => Json::Str("push_pull".into()),
            Protocol::Rumor => Json::Str("rumor".into()),
            Protocol::DiameterProbe => Json::Str("diameter_probe".into()),
            Protocol::OccupancyProbe => Json::Str("occupancy_probe".into()),
            Protocol::Sis {
                contagion,
                infection_rounds,
                immunity_rounds,
            } => Json::obj([(
                "sis",
                Json::obj([
                    ("contagion", Json::Num(*contagion)),
                    ("infection_rounds", Json::Num(*infection_rounds as f64)),
                    ("immunity_rounds", Json::Num(*immunity_rounds as f64)),
                ]),
            )]),
            Protocol::Sir {
                contagion,
                infection_rounds,
            } => Json::obj([(
                "sir",
                Json::obj([
                    ("contagion", Json::Num(*contagion)),
                    ("infection_rounds", Json::Num(*infection_rounds as f64)),
                ]),
            )]),
            Protocol::Byzantine { count } => Json::obj([(
                "byzantine",
                Json::obj([("count", Json::Num(*count as f64))]),
            )]),
            Protocol::Probabilistic { beta } => {
                Json::obj([("probabilistic", Json::obj([("beta", Json::Num(*beta))]))])
            }
            Protocol::Parsimonious { active_rounds } => Json::obj([(
                "parsimonious",
                Json::obj([("active_rounds", Json::Num(*active_rounds as f64))]),
            )]),
            Protocol::ExpansionProbe { set_size, samples } => Json::obj([(
                "expansion_probe",
                Json::obj([
                    ("set_size", Json::Num(*set_size as f64)),
                    ("samples", Json::Num(*samples as f64)),
                ]),
            )]),
            Protocol::BoundProbe { snapshots, samples } => Json::obj([(
                "bound_probe",
                Json::obj([
                    ("snapshots", Json::Num(*snapshots as f64)),
                    ("samples", Json::Num(*samples as f64)),
                ]),
            )]),
        }
    }

    /// Decodes from the [`to_json`](Protocol::to_json) representation.
    pub fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        if let Some(s) = v.as_str() {
            return match s {
                "flooding" => Ok(Protocol::Flooding),
                "push_pull" => Ok(Protocol::PushPull),
                "rumor" => Ok(Protocol::Rumor),
                "diameter_probe" => Ok(Protocol::DiameterProbe),
                "occupancy_probe" => Ok(Protocol::OccupancyProbe),
                other => Err(ScenarioError(format!("unknown protocol `{other}`"))),
            };
        }
        if let Some(p) = v.get("probabilistic") {
            return Ok(Protocol::Probabilistic {
                beta: num(p, "beta", "probabilistic protocol")?,
            });
        }
        if let Some(p) = v.get("parsimonious") {
            return Ok(Protocol::Parsimonious {
                active_rounds: uint(p, "active_rounds", "parsimonious protocol")? as u64,
            });
        }
        if let Some(p) = v.get("sis") {
            return Ok(Protocol::Sis {
                contagion: num(p, "contagion", "sis protocol")?,
                infection_rounds: uint(p, "infection_rounds", "sis protocol")? as u64,
                immunity_rounds: uint(p, "immunity_rounds", "sis protocol")? as u64,
            });
        }
        if let Some(p) = v.get("sir") {
            return Ok(Protocol::Sir {
                contagion: num(p, "contagion", "sir protocol")?,
                infection_rounds: uint(p, "infection_rounds", "sir protocol")? as u64,
            });
        }
        if let Some(p) = v.get("byzantine") {
            return Ok(Protocol::Byzantine {
                count: uint(p, "count", "byzantine protocol")? as u64,
            });
        }
        if let Some(p) = v.get("expansion_probe") {
            return Ok(Protocol::ExpansionProbe {
                set_size: uint(p, "set_size", "expansion probe")? as u64,
                samples: uint(p, "samples", "expansion probe")? as u64,
            });
        }
        if let Some(p) = v.get("bound_probe") {
            return Ok(Protocol::BoundProbe {
                snapshots: uint(p, "snapshots", "bound probe")? as u64,
                samples: uint(p, "samples", "bound probe")? as u64,
            });
        }
        Err(ScenarioError(format!("unrecognised protocol: {v}")))
    }
}

// ---------------------------------------------------------------------------
// Sweep

/// A parameter a sweep axis can override.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Param {
    /// Node count `n` (values are rounded).
    N,
    /// Edge-MEG death rate `q`.
    Q,
    /// Fixed stationary edge probability `p̂`.
    PHat,
    /// `p̂ = f·ln n/n` log factor.
    PHatFactor,
    /// Fixed transmission radius `R`.
    Radius,
    /// `R` as a multiple of the connectivity threshold.
    RadiusFactor,
    /// Fixed move radius `r`.
    MoveRadius,
    /// `r` as a fraction of `R`.
    MoveRadiusFraction,
    /// Probabilistic-flooding forwarding probability (fanout control).
    Beta,
    /// Parsimonious-flooding active-round budget (values are rounded).
    ActiveRounds,
    /// Trials per cell (values are rounded).
    Trials,
    /// Expansion-probe set size `h` (values are rounded).
    SetSize,
    /// Epidemic contagion probability (SIS/SIR; clamped to `[0, 1]`).
    Contagion,
    /// Epidemic infection duration in rounds (SIS/SIR; rounded, min 1).
    InfectionRounds,
    /// SIS re-susceptibility window in rounds (rounded; 0 = classic SIS).
    ImmunityRounds,
    /// Number of Byzantine nodes (rounded).
    ByzantineCount,
}

impl Param {
    /// All variants, in canonical order.
    pub const ALL: [Param; 16] = [
        Param::N,
        Param::Q,
        Param::PHat,
        Param::PHatFactor,
        Param::Radius,
        Param::RadiusFactor,
        Param::MoveRadius,
        Param::MoveRadiusFraction,
        Param::Beta,
        Param::ActiveRounds,
        Param::Trials,
        Param::SetSize,
        Param::Contagion,
        Param::InfectionRounds,
        Param::ImmunityRounds,
        Param::ByzantineCount,
    ];

    /// Stable identifier used in JSON and row labels.
    pub fn id(self) -> &'static str {
        match self {
            Param::N => "n",
            Param::Q => "q",
            Param::PHat => "p_hat",
            Param::PHatFactor => "p_hat_factor",
            Param::Radius => "radius",
            Param::RadiusFactor => "radius_factor",
            Param::MoveRadius => "move_radius",
            Param::MoveRadiusFraction => "move_radius_fraction",
            Param::Beta => "beta",
            Param::ActiveRounds => "active_rounds",
            Param::Trials => "trials",
            Param::SetSize => "set_size",
            Param::Contagion => "contagion",
            Param::InfectionRounds => "infection_rounds",
            Param::ImmunityRounds => "immunity_rounds",
            Param::ByzantineCount => "byzantine_count",
        }
    }

    fn from_id(s: &str) -> Result<Self, ScenarioError> {
        Self::ALL
            .into_iter()
            .find(|p| p.id() == s)
            .ok_or_else(|| ScenarioError(format!("unknown sweep param `{s}`")))
    }
}

/// One sweep axis: a parameter and the values it takes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// The overridden parameter.
    pub param: Param,
    /// The values the parameter takes (cartesian with the other axes).
    pub values: Vec<f64>,
}

impl Axis {
    /// Serializes to `{"param": ..., "values": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("param", Json::Str(self.param.id().into())),
            (
                "values",
                Json::Arr(self.values.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ])
    }

    /// Decodes from the [`to_json`](Axis::to_json) representation.
    pub fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let param = Param::from_id(&string(v, "param", "axis")?)?;
        let values = field(v, "values", "axis")?
            .as_arr()
            .ok_or_else(|| ScenarioError("axis `values` must be an array".into()))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| ScenarioError("axis values must be numbers".into()))
            })
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(Axis { param, values })
    }
}

/// A cartesian grid of parameter overrides.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// The grid axes; an empty list means a single cell with no overrides.
    pub axes: Vec<Axis>,
}

impl Sweep {
    /// The empty sweep (one cell, no overrides).
    pub fn none() -> Sweep {
        Sweep { axes: Vec::new() }
    }

    /// A single-axis sweep.
    pub fn over(param: Param, values: impl Into<Vec<f64>>) -> Sweep {
        Sweep {
            axes: vec![Axis {
                param,
                values: values.into(),
            }],
        }
    }

    /// Adds another axis (builder style).
    pub fn and(mut self, param: Param, values: impl Into<Vec<f64>>) -> Sweep {
        self.axes.push(Axis {
            param,
            values: values.into(),
        });
        self
    }

    /// Number of grid cells (product of axis lengths; 1 for no axes).
    pub fn num_cells(&self) -> usize {
        self.axes.iter().map(|a| a.values.len().max(1)).product()
    }

    /// The override assignment of grid cell `index` (row-major over the axes,
    /// first axis slowest).
    pub fn cell(&self, index: usize) -> Vec<(Param, f64)> {
        let mut out = Vec::with_capacity(self.axes.len());
        let mut rem = index;
        let mut stride = self.num_cells();
        for axis in &self.axes {
            let len = axis.values.len().max(1);
            stride /= len;
            let i = rem / stride;
            rem %= stride;
            if !axis.values.is_empty() {
                out.push((axis.param, axis.values[i]));
            }
        }
        out
    }

    /// Serializes to `{"axes": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "axes",
            Json::Arr(self.axes.iter().map(Axis::to_json).collect()),
        )])
    }

    /// Decodes from the [`to_json`](Sweep::to_json) representation.
    pub fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let axes = field(v, "axes", "sweep")?
            .as_arr()
            .ok_or_else(|| ScenarioError("sweep `axes` must be an array".into()))?
            .iter()
            .map(Axis::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Sweep { axes })
    }
}

// ---------------------------------------------------------------------------
// Precision

/// Per-cell sample-size policy: how many Monte-Carlo trials a cell runs.
///
/// Under [`Precision::TargetStderr`], execution grows a cell's trial set
/// through the deterministic checkpoint schedule
/// [`meg_stats::precision_checkpoints`] (`min_trials`, doubling, capped at
/// `max_trials`) and stops at the first checkpoint whose completed-trial
/// observable has standard error ≤ `eps`. `eps = 0` can never be satisfied
/// and therefore means "spend the whole `max_trials` budget" — which is why
/// an `eps = 0` adaptive run is byte-identical to a fixed run of
/// `max_trials` trials. Trial `i`'s randomness depends only on the cell seed
/// and `i`, never on the batching, so fixed and adaptive runs agree on every
/// shared trial.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Precision {
    /// Run exactly the scenario's (possibly swept) `trials` per cell.
    FixedTrials,
    /// Run `min_trials`, then keep doubling toward `max_trials` until the
    /// standard error of the cell's observable drops to `eps`.
    TargetStderr {
        /// Target standard error of the mean (0 = always exhaust the budget).
        eps: f64,
        /// Trials dispatched before the first precision check.
        min_trials: usize,
        /// Hard per-cell trial budget.
        max_trials: usize,
    },
}

impl Precision {
    /// Serializes: `"fixed_trials"` or `{"target_stderr": {…}}`.
    pub fn to_json(&self) -> Json {
        match self {
            Precision::FixedTrials => Json::Str("fixed_trials".into()),
            Precision::TargetStderr {
                eps,
                min_trials,
                max_trials,
            } => Json::obj([(
                "target_stderr",
                Json::obj([
                    ("eps", Json::Num(*eps)),
                    ("min_trials", Json::Num(*min_trials as f64)),
                    ("max_trials", Json::Num(*max_trials as f64)),
                ]),
            )]),
        }
    }

    /// Decodes from the [`to_json`](Precision::to_json) representation.
    pub fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        if let Some(s) = v.as_str() {
            return match s {
                "fixed_trials" => Ok(Precision::FixedTrials),
                other => Err(ScenarioError(format!("unknown precision policy `{other}`"))),
            };
        }
        if let Some(p) = v.get("target_stderr") {
            return Ok(Precision::TargetStderr {
                eps: num(p, "eps", "target_stderr precision")?,
                min_trials: uint(p, "min_trials", "target_stderr precision")?,
                max_trials: uint(p, "max_trials", "target_stderr precision")?,
            });
        }
        Err(ScenarioError(format!("unrecognised precision policy: {v}")))
    }
}

// ---------------------------------------------------------------------------
// Scenario

/// A complete experiment definition: substrates × protocols × sweep grid,
/// plus trial and round budgets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name; also salts the per-cell seed derivation.
    pub name: String,
    /// One-line description (shown by `meg-lab list`).
    pub description: String,
    /// The dynamic-graph families to run on.
    pub substrates: Vec<Substrate>,
    /// The spreading protocols to run.
    pub protocols: Vec<Protocol>,
    /// The parameter grid.
    pub sweep: Sweep,
    /// Monte-Carlo trials per cell (sweepable via [`Param::Trials`];
    /// ignored under [`Precision::TargetStderr`]).
    pub trials: usize,
    /// Maximum rounds per trial.
    pub round_budget: u64,
    /// Per-cell sample-size policy.
    pub precision: Precision,
}

impl Scenario {
    /// Total number of cells: substrates × protocols × sweep cells.
    pub fn num_cells(&self) -> usize {
        self.substrates.len() * self.protocols.len() * self.sweep.num_cells()
    }

    /// Returns a copy with every substrate's `n` (and any [`Param::N`] axis
    /// values) multiplied by `factor` (minimum 4 nodes), so one scenario
    /// serves both quick smoke runs and long server runs.
    pub fn scaled(&self, factor: f64) -> Scenario {
        let mut out = self.clone();
        if (factor - 1.0).abs() < 1e-12 {
            return out;
        }
        for s in &mut out.substrates {
            s.scale_n(factor);
        }
        for axis in &mut out.sweep.axes {
            if axis.param == Param::N {
                for v in &mut axis.values {
                    *v = (*v * factor).round().max(4.0);
                }
            }
        }
        out
    }

    /// Checks the scenario is runnable; returns the first problem found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let err = |m: String| Err(ScenarioError(m));
        if self.name.is_empty() {
            return err("scenario name must be non-empty".into());
        }
        if self.substrates.is_empty() {
            return err("scenario needs at least one substrate".into());
        }
        if self.protocols.is_empty() {
            return err("scenario needs at least one protocol".into());
        }
        if self.trials == 0 {
            return err("trials must be ≥ 1".into());
        }
        if self.round_budget == 0 {
            return err("round_budget must be ≥ 1".into());
        }
        if let Precision::TargetStderr {
            eps,
            min_trials,
            max_trials,
        } = self.precision
        {
            if !(eps >= 0.0 && eps.is_finite()) {
                return err(format!(
                    "target_stderr eps={eps} must be a finite number ≥ 0"
                ));
            }
            if min_trials == 0 {
                return err("target_stderr min_trials must be ≥ 1".into());
            }
            if max_trials < min_trials {
                return err(format!(
                    "target_stderr max_trials={max_trials} below min_trials={min_trials}"
                ));
            }
        }
        for s in &self.substrates {
            match s {
                Substrate::Edge { n, q, .. } => {
                    if *n < 2 {
                        return err("edge substrate needs n ≥ 2".into());
                    }
                    if !(*q > 0.0 && *q <= 1.0) {
                        return err(format!("edge substrate death rate q={q} outside (0, 1]"));
                    }
                }
                Substrate::Geometric { n, .. }
                | Substrate::Adversarial { n, .. }
                | Substrate::Static { n, .. } => {
                    if *n < 2 {
                        return err(format!("substrate `{}` needs n ≥ 2", s.label()));
                    }
                }
            }
        }
        for p in &self.protocols {
            match p {
                Protocol::Probabilistic { beta } if !(0.0..=1.0).contains(beta) => {
                    return err(format!("beta={beta} outside [0, 1]"));
                }
                Protocol::Parsimonious { active_rounds } if *active_rounds == 0 => {
                    return err("parsimonious active_rounds must be ≥ 1".into());
                }
                Protocol::Sis { contagion, .. } | Protocol::Sir { contagion, .. }
                    if !(0.0..=1.0).contains(contagion) =>
                {
                    return err(format!("contagion={contagion} outside [0, 1]"));
                }
                Protocol::Sis {
                    infection_rounds, ..
                }
                | Protocol::Sir {
                    infection_rounds, ..
                } if *infection_rounds == 0 => {
                    return err("epidemic infection_rounds must be ≥ 1".into());
                }
                Protocol::ExpansionProbe { set_size, samples }
                    if *set_size == 0 || *samples == 0 =>
                {
                    return err("expansion probe needs set_size ≥ 1 and samples ≥ 1".into());
                }
                Protocol::BoundProbe { snapshots, samples } if *snapshots == 0 || *samples == 0 => {
                    return err("bound probe needs snapshots ≥ 1 and samples ≥ 1".into());
                }
                _ => {}
            }
        }
        for axis in &self.sweep.axes {
            if axis.values.is_empty() {
                return err(format!("sweep axis `{}` has no values", axis.param.id()));
            }
        }
        Ok(())
    }

    /// Serializes the scenario to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            (
                "substrates",
                Json::Arr(self.substrates.iter().map(Substrate::to_json).collect()),
            ),
            (
                "protocols",
                Json::Arr(self.protocols.iter().map(Protocol::to_json).collect()),
            ),
            ("sweep", self.sweep.to_json()),
            ("trials", Json::Num(self.trials as f64)),
            ("round_budget", Json::Num(self.round_budget as f64)),
            ("precision", self.precision.to_json()),
        ])
    }

    /// Decodes a scenario from its [`to_json`](Scenario::to_json)
    /// representation.
    pub fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let ctx = "scenario";
        let substrates = field(v, "substrates", ctx)?
            .as_arr()
            .ok_or_else(|| ScenarioError("`substrates` must be an array".into()))?
            .iter()
            .map(Substrate::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let protocols = field(v, "protocols", ctx)?
            .as_arr()
            .ok_or_else(|| ScenarioError("`protocols` must be an array".into()))?
            .iter()
            .map(Protocol::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scenario {
            name: string(v, "name", ctx)?,
            description: string(v, "description", ctx)?,
            substrates,
            protocols,
            sweep: Sweep::from_json(field(v, "sweep", ctx)?)?,
            trials: uint(v, "trials", ctx)?,
            round_budget: uint(v, "round_budget", ctx)? as u64,
            // Absent in pre-adaptive scenario files: default to fixed trials.
            precision: match v.get("precision") {
                Some(p) => Precision::from_json(p)?,
                None => Precision::FixedTrials,
            },
        })
    }

    /// Parses a scenario from JSON text.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let json = Json::parse(text).map_err(|e| ScenarioError(format!("invalid JSON: {e}")))?;
        Scenario::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Scenario {
        Scenario {
            name: "demo".into(),
            description: "round-trip demo".into(),
            substrates: vec![
                Substrate::Edge {
                    n: 500,
                    engine: EdgeEngine::Sparse,
                    p_hat: PHatSpec::LogFactor(3.0),
                    q: 0.5,
                    init: InitKind::Stationary,
                    stepping: SteppingKind::PerPair,
                },
                Substrate::Geometric {
                    n: 400,
                    mobility: MobilityKind::Waypoint,
                    radius: RadiusSpec::ThresholdFactor(1.5),
                    move_radius: MoveRadiusSpec::RadiusFraction(0.5),
                },
            ],
            protocols: vec![
                Protocol::Flooding,
                Protocol::Probabilistic { beta: 0.3 },
                Protocol::Parsimonious { active_rounds: 4 },
                Protocol::PushPull,
            ],
            sweep: Sweep::over(Param::N, [100.0, 200.0]).and(Param::Q, [0.5, 0.02, 0.9]),
            trials: 3,
            round_budget: 10_000,
            precision: Precision::FixedTrials,
        }
    }

    #[test]
    fn json_round_trip_preserves_equality() {
        let s = demo();
        let text = s.to_json().render();
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, s);
        // pretty form too
        let back2 = Scenario::parse(&s.to_json().render_pretty()).unwrap();
        assert_eq!(back2, s);
    }

    #[test]
    fn precision_round_trips_and_defaults_to_fixed() {
        let mut s = demo();
        s.precision = Precision::TargetStderr {
            eps: 0.25,
            min_trials: 4,
            max_trials: 64,
        };
        let back = Scenario::parse(&s.to_json().render()).unwrap();
        assert_eq!(back, s);
        // Pre-adaptive scenario files carry no `precision` field: decoding
        // must default to fixed trials rather than reject them.
        let mut json = demo().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "precision");
        }
        let legacy = Scenario::from_json(&json).unwrap();
        assert_eq!(legacy.precision, Precision::FixedTrials);
        // Validation catches nonsense policies.
        let mut s = demo();
        s.precision = Precision::TargetStderr {
            eps: -1.0,
            min_trials: 4,
            max_trials: 8,
        };
        assert!(s.validate().is_err());
        let mut s = demo();
        s.precision = Precision::TargetStderr {
            eps: 0.1,
            min_trials: 9,
            max_trials: 8,
        };
        assert!(s.validate().is_err());
        let mut s = demo();
        s.precision = Precision::TargetStderr {
            eps: 0.1,
            min_trials: 0,
            max_trials: 8,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn new_substrates_and_probes_round_trip() {
        let mut s = demo();
        s.substrates = vec![
            Substrate::Adversarial {
                n: 64,
                construction: AdversarialKind::RotatingStar,
            },
            Substrate::Adversarial {
                n: 64,
                construction: AdversarialKind::RotatingBridge,
            },
            Substrate::Static {
                n: 100,
                graph: StaticKind::ErdosRenyi {
                    p_hat: PHatSpec::LogFactor(4.0),
                },
            },
            Substrate::Static {
                n: 100,
                graph: StaticKind::Grid2d,
            },
        ];
        s.protocols = vec![
            Protocol::ExpansionProbe {
                set_size: 16,
                samples: 10,
            },
            Protocol::DiameterProbe,
            Protocol::BoundProbe {
                snapshots: 3,
                samples: 12,
            },
            Protocol::OccupancyProbe,
        ];
        s.sweep = Sweep::over(Param::SetSize, [1.0, 4.0, 16.0]);
        let back = Scenario::parse(&s.to_json().render()).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.substrates[0].label(), "adv-rotating_star");
        assert_eq!(s.substrates[2].label(), "static-erdos_renyi");
        assert_eq!(s.protocols[0].label(), "expansion(h=16)");
        assert!(s.protocols.iter().all(Protocol::is_probe));
        assert!(!Protocol::Flooding.is_probe());
        // Probe parameter validation.
        let mut bad = s.clone();
        bad.protocols = vec![Protocol::ExpansionProbe {
            set_size: 0,
            samples: 10,
        }];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn cell_enumeration_is_a_cartesian_grid() {
        let s = demo();
        assert_eq!(s.sweep.num_cells(), 6);
        assert_eq!(s.num_cells(), 2 * 4 * 6);
        // first axis slowest
        assert_eq!(s.sweep.cell(0), vec![(Param::N, 100.0), (Param::Q, 0.5)]);
        assert_eq!(s.sweep.cell(1), vec![(Param::N, 100.0), (Param::Q, 0.02)]);
        assert_eq!(s.sweep.cell(3), vec![(Param::N, 200.0), (Param::Q, 0.5)]);
        assert_eq!(s.sweep.cell(5), vec![(Param::N, 200.0), (Param::Q, 0.9)]);
        // empty sweep: one cell, no overrides
        assert_eq!(Sweep::none().num_cells(), 1);
        assert!(Sweep::none().cell(0).is_empty());
    }

    #[test]
    fn scaling_multiplies_node_counts_only() {
        let s = demo().scaled(0.1);
        assert_eq!(s.substrates[0].n(), 50);
        assert_eq!(s.substrates[1].n(), 40);
        assert_eq!(s.sweep.axes[0].values, vec![10.0, 20.0]);
        assert_eq!(s.sweep.axes[1].values, vec![0.5, 0.02, 0.9]); // q untouched
        assert_eq!(s.trials, 3);
        // tiny factors clamp at 4 nodes
        assert_eq!(demo().scaled(1e-9).substrates[0].n(), 4);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(demo().validate().is_ok());
        let mut s = demo();
        s.protocols.clear();
        assert!(s.validate().is_err());
        let mut s = demo();
        s.trials = 0;
        assert!(s.validate().is_err());
        let mut s = demo();
        s.protocols = vec![Protocol::Probabilistic { beta: 1.5 }];
        assert!(s.validate().is_err());
        let mut s = demo();
        s.sweep = Sweep::over(Param::Beta, Vec::<f64>::new());
        assert!(s.validate().is_err());
        let mut s = demo();
        s.substrates = vec![Substrate::Edge {
            n: 10,
            engine: EdgeEngine::Dense,
            p_hat: PHatSpec::Fixed(0.1),
            q: 0.0,
            init: InitKind::Stationary,
            stepping: SteppingKind::PerPair,
        }];
        assert!(s.validate().is_err());
    }

    #[test]
    fn derived_specs_resolve_sensibly() {
        // p̂ clamped so the implied birth rate stays feasible
        let p = PHatSpec::Fixed(0.99).resolve(100, 1.0);
        assert!(p <= 0.5);
        let p = PHatSpec::LogFactor(3.0).resolve(1000, 0.5);
        assert!((p - 3.0 * (1000f64).ln() / 1000.0).abs() < 1e-12);
        // radius capped below the side, floored above the grid resolution
        let r = RadiusSpec::ThresholdFactor(100.0).resolve(400);
        assert!(r <= 20.0 * 0.95 + 1e-9);
        let r = RadiusSpec::Fixed(0.1).resolve(400);
        assert!(r > 1.0);
        assert_eq!(MoveRadiusSpec::RadiusFraction(0.5).resolve(8.0), 4.0);
    }

    #[test]
    fn stepping_round_trips_and_defaults_to_per_pair() {
        let mut s = demo();
        if let Substrate::Edge { stepping, .. } = &mut s.substrates[0] {
            *stepping = SteppingKind::Transitions;
        }
        let back = Scenario::parse(&s.to_json().render()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.substrates[0].label(), "edge-sparse-transitions");
        // Scenario files written before the field existed carry no
        // `stepping` key: decoding must default to the per-pair reference
        // path rather than reject them — and the default must re-render
        // byte-identically (no `stepping` key emitted).
        let default_text = demo().to_json().render();
        assert!(!default_text.contains("stepping"));
        let legacy = Scenario::parse(&default_text).unwrap();
        assert!(matches!(
            legacy.substrates[0],
            Substrate::Edge {
                stepping: SteppingKind::PerPair,
                ..
            }
        ));
        // Unknown ids are rejected, not silently defaulted.
        assert!(SteppingKind::from_id("warp").is_err());
        assert_eq!(
            SteppingKind::from_id("transitions").unwrap().id(),
            "transitions"
        );
    }

    #[test]
    fn labels_are_stable() {
        let s = demo();
        assert_eq!(s.substrates[0].label(), "edge-sparse");
        assert_eq!(s.substrates[1].label(), "geo-waypoint");
        assert_eq!(s.protocols[0].label(), "flooding");
        assert_eq!(s.protocols[1].label(), "probabilistic(beta=0.3)");
        assert_eq!(s.protocols[2].label(), "parsimonious(k=4)");
        assert_eq!(s.protocols[3].label(), "push_pull");
    }

    #[test]
    fn decode_rejects_malformed_scenarios() {
        for bad in [
            "{}",
            r#"{"name":"x","description":"","substrates":[],"protocols":[],"sweep":{"axes":[]},"trials":1,"round_budget":1}"#
                .replace("substrates\":[]", "substrates\":3")
                .as_str(),
            r#"{"name":"x","description":"","substrates":[{"family":"nope"}],"protocols":["flooding"],"sweep":{"axes":[]},"trials":1,"round_budget":1}"#,
            r#"{"name":"x","description":"","substrates":[],"protocols":["warp"],"sweep":{"axes":[]},"trials":1,"round_budget":1}"#,
        ] {
            assert!(Scenario::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
