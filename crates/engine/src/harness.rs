//! Environment-driven experiment harness.
//!
//! Shared by the `meg-lab` CLI and the thin `exp_*` wrapper binaries in
//! `meg-bench`: reads the workspace's standard environment knobs, applies
//! them to a scenario, runs it, and emits rows through the configured
//! [`OutputFormat`] sink.
//!
//! Environment knobs (all optional):
//!
//! * `MEG_SEED` — master seed (default 2009);
//! * `MEG_TRIALS` — overrides every cell's trial count;
//! * `MEG_SCALE` — node-count multiplier (the examples' separate
//!   `MEG_EXAMPLE_SCALE` knob deliberately does **not** apply here, so
//!   tuning one surface never silently changes the other);
//! * `MEG_OUTPUT` — `table` (default) | `json` | `csv`.

use crate::run::{run_scenario_streaming, Row};
use crate::scenario::{Scenario, ScenarioError};
use crate::sink::{format_from_env, render_rows, rows_to_table, OutputFormat, CSV_HEADER};

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// Master seed from `MEG_SEED` (default 2009, the paper's publication year).
pub fn master_seed_from_env() -> u64 {
    env_parse("MEG_SEED").unwrap_or(2009)
}

/// Scale factor from `MEG_SCALE` (default 1.0, floor 0.01).
pub fn scale_from_env() -> f64 {
    env_parse::<f64>("MEG_SCALE").unwrap_or(1.0).max(0.01)
}

/// Trial-count override from `MEG_TRIALS` (minimum 1 when set).
pub fn trials_from_env() -> Option<usize> {
    env_parse::<usize>("MEG_TRIALS").map(|t| t.max(1))
}

/// Applies the environment knobs (scale, trials) to a scenario.
pub fn apply_env(scenario: &Scenario) -> Scenario {
    let mut s = scenario.scaled(scale_from_env());
    if let Some(trials) = trials_from_env() {
        s.trials = trials;
    }
    s
}

/// Runs a scenario with streaming output to stdout in `format`, returning the
/// rows. JSON and CSV rows are printed as they are produced; the table is
/// rendered once at the end (column widths need the full batch).
pub fn run_and_emit(
    scenario: &Scenario,
    master_seed: u64,
    format: OutputFormat,
) -> Result<Vec<Row>, ScenarioError> {
    if format == OutputFormat::Csv {
        println!("{CSV_HEADER}");
    }
    let caption = format!(
        "{}: {} (seed {})",
        scenario.name, scenario.description, master_seed
    );
    let rows = run_scenario_streaming(scenario, master_seed, |row| match format {
        OutputFormat::Json => println!("{}", row.to_json().render()),
        OutputFormat::Csv => println!("{}", crate::sink::row_to_csv(row)),
        OutputFormat::Table => {}
    })?;
    if format == OutputFormat::Table {
        print!("{}", rows_to_table(&caption, &rows).render_ascii());
    }
    Ok(rows)
}

/// Entry point for the thin `exp_*` wrapper binaries: run the named built-in
/// scenario under the environment knobs and print `epilogue` (the
/// expected-shape commentary) afterwards — unless machine-readable output was
/// requested, which must stay clean.
///
/// Exits the process with status 2 on an unknown scenario name or an invalid
/// configuration.
pub fn run_builtin_experiment(name: &str, epilogue: &str) {
    let Some(scenario) = crate::builtin::builtin(name) else {
        eprintln!(
            "unknown built-in scenario `{name}` (available: {})",
            crate::builtin::builtin_names().join(", ")
        );
        std::process::exit(2);
    };
    let scenario = apply_env(&scenario);
    let format = format_from_env();
    match run_and_emit(&scenario, master_seed_from_env(), format) {
        Ok(_) => {
            if format == OutputFormat::Table && !epilogue.is_empty() {
                println!("\n{epilogue}");
            }
        }
        Err(e) => {
            eprintln!("scenario `{name}` failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Non-printing variant used by tests: runs under the environment knobs and
/// returns the rendered output instead of writing to stdout.
pub fn render_scenario(
    scenario: &Scenario,
    master_seed: u64,
    format: OutputFormat,
) -> Result<String, ScenarioError> {
    let caption = format!("{}: {}", scenario.name, scenario.description);
    let rows = crate::run::run_scenario(scenario, master_seed)?;
    Ok(render_rows(&caption, &rows, format))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::quick_smoke;

    #[test]
    fn env_defaults_are_sane() {
        assert!(master_seed_from_env() > 0 || std::env::var("MEG_SEED").is_ok());
        assert!(scale_from_env() > 0.0);
    }

    #[test]
    fn render_scenario_is_deterministic() {
        let s = quick_smoke().scaled(0.5);
        let a = render_scenario(&s, 42, OutputFormat::Json).unwrap();
        let b = render_scenario(&s, 42, OutputFormat::Json).unwrap();
        assert_eq!(a, b);
        assert!(a.lines().count() >= 1);
    }
}
