//! Environment-driven experiment harness.
//!
//! Shared by the `meg-lab` CLI and the thin `exp_*` wrapper binaries in
//! `meg-bench`: reads the workspace's standard environment knobs, applies
//! them to a scenario, runs it, and emits rows through the configured
//! [`OutputFormat`] sink.
//!
//! Environment knobs (all optional):
//!
//! * `MEG_SEED` — master seed (default 2009);
//! * `MEG_TRIALS` — overrides every cell's trial count;
//! * `MEG_SCALE` — node-count multiplier (the examples' separate
//!   `MEG_EXAMPLE_SCALE` knob deliberately does **not** apply here, so
//!   tuning one surface never silently changes the other);
//! * `MEG_OUTPUT` — `table` (default) | `json` | `csv`;
//! * `MEG_TARGET_STDERR` — switch to adaptive precision with this target
//!   standard error (`meg-lab run --target-stderr`), with
//!   `MEG_MIN_TRIALS` / `MEG_MAX_TRIALS` shaping the per-cell budget
//!   (defaults: the trial count, and 32 × min);
//! * `MEG_METRICS` — `report` | `jsonl`: install the `meg-obs` recorder for
//!   the run and emit the metrics summary to **stderr** (stdout stays the
//!   byte-identical row stream).

use crate::run::{run_scenario_streaming, Row};
use crate::scenario::{Precision, Scenario, ScenarioError};
use crate::sink::{format_from_env, render_rows, rows_to_table, OutputFormat, CSV_HEADER};
use meg_obs as obs;

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// Master seed from `MEG_SEED` (default 2009, the paper's publication year).
pub fn master_seed_from_env() -> u64 {
    env_parse("MEG_SEED").unwrap_or(2009)
}

/// Scale factor from `MEG_SCALE` (default 1.0, floor 0.01).
pub fn scale_from_env() -> f64 {
    env_parse::<f64>("MEG_SCALE").unwrap_or(1.0).max(0.01)
}

/// Trial-count override from `MEG_TRIALS` (minimum 1 when set).
pub fn trials_from_env() -> Option<usize> {
    env_parse::<usize>("MEG_TRIALS").map(|t| t.max(1))
}

/// Adaptive-precision target from `MEG_TARGET_STDERR` (rejects negative and
/// non-finite values).
pub fn target_stderr_from_env() -> Option<f64> {
    env_parse::<f64>("MEG_TARGET_STDERR").filter(|e| *e >= 0.0 && e.is_finite())
}

/// Adaptive minimum trial count from `MEG_MIN_TRIALS` (minimum 1 when set).
pub fn min_trials_from_env() -> Option<usize> {
    env_parse::<usize>("MEG_MIN_TRIALS").map(|t| t.max(1))
}

/// Adaptive per-cell trial budget from `MEG_MAX_TRIALS` (minimum 1 when set).
pub fn max_trials_from_env() -> Option<usize> {
    env_parse::<usize>("MEG_MAX_TRIALS").map(|t| t.max(1))
}

/// Which metrics sink a run should drive (`--metrics` / `MEG_METRICS`).
///
/// Metrics always land on stderr: stdout carries the row stream, whose bytes
/// are diffed against golden fixtures and across shards, and must be
/// identical whether or not a recorder is installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsMode {
    /// Human-readable sweep-level summary after the run.
    Report,
    /// One JSON line of counter deltas per cell, plus a final sweep line.
    Jsonl,
}

impl std::str::FromStr for MetricsMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "report" => Ok(MetricsMode::Report),
            "jsonl" => Ok(MetricsMode::Jsonl),
            other => Err(format!(
                "metrics mode must be report or jsonl, not `{other}`"
            )),
        }
    }
}

/// Metrics sink from `MEG_METRICS` (`report` | `jsonl`).
pub fn metrics_from_env() -> Option<MetricsMode> {
    env_parse("MEG_METRICS")
}

/// Emits one per-cell counter-delta JSON line to stderr (jsonl mode only)
/// and advances `prev` to the current snapshot.
pub fn emit_cell_metrics(mode: MetricsMode, cell: usize, prev: &mut obs::MetricsSnapshot) {
    if mode != MetricsMode::Jsonl {
        return;
    }
    let now = obs::snapshot();
    let deltas: Vec<String> = now
        .counter_deltas(prev)
        .iter()
        .map(|(n, v)| format!("\"{n}\":{v}"))
        .collect();
    eprintln!("{{\"cell\":{cell},\"counters\":{{{}}}}}", deltas.join(","));
    *prev = now;
}

/// Emits the sweep-level metrics summary to stderr.
pub fn emit_metrics_summary(mode: MetricsMode) {
    emit_metrics_summary_merged(mode, &[]);
}

/// [`emit_metrics_summary`] for distributed runs: folds the per-lane
/// snapshots the workers shipped back into the coordinator's own snapshot,
/// so the summary covers engine/protocol counters recorded *inside* the
/// worker subprocesses. Report mode prefixes one `worker i:` subtotal line
/// per lane (nonzero counters only); jsonl mode emits one
/// `{"worker":i,"metrics":{…}}` line per lane before the merged final line.
pub fn emit_metrics_summary_merged(mode: MetricsMode, worker_metrics: &[obs::MetricsSnapshot]) {
    let mut merged = obs::snapshot();
    for lane in worker_metrics {
        merged.merge(lane);
    }
    match mode {
        MetricsMode::Report => {
            for (i, lane) in worker_metrics.iter().enumerate() {
                let nonzero: Vec<String> = lane
                    .counters
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(n, v)| format!("{n} {v}"))
                    .collect();
                eprintln!(
                    "worker {i}: {}",
                    if nonzero.is_empty() {
                        "(no counters recorded)".to_string()
                    } else {
                        nonzero.join(" · ")
                    }
                );
            }
            eprint!("{}", merged.render_report());
        }
        MetricsMode::Jsonl => {
            for (i, lane) in worker_metrics.iter().enumerate() {
                let line = crate::json::Json::obj([
                    ("worker", crate::json::Json::Num(i as f64)),
                    ("metrics", crate::metrics::snapshot_to_json(lane)),
                ]);
                eprintln!("{}", line.render());
            }
            eprintln!("{}", merged.render_jsonl());
        }
    }
}

/// Resolves the adaptive-precision knobs into a [`Precision::TargetStderr`]
/// policy — the single defaulting rule behind both the `meg-lab` flags and
/// the `MEG_*` environment spellings. `explicit_min` / `explicit_max` carry
/// the user's values when given; defaults are `min = fallback_trials.max(2)`
/// (the scenario's trial count) and `max = 32 × min`. A *defaulted* minimum
/// yields to an explicit tiny budget; an explicit inconsistent pair is an
/// error.
pub fn resolve_target_stderr(
    eps: f64,
    explicit_min: Option<usize>,
    explicit_max: Option<usize>,
    fallback_trials: usize,
) -> Result<Precision, String> {
    let mut min = explicit_min.unwrap_or_else(|| fallback_trials.max(2));
    let max = explicit_max.unwrap_or_else(|| min.saturating_mul(32));
    if max < min {
        if explicit_min.is_some() {
            return Err(format!(
                "adaptive max_trials={max} must be ≥ min_trials={min}"
            ));
        }
        min = max;
    }
    Ok(Precision::TargetStderr {
        eps,
        min_trials: min,
        max_trials: max,
    })
}

/// Applies the environment knobs (scale, trials, adaptive precision) to a
/// scenario.
pub fn apply_env(scenario: &Scenario) -> Scenario {
    let mut s = scenario.scaled(scale_from_env());
    if let Some(trials) = trials_from_env() {
        s.trials = trials;
    }
    if let Some(eps) = target_stderr_from_env() {
        s.precision =
            resolve_target_stderr(eps, min_trials_from_env(), max_trials_from_env(), s.trials)
                .unwrap_or_else(|_| {
                    // The environment has no error channel: an explicit
                    // inconsistent pair clamps the budget up to the minimum.
                    let min = min_trials_from_env().expect("inconsistency implies an explicit min");
                    Precision::TargetStderr {
                        eps,
                        min_trials: min,
                        max_trials: min,
                    }
                });
    }
    s
}

/// Runs a scenario with streaming output to stdout in `format`, returning the
/// rows. JSON and CSV rows are printed as they are produced; the table is
/// rendered once at the end (column widths need the full batch). Honors
/// `MEG_METRICS` (see [`run_and_emit_observed`]).
pub fn run_and_emit(
    scenario: &Scenario,
    master_seed: u64,
    format: OutputFormat,
) -> Result<Vec<Row>, ScenarioError> {
    run_and_emit_observed(scenario, master_seed, format, metrics_from_env())
}

/// [`run_and_emit`] with an explicit metrics sink: when `metrics` is set the
/// `meg-obs` recorder is (re)installed for the run and the summary lands on
/// stderr afterwards — stdout's row bytes are identical either way.
pub fn run_and_emit_observed(
    scenario: &Scenario,
    master_seed: u64,
    format: OutputFormat,
    metrics: Option<MetricsMode>,
) -> Result<Vec<Row>, ScenarioError> {
    if format == OutputFormat::Csv {
        println!("{CSV_HEADER}");
    }
    let caption = format!(
        "{}: {} (seed {})",
        scenario.name, scenario.description, master_seed
    );
    if metrics.is_some() {
        obs::install();
    }
    let mut prev = obs::snapshot();
    let rows = run_scenario_streaming(scenario, master_seed, |row| {
        match format {
            OutputFormat::Json => println!("{}", row.to_json().render()),
            OutputFormat::Csv => println!("{}", crate::sink::row_to_csv(row)),
            OutputFormat::Table => {}
        }
        if let Some(mode) = metrics {
            emit_cell_metrics(mode, row.cell, &mut prev);
        }
    })?;
    if format == OutputFormat::Table {
        print!("{}", rows_to_table(&caption, &rows).render_ascii());
    }
    if let Some(mode) = metrics {
        emit_metrics_summary(mode);
    }
    Ok(rows)
}

/// Entry point for the thin `exp_*` wrapper binaries: run the named built-in
/// scenario under the environment knobs and print `epilogue` (the
/// expected-shape commentary) afterwards — unless machine-readable output was
/// requested, which must stay clean.
///
/// Exits the process with status 2 on an unknown scenario name or an invalid
/// configuration.
pub fn run_builtin_experiment(name: &str, epilogue: &str) {
    let Some(scenario) = crate::builtin::builtin(name) else {
        eprintln!(
            "unknown built-in scenario `{name}` (available: {})",
            crate::builtin::builtin_names().join(", ")
        );
        std::process::exit(2);
    };
    let scenario = apply_env(&scenario);
    let format = format_from_env();
    match run_and_emit(&scenario, master_seed_from_env(), format) {
        Ok(_) => {
            if format == OutputFormat::Table && !epilogue.is_empty() {
                println!("\n{epilogue}");
            }
        }
        Err(e) => {
            eprintln!("scenario `{name}` failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Non-printing variant used by tests: runs under the environment knobs and
/// returns the rendered output instead of writing to stdout.
pub fn render_scenario(
    scenario: &Scenario,
    master_seed: u64,
    format: OutputFormat,
) -> Result<String, ScenarioError> {
    let caption = format!("{}: {}", scenario.name, scenario.description);
    let rows = crate::run::run_scenario(scenario, master_seed)?;
    Ok(render_rows(&caption, &rows, format))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::quick_smoke;

    #[test]
    fn env_defaults_are_sane() {
        assert!(master_seed_from_env() > 0 || std::env::var("MEG_SEED").is_ok());
        assert!(scale_from_env() > 0.0);
    }

    #[test]
    fn render_scenario_is_deterministic() {
        let s = quick_smoke().scaled(0.5);
        let a = render_scenario(&s, 42, OutputFormat::Json).unwrap();
        let b = render_scenario(&s, 42, OutputFormat::Json).unwrap();
        assert_eq!(a, b);
        assert!(a.lines().count() >= 1);
    }
}
