//! Built-in named scenarios.
//!
//! These reproduce **all twelve** pre-engine experiment binaries as data —
//! every `exp_*` binary in `meg-bench` is now a thin wrapper over a
//! scenario in this registry — plus a `quick_smoke` scenario sized for CI.
//! `meg-lab list` prints the registry; `meg-lab run <name>` executes one.
//! `docs/EXPERIMENTS.md` maps each scenario to the paper section or theorem
//! it reproduces, with a ready-to-run `meg-lab` invocation per row.

use crate::scenario::{
    AdversarialKind, EdgeEngine, InitKind, MobilityKind, MoveRadiusSpec, PHatSpec, Param,
    Precision, Protocol, RadiusSpec, Scenario, StaticKind, SteppingKind, Substrate, Sweep,
};

/// Round budget used by flooding scenarios: generous enough that only
/// genuinely disconnected regimes fail to complete (mirrors
/// `meg_bench::ROUND_BUDGET`).
pub const FLOOD_BUDGET: u64 = 2_000_000;

/// Names of all built-in scenarios, in registry order.
pub fn builtin_names() -> Vec<&'static str> {
    vec![
        "geo_vs_radius",
        "edge_vs_n",
        "mobility_models",
        "protocol_variants",
        "geo_vs_n",
        "edge_vs_density",
        "diameter_vs_flooding",
        "edge_expansion",
        "edge_stationary_vs_worst",
        "general_bound",
        "geo_expansion",
        "geo_mobility",
        "epidemic_threshold",
        "rumor_dynamism",
        "byzantine_tamper",
        "quick_smoke",
    ]
}

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    match name {
        "geo_vs_radius" => Some(geo_vs_radius()),
        "edge_vs_n" => Some(edge_vs_n()),
        "mobility_models" => Some(mobility_models()),
        "protocol_variants" => Some(protocol_variants()),
        "geo_vs_n" => Some(geo_vs_n()),
        "edge_vs_density" => Some(edge_vs_density()),
        "diameter_vs_flooding" => Some(diameter_vs_flooding()),
        "edge_expansion" => Some(edge_expansion()),
        "edge_stationary_vs_worst" => Some(edge_stationary_vs_worst()),
        "general_bound" => Some(general_bound()),
        "geo_expansion" => Some(geo_expansion()),
        "geo_mobility" => Some(geo_mobility()),
        "epidemic_threshold" => Some(epidemic_threshold()),
        "rumor_dynamism" => Some(rumor_dynamism()),
        "byzantine_tamper" => Some(byzantine_tamper()),
        "quick_smoke" => Some(quick_smoke()),
        _ => None,
    }
}

/// Theorems 3.4/3.5: fix `n`, sweep the transmission radius from the
/// connectivity threshold towards `√n` (with `r = R/2`), and watch the
/// flooding time fall like `√n/R`.
pub fn geo_vs_radius() -> Scenario {
    Scenario {
        name: "geo_vs_radius".into(),
        description: "geometric-MEG flooding time vs transmission radius (Thm 3.4/3.5 shape)"
            .into(),
        substrates: vec![Substrate::Geometric {
            n: 3_000,
            mobility: MobilityKind::GridWalk,
            radius: RadiusSpec::ThresholdFactor(1.0),
            move_radius: MoveRadiusSpec::RadiusFraction(0.5),
        }],
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::over(Param::RadiusFactor, [1.0, 1.5, 2.0, 3.0, 5.0, 8.0]),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// Theorem 4.3 / Corollary 4.5: sweep `n` with `p̂ = 3·ln n/n` pinned to the
/// sparse connected regime, for fast and slow churn `q` — flooding time should
/// track `log n / log(np̂)` and ignore `q`.
pub fn edge_vs_n() -> Scenario {
    Scenario {
        name: "edge_vs_n".into(),
        description: "edge-MEG flooding time vs n at p̂ = 3·ln n/n, fast vs slow churn (Cor 4.5)"
            .into(),
        substrates: vec![Substrate::Edge {
            n: 1_000,
            engine: EdgeEngine::Sparse,
            p_hat: PHatSpec::LogFactor(3.0),
            q: 0.5,
            init: InitKind::Stationary,
            stepping: SteppingKind::PerPair,
        }],
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::over(Param::N, [1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0])
            .and(Param::Q, [0.5, 0.02]),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// The "further mobility models" claim: the same geometric-MEG bounds hold
/// for every mobility model with an (almost) uniform stationary law.
pub fn mobility_models() -> Scenario {
    Scenario {
        name: "mobility_models".into(),
        description:
            "geometric-MEG flooding time across all four mobility models (uniformity claim)".into(),
        substrates: MobilityKind::ALL
            .into_iter()
            .map(|mobility| Substrate::Geometric {
                n: 2_000,
                mobility,
                // radius = 2√(ln n) = the connectivity threshold at c = 2
                radius: RadiusSpec::ThresholdFactor(1.0),
                move_radius: MoveRadiusSpec::RadiusFraction(0.5),
            })
            .collect(),
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::none(),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// Flooding as the baseline: run the protocol variants on one edge-MEG and
/// one geometric-MEG and compare rounds vs message overhead.
pub fn protocol_variants() -> Scenario {
    Scenario {
        name: "protocol_variants".into(),
        description: "dissemination protocols (flooding, probabilistic, parsimonious, push-pull) \
                      on stationary MEGs of both families"
            .into(),
        substrates: vec![
            Substrate::Edge {
                n: 2_000,
                engine: EdgeEngine::Sparse,
                p_hat: PHatSpec::LogFactor(4.0),
                q: 0.2,
                init: InitKind::Stationary,
                stepping: SteppingKind::PerPair,
            },
            Substrate::Geometric {
                n: 1_500,
                mobility: MobilityKind::GridWalk,
                radius: RadiusSpec::ThresholdFactor(1.0),
                move_radius: MoveRadiusSpec::RadiusFraction(0.5),
            },
        ],
        protocols: vec![
            Protocol::Flooding,
            Protocol::Probabilistic { beta: 0.3 },
            Protocol::Parsimonious { active_rounds: 1 },
            Protocol::Parsimonious { active_rounds: 4 },
            Protocol::PushPull,
        ],
        sweep: Sweep::none(),
        trials: 3,
        round_budget: 100_000,
        precision: Precision::FixedTrials,
    }
}

/// Theorem 3.4 / Corollary 3.6: sweep `n` at the connectivity-threshold
/// radius (and at a 2.5× denser one), with `r = R/2`, and check the measured
/// flooding time scales like `Θ(√n / R)`. Because both radii are
/// [`RadiusSpec::ThresholdFactor`] specs, they re-resolve against each swept
/// `n` — the coupling the legacy `exp_geo_vs_n` binary computed by hand.
pub fn geo_vs_n() -> Scenario {
    Scenario {
        name: "geo_vs_n".into(),
        description: "geometric-MEG flooding time vs n at threshold and denser radii (Cor 3.6)"
            .into(),
        substrates: vec![
            Substrate::Geometric {
                n: 1_000,
                mobility: MobilityKind::GridWalk,
                radius: RadiusSpec::ThresholdFactor(1.0),
                move_radius: MoveRadiusSpec::RadiusFraction(0.5),
            },
            Substrate::Geometric {
                n: 1_000,
                mobility: MobilityKind::GridWalk,
                radius: RadiusSpec::ThresholdFactor(2.5),
                move_radius: MoveRadiusSpec::RadiusFraction(0.5),
            },
        ],
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::over(Param::N, [500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0]),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// Theorems 4.3 / 4.4: fix `n`, sweep the stationary edge probability `p̂`
/// from just above the connectivity threshold (`2·ln n/n` at the default
/// constant) into the dense regime. Flooding time must fall as `np̂` grows
/// and stay sandwiched between the paper's lower bound and upper shape. The
/// [`Param::PHatFactor`] axis values are the legacy `exp_edge_vs_density`
/// threshold multiples `[1.5, 3, 6, 15, 40, 120]` times that constant.
pub fn edge_vs_density() -> Scenario {
    Scenario {
        name: "edge_vs_density".into(),
        description: "edge-MEG flooding time vs density p̂ above the threshold (Thm 4.3/4.4)".into(),
        substrates: vec![Substrate::Edge {
            n: 4_000,
            engine: EdgeEngine::Sparse,
            p_hat: PHatSpec::LogFactor(3.0),
            q: 0.5,
            init: InitKind::Stationary,
            stepping: SteppingKind::PerPair,
        }],
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::over(Param::PHatFactor, [3.0, 6.0, 12.0, 30.0, 80.0, 240.0]),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// The Introduction's separation example: the rotating star has constant
/// snapshot diameter yet floods in `Θ(n)` rounds from the worst source,
/// while the rotating bridge (same constant diameter, good expansion)
/// floods in O(1) — diameter is irrelevant, expansion decides. The
/// diameter and Theorem 2.5 bound probes measure the other two columns of
/// the legacy table.
pub fn diameter_vs_flooding() -> Scenario {
    Scenario {
        name: "diameter_vs_flooding".into(),
        description: "snapshot diameter vs flooding time on adversarial dynamic graphs (Intro)"
            .into(),
        substrates: vec![
            Substrate::Adversarial {
                n: 64,
                construction: AdversarialKind::RotatingStar,
            },
            Substrate::Adversarial {
                n: 64,
                construction: AdversarialKind::RotatingBridge,
            },
        ],
        protocols: vec![
            Protocol::Flooding,
            Protocol::DiameterProbe,
            Protocol::BoundProbe {
                snapshots: 5,
                samples: 20,
            },
        ],
        sweep: Sweep::over(Param::N, [64.0, 256.0, 1024.0]),
        trials: 2,
        round_budget: 20_000,
        precision: Precision::FixedTrials,
    }
}

/// Theorem 4.1 / Lemma 4.2: the expansion profile of a stationary edge-MEG
/// snapshot (an Erdős–Rényi `G(n, p̂)`). Small sets (`h ≤ 1/p̂`) expand by
/// about the expected degree `np̂`; larger sets see `≈ n/(ch)` — the two
/// regimes Theorem 2.5 turns into the edge-MEG flooding bound.
pub fn edge_expansion() -> Scenario {
    Scenario {
        name: "edge_expansion".into(),
        description: "expansion profile of stationary edge-MEG snapshots G(n, p̂) (Thm 4.1)".into(),
        substrates: vec![Substrate::Edge {
            n: 4_000,
            engine: EdgeEngine::Sparse,
            p_hat: PHatSpec::LogFactor(4.0),
            q: 0.5,
            init: InitKind::Stationary,
            stepping: SteppingKind::PerPair,
        }],
        protocols: vec![Protocol::ExpansionProbe {
            set_size: 1,
            samples: 30,
        }],
        sweep: Sweep::over(
            Param::SetSize,
            [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 2000.0],
        ),
        trials: 5,
        round_budget: 1_000,
        precision: Precision::FixedTrials,
    }
}

/// The Section 1 gap claim: flooding on the *same* edge-MEG started from
/// the stationary distribution vs from the empty graph (the worst case of
/// reference \[9\]). As `q` shrinks at fixed `p̂`, the stationary start stays
/// flat while the empty start waits `Θ(1/p)` rounds for edges to be born —
/// the "exponential gap".
pub fn edge_stationary_vs_worst() -> Scenario {
    Scenario {
        name: "edge_stationary_vs_worst".into(),
        description: "stationary vs empty-start edge-MEG flooding — the exponential gap (Sec 1)"
            .into(),
        substrates: vec![
            Substrate::Edge {
                n: 1_500,
                engine: EdgeEngine::Sparse,
                p_hat: PHatSpec::LogFactor(4.0),
                q: 0.5,
                init: InitKind::Stationary,
                stepping: SteppingKind::PerPair,
            },
            Substrate::Edge {
                n: 1_500,
                engine: EdgeEngine::Sparse,
                p_hat: PHatSpec::LogFactor(4.0),
                q: 0.5,
                init: InitKind::Empty,
                stepping: SteppingKind::PerPair,
            },
        ],
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::over(Param::Q, [0.5, 0.1, 0.02, 0.004]),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// Lemma 2.4 / Theorem 2.5 / Corollary 2.6 closed empirically: measure an
/// expansion sequence of each evolving graph, evaluate the flooding bound
/// on it, and compare with the flooding time measured on independent runs.
/// The bound must dominate on every substrate and is near-tight for the
/// expander-like ones (both MEG families, static `G(n, p̂)`) while staying
/// loose only for the genuinely weak-expanding 2-D grid.
pub fn general_bound() -> Scenario {
    Scenario {
        name: "general_bound".into(),
        description: "measured expansion sequence → Thm 2.5 bound vs measured flooding (Lem 2.4)"
            .into(),
        substrates: vec![
            Substrate::Geometric {
                n: 1_500,
                mobility: MobilityKind::GridWalk,
                radius: RadiusSpec::ThresholdFactor(1.0),
                move_radius: MoveRadiusSpec::RadiusFraction(0.5),
            },
            Substrate::Edge {
                n: 1_500,
                engine: EdgeEngine::Sparse,
                p_hat: PHatSpec::LogFactor(4.0),
                q: 0.5,
                init: InitKind::Stationary,
                stepping: SteppingKind::PerPair,
            },
            Substrate::Static {
                n: 1_500,
                graph: StaticKind::ErdosRenyi {
                    p_hat: PHatSpec::LogFactor(4.0),
                },
            },
            Substrate::Static {
                n: 1_600,
                graph: StaticKind::Grid2d,
            },
        ],
        protocols: vec![
            Protocol::Flooding,
            Protocol::BoundProbe {
                snapshots: 4,
                samples: 25,
            },
        ],
        sweep: Sweep::none(),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// Theorem 3.2 and Claim 1: the occupancy concentration `λ` of the
/// `⌈√(5n)/R⌉²` cell partition (every cell holds `Θ(R²)` nodes) and the two
/// expansion regimes of a stationary geometric snapshot — `≈ αR²/h` for
/// small sets, `≈ βR/√h` for large ones. The radius sits at 1.75× the
/// connectivity threshold so the finite-size concentration is visible.
///
/// The set-size grid lives in the protocol list, not a [`Param::SetSize`]
/// sweep axis: a sweep would cross the sizes with [`Protocol::OccupancyProbe`]
/// too (for which they are inert), multiplying the occupancy measurement
/// into redundant cells.
pub fn geo_expansion() -> Scenario {
    let profile = [1, 4, 16, 64, 256, 1024, 2000].map(|set_size| Protocol::ExpansionProbe {
        set_size,
        samples: 30,
    });
    Scenario {
        name: "geo_expansion".into(),
        description: "cell occupancy (Claim 1) + expansion profile of geometric snapshots \
                      (Thm 3.2)"
            .into(),
        substrates: vec![Substrate::Geometric {
            n: 4_000,
            mobility: MobilityKind::GridWalk,
            radius: RadiusSpec::ThresholdFactor(1.75),
            move_radius: MoveRadiusSpec::RadiusFraction(0.5),
        }],
        protocols: std::iter::once(Protocol::OccupancyProbe)
            .chain(profile)
            .collect(),
        sweep: Sweep::none(),
        trials: 5,
        round_budget: 1_000,
        precision: Precision::FixedTrials,
    }
}

/// Corollary 3.6 and the Conclusions: fix `n` and `R`, sweep the node speed
/// `r` from essentially zero (a static random geometric graph — the grid
/// resolution is 1, so a sub-1 move radius freezes the walk) to 8× the
/// transmission radius. As long as `r = O(R)`, mobility has an almost
/// negligible impact on the flooding time.
pub fn geo_mobility() -> Scenario {
    Scenario {
        name: "geo_mobility".into(),
        description: "geometric-MEG flooding time vs node speed r/R (Cor 3.6)".into(),
        substrates: vec![Substrate::Geometric {
            n: 3_000,
            mobility: MobilityKind::GridWalk,
            radius: RadiusSpec::ThresholdFactor(1.8),
            move_radius: MoveRadiusSpec::RadiusFraction(0.5),
        }],
        protocols: vec![Protocol::Flooding],
        sweep: Sweep::over(
            Param::MoveRadiusFraction,
            [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
        ),
        trials: 5,
        round_budget: FLOOD_BUDGET,
        precision: Precision::FixedTrials,
    }
}

/// The epidemic threshold on a stationary edge-MEG: sweep the contagion
/// probability across the critical value `≈ 1/(E[deg]·d)` for both SIS and
/// SIR. Below threshold both go extinct fast (small final size); above it
/// SIR sweeps a large fraction of the graph and SIS turns *endemic* — those
/// cells are censored at the round budget and report `completion_rate < 1`
/// by design (the budget is a measurement decision, not a failure).
pub fn epidemic_threshold() -> Scenario {
    Scenario {
        name: "epidemic_threshold".into(),
        description:
            "SIS extinction vs endemic persistence and SIR final size across the contagion threshold"
                .into(),
        substrates: vec![Substrate::Edge {
            n: 600,
            engine: EdgeEngine::Sparse,
            p_hat: PHatSpec::LogFactor(3.0),
            q: 0.5,
            init: InitKind::Stationary,
            stepping: SteppingKind::PerPair,
        }],
        protocols: vec![
            Protocol::Sis {
                contagion: 0.1,
                infection_rounds: 2,
                immunity_rounds: 0,
            },
            Protocol::Sir {
                contagion: 0.1,
                infection_rounds: 2,
            },
        ],
        sweep: Sweep::over(Param::Contagion, [0.02, 0.1, 0.5]),
        trials: 3,
        round_budget: 2_000,
        precision: Precision::FixedTrials,
    }
}

/// The arXiv:1302.3828 dynamism-helps comparison: push-only rumor spreading
/// on a stationary edge-MEG vs a *static* `G(n, p̂)` at the same expected
/// density, pinned below the static connectivity threshold
/// (`p̂ = 0.8·ln n/n`). The static baseline strands isolated/low-degree
/// nodes and censors at the round budget, while the evolving substrate
/// re-randomizes neighborhoods every round and completes fast — the regime
/// tag on each row names the sparse regime the comparison lives in.
pub fn rumor_dynamism() -> Scenario {
    Scenario {
        name: "rumor_dynamism".into(),
        description:
            "push-only rumor spreading: evolving vs static G(n,p̂) at matched sub-threshold density \
             (arXiv:1302.3828 dynamism-helps regime)"
                .into(),
        substrates: vec![
            Substrate::Edge {
                n: 500,
                engine: EdgeEngine::Sparse,
                p_hat: PHatSpec::LogFactor(0.8),
                q: 0.5,
                init: InitKind::Stationary,
                stepping: SteppingKind::PerPair,
            },
            Substrate::Static {
                n: 500,
                graph: StaticKind::ErdosRenyi {
                    p_hat: PHatSpec::LogFactor(0.8),
                },
            },
        ],
        protocols: vec![Protocol::Rumor],
        sweep: Sweep::none(),
        trials: 3,
        round_budget: 3_000,
        precision: Precision::FixedTrials,
    }
}

/// Byzantine tampering in push–pull gossip: sweep the adversary count and
/// watch the *correct*-information coverage (the trial observable) fall
/// even though every node ends up informed of *something*.
pub fn byzantine_tamper() -> Scenario {
    Scenario {
        name: "byzantine_tamper".into(),
        description:
            "push–pull with tampering adversaries: correct-information coverage vs Byzantine count"
                .into(),
        substrates: vec![Substrate::Edge {
            n: 400,
            engine: EdgeEngine::Sparse,
            p_hat: PHatSpec::LogFactor(3.0),
            q: 0.5,
            init: InitKind::Stationary,
            stepping: SteppingKind::PerPair,
        }],
        protocols: vec![Protocol::Byzantine { count: 4 }],
        sweep: Sweep::over(Param::ByzantineCount, [0.0, 4.0, 16.0]),
        trials: 3,
        round_budget: 10_000,
        precision: Precision::FixedTrials,
    }
}

/// A deliberately tiny scenario covering both families and two protocols;
/// used by CI smoke stages and the integration tests.
pub fn quick_smoke() -> Scenario {
    Scenario {
        name: "quick_smoke".into(),
        description: "tiny two-family, two-protocol scenario for CI smoke runs".into(),
        substrates: vec![
            Substrate::Edge {
                n: 120,
                engine: EdgeEngine::Sparse,
                p_hat: PHatSpec::LogFactor(3.0),
                q: 0.5,
                init: InitKind::Stationary,
                stepping: SteppingKind::PerPair,
            },
            Substrate::Geometric {
                n: 150,
                mobility: MobilityKind::GridWalk,
                radius: RadiusSpec::ThresholdFactor(1.2),
                move_radius: MoveRadiusSpec::RadiusFraction(0.5),
            },
        ],
        protocols: vec![Protocol::Flooding, Protocol::PushPull],
        sweep: Sweep::none(),
        trials: 2,
        round_budget: 50_000,
        precision: Precision::FixedTrials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn registry_is_consistent() {
        for name in builtin_names() {
            let s = builtin(name).unwrap_or_else(|| panic!("missing builtin `{name}`"));
            assert_eq!(s.name, name, "registry key must match scenario name");
            assert!(s.validate().is_ok(), "builtin `{name}` fails validation");
            assert!(!s.description.is_empty());
            // Every builtin survives a JSON round-trip.
            let back = Scenario::parse(&s.to_json().render()).unwrap();
            assert_eq!(back, s);
        }
        assert!(builtin("nope").is_none());
    }

    #[test]
    fn builtins_cover_both_families_and_multiple_protocols() {
        let all: Vec<Scenario> = builtin_names()
            .into_iter()
            .map(|n| builtin(n).unwrap())
            .collect();
        let families: std::collections::HashSet<String> = all
            .iter()
            .flat_map(|s| s.substrates.iter().map(|sub| sub.label()))
            .collect();
        assert!(families.iter().any(|f| f.starts_with("edge")));
        assert!(families.iter().any(|f| f.starts_with("geo")));
        let protocols: std::collections::HashSet<String> = all
            .iter()
            .flat_map(|s| s.protocols.iter().map(|p| p.label()))
            .collect();
        assert!(protocols.len() >= 2, "need ≥2 distinct protocols");
    }

    #[test]
    fn quick_smoke_is_actually_quick() {
        let s = quick_smoke();
        assert!(s.num_cells() <= 8);
        assert!(s.substrates.iter().all(|sub| sub.n() <= 200));
    }
}
