//! The engine: resolves a [`Scenario`] into cells and executes them.
//!
//! Execution contract:
//!
//! * cells are enumerated deterministically (substrates × protocols × sweep
//!   grid, in declaration order);
//! * every cell's seed is `derive_seed(labeled_seed(master, scenario.name),
//!   cell_index)`, so **any single cell is reproducible in isolation** — rerun
//!   the scenario with the same master seed and cell `k` sees exactly the
//!   same randomness, regardless of which other cells exist or how threads
//!   schedule them;
//! * trials inside a cell run through [`meg_stats::run_trials`], which gives
//!   each trial its own derived RNG stream (parallel-safe);
//! * every row records the `meg_core::spec` regime classification of its
//!   resolved parameters, so results stay honest about which theorem
//!   hypotheses they satisfy.

use crate::scenario::{
    EdgeEngine, MobilityKind, Param, Protocol, Scenario, ScenarioError, Substrate,
};
use meg_core::evolving::EvolvingGraph;
use meg_core::protocols::{
    parsimonious_flood, probabilistic_flood, push_pull_gossip, ProtocolResult,
};
use meg_core::spec;
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_mobility::{Billiard, RandomWaypoint, TorusWalkers};
use meg_stats::seeds::{derive_seed, labeled_seed};
use meg_stats::{run_trials, Summary};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Fully resolved numeric parameters of one cell's substrate.
#[derive(Clone, Debug, PartialEq)]
pub enum ResolvedSubstrate {
    /// Concrete edge-MEG configuration.
    Edge {
        /// Evolution engine.
        engine: EdgeEngine,
        /// Concrete parameters `M(n, p, q)`.
        params: EdgeMegParams,
        /// Stationary edge probability `p̂`.
        p_hat: f64,
        /// Initial distribution.
        init: meg_core::evolving::InitialDistribution,
    },
    /// Concrete geometric-MEG configuration.
    Geometric {
        /// Number of nodes.
        n: usize,
        /// Mobility model.
        mobility: MobilityKind,
        /// Transmission radius `R`.
        radius: f64,
        /// Move radius `r`.
        move_radius: f64,
    },
}

impl ResolvedSubstrate {
    /// `"edge"` or `"geometric"`.
    pub fn family(&self) -> &'static str {
        match self {
            ResolvedSubstrate::Edge { .. } => "edge",
            ResolvedSubstrate::Geometric { .. } => "geometric",
        }
    }

    /// The `meg_core::spec` regime classification of this configuration.
    pub fn regime(&self) -> String {
        let c = spec::DEFAULT_THRESHOLD_CONSTANT;
        match self {
            ResolvedSubstrate::Edge { params, p_hat, .. } => {
                format!("{:?}", spec::edge_regime(params.n, *p_hat, c))
            }
            ResolvedSubstrate::Geometric {
                n,
                radius,
                move_radius,
                ..
            } => format!("{:?}", spec::geometric_regime(*n, *radius, *move_radius, c)),
        }
    }

    /// The resolved numeric parameters, as `(name, value)` pairs.
    pub fn params(&self) -> Vec<(String, f64)> {
        match self {
            ResolvedSubstrate::Edge { params, p_hat, .. } => vec![
                ("n".into(), params.n as f64),
                ("p_hat".into(), *p_hat),
                ("p".into(), params.p),
                ("q".into(), params.q),
            ],
            ResolvedSubstrate::Geometric {
                n,
                radius,
                move_radius,
                ..
            } => vec![
                ("n".into(), *n as f64),
                ("radius".into(), *radius),
                ("move_radius".into(), *move_radius),
            ],
        }
    }
}

/// One fully resolved unit of work: a substrate, a protocol, and budgets.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Global cell index (also the seed-derivation index).
    pub index: usize,
    /// Substrate label from the scenario (e.g. `edge-sparse`).
    pub substrate_label: String,
    /// Resolved substrate parameters.
    pub substrate: ResolvedSubstrate,
    /// Protocol with sweep overrides applied.
    pub protocol: Protocol,
    /// Trials to run.
    pub trials: usize,
    /// Round budget per trial.
    pub round_budget: u64,
}

/// Aggregated result of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Scenario name.
    pub scenario: String,
    /// Cell index within the scenario.
    pub cell: usize,
    /// `"edge"` or `"geometric"`.
    pub family: String,
    /// Substrate label (`edge-sparse`, `geo-waypoint`, …).
    pub substrate: String,
    /// Protocol label (`flooding`, `probabilistic(beta=0.3)`, …).
    pub protocol: String,
    /// Resolved numeric parameters of the cell.
    pub params: Vec<(String, f64)>,
    /// `meg_core::spec` regime classification.
    pub regime: String,
    /// The derived cell seed (reproduces this row in isolation).
    pub seed: u64,
    /// Trials executed.
    pub trials: usize,
    /// Fraction of trials that completed within the round budget.
    pub completion_rate: f64,
    /// Summary of completion times over completed trials (`None` if none).
    pub rounds: Option<Summary>,
    /// Mean messages sent per trial (over all trials).
    pub mean_messages: f64,
}

impl Row {
    /// Renders the row as one JSON-lines object.
    ///
    /// The rendering is **lossless**: [`Row::from_json`] reconstructs an
    /// equal `Row` (the distributed worker protocol and `meg-lab merge`
    /// re-rendering depend on this), which is why the summary is emitted in
    /// full (`median_rounds`, `var_rounds`, `completed_trials`) rather than
    /// only the headline moments.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let rounds = |f: fn(&Summary) -> f64| match &self.rounds {
            Some(s) => Json::Num(f(s)),
            None => Json::Null,
        };
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("cell", Json::Num(self.cell as f64)),
            ("family", Json::Str(self.family.clone())),
            ("substrate", Json::Str(self.substrate.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            (
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("regime", Json::Str(self.regime.clone())),
            // u64 seeds can exceed 2^53; transported as a string.
            ("seed", Json::Str(self.seed.to_string())),
            ("trials", Json::Num(self.trials as f64)),
            ("completion_rate", Json::Num(self.completion_rate)),
            ("mean_rounds", rounds(|s| s.mean)),
            ("min_rounds", rounds(|s| s.min)),
            ("max_rounds", rounds(|s| s.max)),
            ("std_rounds", rounds(|s| s.std_dev)),
            ("median_rounds", rounds(|s| s.median)),
            ("var_rounds", rounds(|s| s.variance)),
            (
                "completed_trials",
                Json::Num(self.rounds.as_ref().map_or(0, |s| s.count) as f64),
            ),
            ("mean_messages", Json::Num(self.mean_messages)),
        ])
    }

    /// Decodes a row from its [`to_json`](Row::to_json) representation.
    ///
    /// Exact inverse: every `f64` survives because the JSON writer uses
    /// shortest-round-trip formatting, and the summary fields are all
    /// transported explicitly.
    pub fn from_json(v: &crate::json::Json) -> Result<Row, ScenarioError> {
        use crate::json::Json;
        let err = |m: String| ScenarioError(format!("row: {m}"));
        let get = |key: &str| v.get(key).ok_or_else(|| err(format!("missing `{key}`")));
        let get_str = |key: &str| {
            get(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| err(format!("`{key}` must be a string")))
        };
        let get_num = |key: &str| {
            get(key)?
                .as_f64()
                .ok_or_else(|| err(format!("`{key}` must be a number")))
        };
        let params = match get("params")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or_else(|| err(format!("param `{k}` must be a number")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(err("`params` must be an object".into())),
        };
        let rounds = match get("mean_rounds")? {
            Json::Null => None,
            _ => Some(Summary {
                count: get("completed_trials")?
                    .as_usize()
                    .ok_or_else(|| err("`completed_trials` must be an integer".into()))?,
                mean: get_num("mean_rounds")?,
                variance: get_num("var_rounds")?,
                std_dev: get_num("std_rounds")?,
                min: get_num("min_rounds")?,
                max: get_num("max_rounds")?,
                median: get_num("median_rounds")?,
            }),
        };
        Ok(Row {
            scenario: get_str("scenario")?,
            cell: get("cell")?
                .as_usize()
                .ok_or_else(|| err("`cell` must be an integer".into()))?,
            family: get_str("family")?,
            substrate: get_str("substrate")?,
            protocol: get_str("protocol")?,
            params,
            regime: get_str("regime")?,
            seed: get_str("seed")?
                .parse()
                .map_err(|_| err("`seed` must be a u64 string".into()))?,
            trials: get("trials")?
                .as_usize()
                .ok_or_else(|| err("`trials` must be an integer".into()))?,
            completion_rate: get_num("completion_rate")?,
            rounds,
            mean_messages: get_num("mean_messages")?,
        })
    }

    /// The resolved parameters as a compact `k=v` string.
    pub fn params_compact(&self) -> String {
        self.params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Expands a scenario into its resolved cells (deterministic order).
///
/// Fails if the scenario does not [`validate`](Scenario::validate).
pub fn resolve_cells(scenario: &Scenario) -> Result<Vec<Cell>, ScenarioError> {
    scenario.validate()?;
    let mut cells = Vec::with_capacity(scenario.num_cells());
    let mut index = 0;
    for substrate in &scenario.substrates {
        for protocol in &scenario.protocols {
            for grid_index in 0..scenario.sweep.num_cells() {
                let overrides = scenario.sweep.cell(grid_index);
                cells.push(resolve_cell(
                    scenario, substrate, protocol, &overrides, index,
                )?);
                index += 1;
            }
        }
    }
    Ok(cells)
}

fn resolve_cell(
    scenario: &Scenario,
    substrate: &Substrate,
    protocol: &Protocol,
    overrides: &[(Param, f64)],
    index: usize,
) -> Result<Cell, ScenarioError> {
    use crate::scenario::{MoveRadiusSpec, PHatSpec, RadiusSpec};

    let mut substrate = *substrate;
    let mut protocol = *protocol;
    let mut trials = scenario.trials;

    for &(param, value) in overrides {
        match (param, &mut substrate) {
            (Param::N, Substrate::Edge { n, .. }) | (Param::N, Substrate::Geometric { n, .. }) => {
                *n = value.round().max(2.0) as usize;
            }
            (Param::Q, Substrate::Edge { q, .. }) => *q = value,
            (Param::PHat, Substrate::Edge { p_hat, .. }) => *p_hat = PHatSpec::Fixed(value),
            (Param::PHatFactor, Substrate::Edge { p_hat, .. }) => {
                *p_hat = PHatSpec::LogFactor(value)
            }
            (Param::Radius, Substrate::Geometric { radius, .. }) => {
                *radius = RadiusSpec::Fixed(value)
            }
            (Param::RadiusFactor, Substrate::Geometric { radius, .. }) => {
                *radius = RadiusSpec::ThresholdFactor(value)
            }
            (Param::MoveRadius, Substrate::Geometric { move_radius, .. }) => {
                *move_radius = MoveRadiusSpec::Fixed(value)
            }
            (Param::MoveRadiusFraction, Substrate::Geometric { move_radius, .. }) => {
                *move_radius = MoveRadiusSpec::RadiusFraction(value)
            }
            (Param::Beta, _) => {
                if let Protocol::Probabilistic { beta } = &mut protocol {
                    *beta = value.clamp(0.0, 1.0);
                }
            }
            (Param::ActiveRounds, _) => {
                if let Protocol::Parsimonious { active_rounds } = &mut protocol {
                    *active_rounds = (value.round().max(1.0)) as u64;
                }
            }
            (Param::Trials, _) => trials = (value.round().max(1.0)) as usize,
            // Overrides for the other family are inert by design: a shared
            // sweep can drive heterogeneous substrates.
            _ => {}
        }
    }

    let resolved = match substrate {
        Substrate::Edge {
            n,
            engine,
            p_hat,
            q,
            init,
        } => {
            let p_hat = p_hat.resolve(n, q);
            let params = EdgeMegParams::with_stationary(n, p_hat, q);
            ResolvedSubstrate::Edge {
                engine,
                params,
                p_hat,
                init: init.to_initial_distribution(),
            }
        }
        Substrate::Geometric {
            n,
            mobility,
            radius,
            move_radius,
        } => {
            let r = radius.resolve(n);
            ResolvedSubstrate::Geometric {
                n,
                mobility,
                radius: r,
                move_radius: move_radius.resolve(r),
            }
        }
    };

    Ok(Cell {
        index,
        substrate_label: substrate.label(),
        substrate: resolved,
        protocol,
        trials,
        round_budget: scenario.round_budget,
    })
}

/// Outcome of a single trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TrialOutcome {
    completed: bool,
    rounds: u64,
    messages: u64,
}

fn protocol_trial<M: EvolvingGraph>(
    meg: &mut M,
    protocol: &Protocol,
    budget: u64,
    rng: &mut ChaCha8Rng,
) -> TrialOutcome {
    let r: ProtocolResult = match protocol {
        Protocol::Flooding => probabilistic_flood(meg, 0, 1.0, budget, rng),
        Protocol::Probabilistic { beta } => probabilistic_flood(meg, 0, *beta, budget, rng),
        Protocol::Parsimonious { active_rounds } => {
            parsimonious_flood(meg, 0, *active_rounds, budget)
        }
        Protocol::PushPull => push_pull_gossip(meg, 0, budget, rng),
    };
    TrialOutcome {
        completed: r.completed,
        rounds: r.rounds,
        messages: r.messages_sent,
    }
}

fn execute_trial(cell: &Cell, rng: &mut ChaCha8Rng) -> TrialOutcome {
    match &cell.substrate {
        ResolvedSubstrate::Edge {
            engine,
            params,
            init,
            ..
        } => {
            let sub_seed: u64 = rng.gen();
            match engine {
                EdgeEngine::Sparse => {
                    let mut meg = SparseEdgeMeg::new(*params, *init, sub_seed);
                    protocol_trial(&mut meg, &cell.protocol, cell.round_budget, rng)
                }
                EdgeEngine::Dense => {
                    let mut meg = DenseEdgeMeg::new(*params, *init, sub_seed);
                    protocol_trial(&mut meg, &cell.protocol, cell.round_budget, rng)
                }
            }
        }
        ResolvedSubstrate::Geometric {
            n,
            mobility,
            radius,
            move_radius,
        } => {
            let (n, radius, move_radius) = (*n, *radius, *move_radius);
            let side = (n as f64).sqrt();
            let sub_seed: u64 = rng.gen();
            match mobility {
                MobilityKind::GridWalk => {
                    let mut meg = GeometricMeg::from_params(
                        GeometricMegParams::new(n, move_radius, radius),
                        sub_seed,
                    );
                    protocol_trial(&mut meg, &cell.protocol, cell.round_budget, rng)
                }
                MobilityKind::Waypoint => {
                    let model = RandomWaypoint::new(n, side, move_radius * 0.5, move_radius, rng);
                    let mut meg = GeometricMeg::new(model, radius, sub_seed);
                    protocol_trial(&mut meg, &cell.protocol, cell.round_budget, rng)
                }
                MobilityKind::Billiard => {
                    let model = Billiard::new(n, side, move_radius * 0.5, move_radius, 0.1, rng);
                    let mut meg = GeometricMeg::new(model, radius, sub_seed);
                    protocol_trial(&mut meg, &cell.protocol, cell.round_budget, rng)
                }
                MobilityKind::Walkers => {
                    let model = TorusWalkers::new(n, side, move_radius, 1.0, rng);
                    let mut meg = GeometricMeg::new(model, radius, sub_seed);
                    protocol_trial(&mut meg, &cell.protocol, cell.round_budget, rng)
                }
            }
        }
    }
}

/// Runs one resolved cell under `cell_seed` and aggregates its row.
pub fn run_cell(scenario: &Scenario, cell: &Cell, cell_seed: u64) -> Row {
    let outcomes: Vec<TrialOutcome> =
        run_trials(cell_seed, cell.trials, |_i, rng| execute_trial(cell, rng));
    let completed: Vec<u64> = outcomes
        .iter()
        .filter(|o| o.completed)
        .map(|o| o.rounds)
        .collect();
    let completion_rate = completed.len() as f64 / outcomes.len() as f64;
    let mean_messages =
        outcomes.iter().map(|o| o.messages as f64).sum::<f64>() / outcomes.len() as f64;

    let mut params = cell.substrate.params();
    match cell.protocol {
        Protocol::Probabilistic { beta } => params.push(("beta".into(), beta)),
        Protocol::Parsimonious { active_rounds } => {
            params.push(("active_rounds".into(), active_rounds as f64))
        }
        _ => {}
    }

    Row {
        scenario: scenario.name.clone(),
        cell: cell.index,
        family: cell.substrate.family().into(),
        substrate: cell.substrate_label.clone(),
        protocol: cell.protocol.label(),
        params,
        regime: cell.substrate.regime(),
        seed: cell_seed,
        trials: outcomes.len(),
        completion_rate,
        rounds: Summary::of_counts(&completed),
        mean_messages,
    }
}

/// The seed of cell `index` of `scenario` under `master_seed`.
pub fn cell_seed(scenario_name: &str, master_seed: u64, index: usize) -> u64 {
    derive_seed(labeled_seed(master_seed, scenario_name), index as u64)
}

/// Runs every cell of the scenario, invoking `on_row` as each row is
/// produced (streaming sinks), and returns all rows.
pub fn run_scenario_streaming<F: FnMut(&Row)>(
    scenario: &Scenario,
    master_seed: u64,
    mut on_row: F,
) -> Result<Vec<Row>, ScenarioError> {
    let cells = resolve_cells(scenario)?;
    let mut rows = Vec::with_capacity(cells.len());
    for cell in &cells {
        let row = run_cell(
            scenario,
            cell,
            cell_seed(&scenario.name, master_seed, cell.index),
        );
        on_row(&row);
        rows.push(row);
    }
    Ok(rows)
}

/// Runs every cell of the scenario and returns the rows.
pub fn run_scenario(scenario: &Scenario, master_seed: u64) -> Result<Vec<Row>, ScenarioError> {
    run_scenario_streaming(scenario, master_seed, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{InitKind, MoveRadiusSpec, PHatSpec, RadiusSpec, Sweep};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            description: "test scenario".into(),
            substrates: vec![
                Substrate::Edge {
                    n: 60,
                    engine: EdgeEngine::Sparse,
                    p_hat: PHatSpec::LogFactor(3.0),
                    q: 0.5,
                    init: InitKind::Stationary,
                },
                Substrate::Geometric {
                    n: 80,
                    mobility: MobilityKind::GridWalk,
                    radius: RadiusSpec::ThresholdFactor(1.2),
                    move_radius: MoveRadiusSpec::RadiusFraction(0.5),
                },
            ],
            protocols: vec![Protocol::Flooding, Protocol::PushPull],
            sweep: Sweep::over(Param::N, [40.0, 60.0]),
            trials: 2,
            round_budget: 5_000,
        }
    }

    #[test]
    fn resolve_produces_the_full_grid_in_order() {
        let cells = resolve_cells(&tiny_scenario()).unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(
            cells.iter().map(|c| c.index).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        // n override applies to both families
        for c in &cells {
            let n = c
                .substrate
                .params()
                .iter()
                .find(|(k, _)| k == "n")
                .unwrap()
                .1;
            assert!(n == 40.0 || n == 60.0);
        }
        // substrate-major, then protocol, then grid
        assert_eq!(cells[0].substrate_label, "edge-sparse");
        assert_eq!(cells[0].protocol.label(), "flooding");
        assert_eq!(cells[3].substrate_label, "edge-sparse");
        assert_eq!(cells[3].protocol.label(), "push_pull");
        assert_eq!(cells[4].substrate_label, "geo-grid_walk");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let s = tiny_scenario();
        let a = run_scenario(&s, 99).unwrap();
        let b = run_scenario(&s, 99).unwrap();
        assert_eq!(a, b);
        let c = run_scenario(&s, 100).unwrap();
        assert_ne!(
            a.iter().map(|r| r.seed).collect::<Vec<_>>(),
            c.iter().map(|r| r.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cells_are_reproducible_in_isolation() {
        let s = tiny_scenario();
        let all = run_scenario(&s, 7).unwrap();
        let cells = resolve_cells(&s).unwrap();
        // Re-run only cell 5, alone: identical row.
        let lone = run_cell(&s, &cells[5], cell_seed(&s.name, 7, 5));
        assert_eq!(lone, all[5]);
    }

    #[test]
    fn rows_record_regimes_and_complete_above_threshold() {
        let s = tiny_scenario();
        let rows = run_scenario(&s, 1).unwrap();
        for row in &rows {
            assert!(!row.regime.is_empty());
            assert!(row.trials == 2);
            if row.protocol == "flooding" {
                assert!(
                    row.completion_rate > 0.0,
                    "flooding should complete above threshold: {row:?}"
                );
                assert!(row.rounds.as_ref().unwrap().mean >= 1.0);
                assert!(row.mean_messages > 0.0);
            }
        }
        // Both families and both protocols appear.
        assert!(rows.iter().any(|r| r.family == "edge"));
        assert!(rows.iter().any(|r| r.family == "geometric"));
        assert!(rows.iter().any(|r| r.protocol == "push_pull"));
    }

    #[test]
    fn rows_round_trip_through_json_exactly() {
        let s = tiny_scenario();
        for row in run_scenario(&s, 5).unwrap() {
            let back = Row::from_json(&row.to_json()).unwrap();
            assert_eq!(back, row, "lossy JSON round-trip");
            // And the re-rendered line is byte-identical (merge relies on it).
            assert_eq!(back.to_json().render(), row.to_json().render());
        }
        // Rows with no completed trial round-trip too.
        let mut row = run_scenario(&s, 5).unwrap().remove(0);
        row.rounds = None;
        row.completion_rate = 0.0;
        assert_eq!(Row::from_json(&row.to_json()).unwrap(), row);
        // Malformed rows are rejected, not garbled.
        for bad in ["{}", r#"{"scenario":"x","cell":-1}"#] {
            let v = crate::json::Json::parse(bad).unwrap();
            assert!(Row::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn streaming_sees_every_row_in_order() {
        let s = tiny_scenario();
        let mut seen = Vec::new();
        let rows = run_scenario_streaming(&s, 3, |r| seen.push(r.cell)).unwrap();
        assert_eq!(seen, (0..rows.len()).collect::<Vec<_>>());
    }

    #[test]
    fn all_mobility_kinds_execute() {
        let s = Scenario {
            name: "mobility".into(),
            description: String::new(),
            substrates: MobilityKind::ALL
                .into_iter()
                .map(|mobility| Substrate::Geometric {
                    n: 60,
                    mobility,
                    radius: RadiusSpec::ThresholdFactor(1.2),
                    move_radius: MoveRadiusSpec::RadiusFraction(0.5),
                })
                .collect(),
            protocols: vec![Protocol::Flooding],
            sweep: Sweep::none(),
            trials: 1,
            round_budget: 5_000,
        };
        let rows = run_scenario(&s, 11).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.completion_rate > 0.0, "no completion: {row:?}");
        }
    }

    #[test]
    fn protocol_knob_overrides_apply() {
        let s = Scenario {
            name: "knobs".into(),
            description: String::new(),
            substrates: vec![Substrate::Edge {
                n: 50,
                engine: EdgeEngine::Dense,
                p_hat: PHatSpec::Fixed(0.2),
                q: 0.3,
                init: InitKind::Stationary,
            }],
            protocols: vec![Protocol::Probabilistic { beta: 0.9 }],
            sweep: Sweep::over(Param::Beta, [0.25, 0.75]),
            trials: 1,
            round_budget: 2_000,
        };
        let cells = resolve_cells(&s).unwrap();
        assert_eq!(
            cells.iter().map(|c| c.protocol.label()).collect::<Vec<_>>(),
            vec!["probabilistic(beta=0.25)", "probabilistic(beta=0.75)"]
        );
    }
}
