//! The engine: resolves a [`Scenario`] into cells and executes them.
//!
//! Execution contract:
//!
//! * cells are enumerated deterministically (substrates × protocols × sweep
//!   grid, in declaration order);
//! * every cell's seed is `derive_seed(labeled_seed(master, scenario.name),
//!   cell_index)`, so **any single cell is reproducible in isolation** — rerun
//!   the scenario with the same master seed and cell `k` sees exactly the
//!   same randomness, regardless of which other cells exist or how threads
//!   schedule them;
//! * trials inside a cell run through [`meg_stats::run_trials`], which gives
//!   each trial its own derived RNG stream (parallel-safe);
//! * every row records the `meg_core::spec` regime classification of its
//!   resolved parameters, so results stay honest about which theorem
//!   hypotheses they satisfy.

use crate::scenario::{
    AdversarialKind, EdgeEngine, MobilityKind, Param, Precision, Protocol, Scenario, ScenarioError,
    StaticKind, Substrate,
};
use meg_core::adversarial::{RotatingBridge, RotatingStar};
use meg_core::analysis::{measure_expansion_sequence, ExpansionMeasurement};
use meg_core::evolving::{EvolvingGraph, FrozenGraph};
use meg_core::protocols::{
    parsimonious_flood, probabilistic_flood, push_pull_gossip, rumor_spread, run_machine,
    ByzantineMachine, EpidemicMachine, ProtocolResult,
};
use meg_core::spec;
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_graph::expansion::{min_expansion_sampled, SamplingStrategy};
use meg_graph::generators;
use meg_graph::Graph;
use meg_mobility::{Billiard, RandomWaypoint, TorusWalkers};
use meg_obs as obs;
use meg_stats::seeds::{derive_seed, labeled_seed};
use meg_stats::{
    precision_checkpoints, run_trials, run_trials_range, run_trials_scheduled, Summary,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Fully resolved numeric parameters of one cell's substrate.
#[derive(Clone, Debug, PartialEq)]
pub enum ResolvedSubstrate {
    /// Concrete edge-MEG configuration.
    Edge {
        /// Evolution engine.
        engine: EdgeEngine,
        /// Concrete parameters `M(n, p, q)`.
        params: EdgeMegParams,
        /// Stationary edge probability `p̂`.
        p_hat: f64,
        /// Initial distribution.
        init: meg_core::evolving::InitialDistribution,
        /// Chain stepping mode.
        stepping: meg_core::evolving::Stepping,
    },
    /// Concrete geometric-MEG configuration.
    Geometric {
        /// Number of nodes.
        n: usize,
        /// Mobility model.
        mobility: MobilityKind,
        /// Transmission radius `R`.
        radius: f64,
        /// Move radius `r`.
        move_radius: f64,
    },
    /// Concrete adversarial construction (`n` already rounded to the
    /// construction's constraints).
    Adversarial {
        /// Number of nodes.
        n: usize,
        /// Which construction.
        construction: AdversarialKind,
    },
    /// Concrete static baseline graph.
    Static {
        /// Number of nodes (for [`StaticKind::Grid2d`], `side²`).
        n: usize,
        /// Which family.
        graph: StaticKind,
        /// Resolved edge probability (Erdős–Rényi; 0 otherwise).
        p_hat: f64,
    },
}

impl ResolvedSubstrate {
    /// `"edge"`, `"geometric"`, `"adversarial"`, or `"static"`.
    pub fn family(&self) -> &'static str {
        match self {
            ResolvedSubstrate::Edge { .. } => "edge",
            ResolvedSubstrate::Geometric { .. } => "geometric",
            ResolvedSubstrate::Adversarial { .. } => "adversarial",
            ResolvedSubstrate::Static { .. } => "static",
        }
    }

    /// The `meg_core::spec` regime classification of this configuration.
    ///
    /// Adversarial constructions are deterministic (a one-point stationary
    /// law) and static graphs do not evolve, so neither family has a spec
    /// regime — they are tagged by what they are instead.
    pub fn regime(&self) -> String {
        let c = spec::DEFAULT_THRESHOLD_CONSTANT;
        match self {
            ResolvedSubstrate::Edge { params, p_hat, .. } => {
                format!("{:?}", spec::edge_regime(params.n, *p_hat, c))
            }
            ResolvedSubstrate::Geometric {
                n,
                radius,
                move_radius,
                ..
            } => format!("{:?}", spec::geometric_regime(*n, *radius, *move_radius, c)),
            ResolvedSubstrate::Adversarial { .. } => "Deterministic".into(),
            ResolvedSubstrate::Static { .. } => "Static".into(),
        }
    }

    /// The resolved numeric parameters, as `(name, value)` pairs.
    pub fn params(&self) -> Vec<(String, f64)> {
        match self {
            ResolvedSubstrate::Edge { params, p_hat, .. } => vec![
                ("n".into(), params.n as f64),
                ("p_hat".into(), *p_hat),
                ("p".into(), params.p),
                ("q".into(), params.q),
            ],
            ResolvedSubstrate::Geometric {
                n,
                radius,
                move_radius,
                ..
            } => vec![
                ("n".into(), *n as f64),
                ("radius".into(), *radius),
                ("move_radius".into(), *move_radius),
            ],
            ResolvedSubstrate::Adversarial { n, .. } => vec![("n".into(), *n as f64)],
            ResolvedSubstrate::Static { n, graph, p_hat } => match graph {
                StaticKind::ErdosRenyi { .. } => {
                    vec![("n".into(), *n as f64), ("p_hat".into(), *p_hat)]
                }
                StaticKind::Grid2d => vec![("n".into(), *n as f64)],
            },
        }
    }
}

/// One fully resolved unit of work: a substrate, a protocol, and budgets.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Global cell index (also the seed-derivation index).
    pub index: usize,
    /// Substrate label from the scenario (e.g. `edge-sparse`).
    pub substrate_label: String,
    /// Resolved substrate parameters.
    pub substrate: ResolvedSubstrate,
    /// Protocol with sweep overrides applied.
    pub protocol: Protocol,
    /// Trials to run.
    pub trials: usize,
    /// Round budget per trial.
    pub round_budget: u64,
}

/// Aggregated result of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Scenario name.
    pub scenario: String,
    /// Cell index within the scenario.
    pub cell: usize,
    /// `"edge"` or `"geometric"`.
    pub family: String,
    /// Substrate label (`edge-sparse`, `geo-waypoint`, …).
    pub substrate: String,
    /// Protocol label (`flooding`, `probabilistic(beta=0.3)`, …).
    pub protocol: String,
    /// Resolved numeric parameters of the cell.
    pub params: Vec<(String, f64)>,
    /// `meg_core::spec` regime classification.
    pub regime: String,
    /// The derived cell seed (reproduces this row in isolation).
    pub seed: u64,
    /// Trials executed.
    pub trials: usize,
    /// Trial budget this cell was configured with: the fixed trial count
    /// under `Precision::FixedTrials`, `max_trials` under adaptive
    /// precision. `trials < requested_trials` means the adaptive stop rule
    /// fired early.
    pub requested_trials: usize,
    /// Standard error of the mean of the cell observable over completed
    /// trials (`None` below 2 completed trials). This is the quantity the
    /// adaptive stop rule compares against `eps`.
    pub achieved_stderr: Option<f64>,
    /// Fraction of trials that completed within the round budget.
    pub completion_rate: f64,
    /// Summary of the cell observable over completed trials (`None` if
    /// none): completion rounds for spreading protocols, the measured
    /// quantity for probe protocols.
    pub rounds: Option<Summary>,
    /// Mean messages sent per trial (over all trials; 0 for probes).
    pub mean_messages: f64,
}

impl Row {
    /// Renders the row as one JSON-lines object.
    ///
    /// The rendering is **lossless**: [`Row::from_json`] reconstructs an
    /// equal `Row` (the distributed worker protocol and `meg-lab merge`
    /// re-rendering depend on this), which is why the summary is emitted in
    /// full (`median_rounds`, `var_rounds`, `completed_trials`) rather than
    /// only the headline moments.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let rounds = |f: fn(&Summary) -> f64| match &self.rounds {
            Some(s) => Json::Num(f(s)),
            None => Json::Null,
        };
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("cell", Json::Num(self.cell as f64)),
            ("family", Json::Str(self.family.clone())),
            ("substrate", Json::Str(self.substrate.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            (
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("regime", Json::Str(self.regime.clone())),
            // u64 seeds can exceed 2^53; transported as a string.
            ("seed", Json::Str(self.seed.to_string())),
            ("trials", Json::Num(self.trials as f64)),
            ("requested_trials", Json::Num(self.requested_trials as f64)),
            (
                "achieved_stderr",
                match self.achieved_stderr {
                    Some(se) => Json::Num(se),
                    None => Json::Null,
                },
            ),
            ("completion_rate", Json::Num(self.completion_rate)),
            ("mean_rounds", rounds(|s| s.mean)),
            ("min_rounds", rounds(|s| s.min)),
            ("max_rounds", rounds(|s| s.max)),
            ("std_rounds", rounds(|s| s.std_dev)),
            ("median_rounds", rounds(|s| s.median)),
            ("var_rounds", rounds(|s| s.variance)),
            (
                "completed_trials",
                Json::Num(self.rounds.as_ref().map_or(0, |s| s.count) as f64),
            ),
            ("mean_messages", Json::Num(self.mean_messages)),
        ])
    }

    /// Decodes a row from its [`to_json`](Row::to_json) representation.
    ///
    /// Exact inverse: every `f64` survives because the JSON writer uses
    /// shortest-round-trip formatting, and the summary fields are all
    /// transported explicitly.
    pub fn from_json(v: &crate::json::Json) -> Result<Row, ScenarioError> {
        use crate::json::Json;
        let err = |m: String| ScenarioError(format!("row: {m}"));
        let get = |key: &str| v.get(key).ok_or_else(|| err(format!("missing `{key}`")));
        let get_str = |key: &str| {
            get(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| err(format!("`{key}` must be a string")))
        };
        let get_num = |key: &str| {
            get(key)?
                .as_f64()
                .ok_or_else(|| err(format!("`{key}` must be a number")))
        };
        let params = match get("params")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or_else(|| err(format!("param `{k}` must be a number")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(err("`params` must be an object".into())),
        };
        let rounds = match get("mean_rounds")? {
            Json::Null => None,
            _ => Some(Summary {
                count: get("completed_trials")?
                    .as_usize()
                    .ok_or_else(|| err("`completed_trials` must be an integer".into()))?,
                mean: get_num("mean_rounds")?,
                variance: get_num("var_rounds")?,
                std_dev: get_num("std_rounds")?,
                min: get_num("min_rounds")?,
                max: get_num("max_rounds")?,
                median: get_num("median_rounds")?,
            }),
        };
        Ok(Row {
            scenario: get_str("scenario")?,
            cell: get("cell")?
                .as_usize()
                .ok_or_else(|| err("`cell` must be an integer".into()))?,
            family: get_str("family")?,
            substrate: get_str("substrate")?,
            protocol: get_str("protocol")?,
            params,
            regime: get_str("regime")?,
            seed: get_str("seed")?
                .parse()
                .map_err(|_| err("`seed` must be a u64 string".into()))?,
            trials: get("trials")?
                .as_usize()
                .ok_or_else(|| err("`trials` must be an integer".into()))?,
            requested_trials: get("requested_trials")?
                .as_usize()
                .ok_or_else(|| err("`requested_trials` must be an integer".into()))?,
            achieved_stderr: match get("achieved_stderr")? {
                Json::Null => None,
                v => Some(
                    v.as_f64()
                        .ok_or_else(|| err("`achieved_stderr` must be a number".into()))?,
                ),
            },
            completion_rate: get_num("completion_rate")?,
            rounds,
            mean_messages: get_num("mean_messages")?,
        })
    }

    /// The resolved parameters as a compact `k=v` string.
    pub fn params_compact(&self) -> String {
        self.params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Expands a scenario into its resolved cells (deterministic order).
///
/// Fails if the scenario does not [`validate`](Scenario::validate).
pub fn resolve_cells(scenario: &Scenario) -> Result<Vec<Cell>, ScenarioError> {
    scenario.validate()?;
    let mut cells = Vec::with_capacity(scenario.num_cells());
    let mut index = 0;
    for substrate in &scenario.substrates {
        for protocol in &scenario.protocols {
            for grid_index in 0..scenario.sweep.num_cells() {
                let overrides = scenario.sweep.cell(grid_index);
                cells.push(resolve_cell(
                    scenario, substrate, protocol, &overrides, index,
                )?);
                index += 1;
            }
        }
    }
    Ok(cells)
}

fn resolve_cell(
    scenario: &Scenario,
    substrate: &Substrate,
    protocol: &Protocol,
    overrides: &[(Param, f64)],
    index: usize,
) -> Result<Cell, ScenarioError> {
    use crate::scenario::{MoveRadiusSpec, PHatSpec, RadiusSpec};

    let mut substrate = *substrate;
    let mut protocol = *protocol;
    let mut trials = scenario.trials;

    for &(param, value) in overrides {
        match (param, &mut substrate) {
            (Param::N, Substrate::Edge { n, .. })
            | (Param::N, Substrate::Geometric { n, .. })
            | (Param::N, Substrate::Adversarial { n, .. })
            | (Param::N, Substrate::Static { n, .. }) => {
                *n = value.round().max(2.0) as usize;
            }
            (Param::Q, Substrate::Edge { q, .. }) => *q = value,
            (Param::PHat, Substrate::Edge { p_hat, .. }) => *p_hat = PHatSpec::Fixed(value),
            (Param::PHatFactor, Substrate::Edge { p_hat, .. }) => {
                *p_hat = PHatSpec::LogFactor(value)
            }
            (Param::Radius, Substrate::Geometric { radius, .. }) => {
                *radius = RadiusSpec::Fixed(value)
            }
            (Param::RadiusFactor, Substrate::Geometric { radius, .. }) => {
                *radius = RadiusSpec::ThresholdFactor(value)
            }
            (Param::MoveRadius, Substrate::Geometric { move_radius, .. }) => {
                *move_radius = MoveRadiusSpec::Fixed(value)
            }
            (Param::MoveRadiusFraction, Substrate::Geometric { move_radius, .. }) => {
                *move_radius = MoveRadiusSpec::RadiusFraction(value)
            }
            (Param::Beta, _) => {
                if let Protocol::Probabilistic { beta } = &mut protocol {
                    *beta = value.clamp(0.0, 1.0);
                }
            }
            (Param::ActiveRounds, _) => {
                if let Protocol::Parsimonious { active_rounds } = &mut protocol {
                    *active_rounds = (value.round().max(1.0)) as u64;
                }
            }
            (Param::Trials, _) => trials = (value.round().max(1.0)) as usize,
            (Param::SetSize, _) => {
                if let Protocol::ExpansionProbe { set_size, .. } = &mut protocol {
                    *set_size = value.round().max(1.0) as u64;
                }
            }
            (Param::Contagion, _) => match &mut protocol {
                Protocol::Sis { contagion, .. } | Protocol::Sir { contagion, .. } => {
                    *contagion = value.clamp(0.0, 1.0)
                }
                _ => {}
            },
            (Param::InfectionRounds, _) => match &mut protocol {
                Protocol::Sis {
                    infection_rounds, ..
                }
                | Protocol::Sir {
                    infection_rounds, ..
                } => *infection_rounds = value.round().max(1.0) as u64,
                _ => {}
            },
            (Param::ImmunityRounds, _) => {
                if let Protocol::Sis {
                    immunity_rounds, ..
                } = &mut protocol
                {
                    *immunity_rounds = value.round().max(0.0) as u64;
                }
            }
            (Param::ByzantineCount, _) => {
                if let Protocol::Byzantine { count } = &mut protocol {
                    *count = value.round().max(0.0) as u64;
                }
            }
            // Overrides for the other family are inert by design: a shared
            // sweep can drive heterogeneous substrates.
            _ => {}
        }
    }

    let resolved = match substrate {
        Substrate::Edge {
            n,
            engine,
            p_hat,
            q,
            init,
            stepping,
        } => {
            let p_hat = p_hat.resolve(n, q);
            let params = EdgeMegParams::with_stationary(n, p_hat, q);
            ResolvedSubstrate::Edge {
                engine,
                params,
                p_hat,
                init: init.to_initial_distribution(),
                stepping: stepping.to_stepping(),
            }
        }
        Substrate::Geometric {
            n,
            mobility,
            radius,
            move_radius,
        } => {
            let r = radius.resolve(n);
            ResolvedSubstrate::Geometric {
                n,
                mobility,
                radius: r,
                move_radius: move_radius.resolve(r),
            }
        }
        Substrate::Adversarial { n, construction } => ResolvedSubstrate::Adversarial {
            // Round up to each construction's minimum; the bridge also needs
            // an even node count, so sweeps and --scale can never panic it.
            n: match construction {
                AdversarialKind::RotatingStar => n.max(2),
                AdversarialKind::RotatingBridge => {
                    let n = n.max(4);
                    n + n % 2
                }
            },
            construction,
        },
        Substrate::Static { n, graph } => match graph {
            StaticKind::ErdosRenyi { p_hat } => ResolvedSubstrate::Static {
                n,
                graph,
                // No death rate exists for a static snapshot; resolve with
                // q = 0 (the clamp then only keeps p̂ < 1).
                p_hat: p_hat.resolve(n, 0.0),
            },
            StaticKind::Grid2d => {
                let side = ((n as f64).sqrt().round() as usize).max(2);
                ResolvedSubstrate::Static {
                    n: side * side,
                    graph,
                    p_hat: 0.0,
                }
            }
        },
    };

    // An expansion probe at a set size beyond n/2 is meaningless (the legacy
    // profile experiments stopped there); clamp against the resolved n so
    // labels and params reflect what actually runs.
    if let Protocol::ExpansionProbe { set_size, .. } = &mut protocol {
        let n = match &resolved {
            ResolvedSubstrate::Edge { params, .. } => params.n,
            ResolvedSubstrate::Geometric { n, .. }
            | ResolvedSubstrate::Adversarial { n, .. }
            | ResolvedSubstrate::Static { n, .. } => *n,
        };
        *set_size = (*set_size).clamp(1, ((n / 2) as u64).max(1));
    }

    Ok(Cell {
        index,
        substrate_label: substrate.label(),
        substrate: resolved,
        protocol,
        trials,
        round_budget: scenario.round_budget,
    })
}

/// Outcome of a single trial: the cell observable (`value` is the completion
/// round count for spreading protocols, the measured quantity for probes)
/// plus completion and message-cost bookkeeping.
///
/// Public because the distributed worker protocol ships outcome batches over
/// JSON ([`TrialOutcome::to_json`] / [`TrialOutcome::from_json`], an exact
/// round trip) so the coordinator can aggregate a cell it grew adaptively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Whether the trial produced its observable within the round budget.
    pub completed: bool,
    /// The cell observable (meaningful only when `completed`).
    pub value: f64,
    /// Messages sent (0 for probe protocols).
    pub messages: f64,
}

impl TrialOutcome {
    /// Serializes as a compact JSON object.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("completed", Json::Bool(self.completed)),
            ("value", Json::Num(self.value)),
            ("messages", Json::Num(self.messages)),
        ])
    }

    /// Decodes from the [`to_json`](TrialOutcome::to_json) representation
    /// (exact inverse — the JSON writer round-trips every `f64`).
    pub fn from_json(v: &crate::json::Json) -> Result<TrialOutcome, ScenarioError> {
        let err = |m: &str| ScenarioError(format!("trial outcome: {m}"));
        Ok(TrialOutcome {
            completed: v
                .get("completed")
                .and_then(crate::json::Json::as_bool)
                .ok_or_else(|| err("missing `completed`"))?,
            value: v
                .get("value")
                .and_then(crate::json::Json::as_f64)
                .ok_or_else(|| err("missing `value`"))?,
            messages: v
                .get("messages")
                .and_then(crate::json::Json::as_f64)
                .ok_or_else(|| err("missing `messages`"))?,
        })
    }

    fn failed() -> TrialOutcome {
        TrialOutcome {
            completed: false,
            value: 0.0,
            messages: 0.0,
        }
    }

    fn measured(value: f64) -> TrialOutcome {
        if value.is_finite() {
            TrialOutcome {
                completed: true,
                value,
                messages: 0.0,
            }
        } else {
            TrialOutcome::failed()
        }
    }
}

fn protocol_trial<M: EvolvingGraph>(
    meg: &mut M,
    protocol: &Protocol,
    source: meg_graph::Node,
    budget: u64,
    rng: &mut ChaCha8Rng,
) -> TrialOutcome {
    let n = meg.num_nodes();
    // Spreading protocols measure their completion round count; the
    // epidemic and Byzantine arms run their machines directly so the
    // per-protocol observables (infection/recovery totals, tampered
    // adoptions, correct coverage) stay readable after the run.
    let (r, value): (ProtocolResult, Option<f64>) = match protocol {
        Protocol::Flooding => (probabilistic_flood(meg, source, 1.0, budget, rng), None),
        Protocol::Probabilistic { beta } => {
            (probabilistic_flood(meg, source, *beta, budget, rng), None)
        }
        Protocol::Parsimonious { active_rounds } => (
            parsimonious_flood(meg, source, *active_rounds, budget),
            None,
        ),
        Protocol::PushPull => (push_pull_gossip(meg, source, budget, rng), None),
        Protocol::Sis {
            contagion,
            infection_rounds,
            immunity_rounds,
        } => {
            let mut machine = EpidemicMachine::new(
                n,
                source,
                *contagion,
                *infection_rounds,
                Some(*immunity_rounds),
            );
            let res = run_machine(meg, &mut machine, budget, rng);
            if obs::installed() {
                obs::add(obs::Counter::Infections, machine.infections());
                obs::add(obs::Counter::Recoveries, machine.recoveries());
            }
            (res.into_protocol_result(), None)
        }
        Protocol::Sir {
            contagion,
            infection_rounds,
        } => {
            let mut machine = EpidemicMachine::new(n, source, *contagion, *infection_rounds, None);
            let res = run_machine(meg, &mut machine, budget, rng);
            if obs::installed() {
                obs::add(obs::Counter::Infections, machine.infections());
                obs::add(obs::Counter::Recoveries, machine.recoveries());
            }
            (res.into_protocol_result(), None)
        }
        Protocol::Rumor => {
            let r = rumor_spread(meg, source, budget, rng);
            if obs::installed() {
                obs::add(obs::Counter::RumorPushes, r.messages_sent);
            }
            (r, None)
        }
        Protocol::Byzantine { count } => {
            let mut machine = ByzantineMachine::new(n, source, *count as usize);
            let res = run_machine(meg, &mut machine, budget, rng);
            if obs::installed() {
                obs::add(
                    obs::Counter::TamperedAdoptions,
                    machine.tampered_adoptions(),
                );
            }
            // The observable is the correct-information coverage fraction,
            // not the completion round count.
            let fraction = machine.correct_fraction();
            (res.into_protocol_result(), Some(fraction))
        }
        probe => unreachable!("probe `{}` must not reach protocol_trial", probe.label()),
    };
    if obs::installed() {
        obs::add(obs::Counter::Rounds, r.rounds);
        for &informed in &r.informed_per_round {
            obs::sample(obs::Gauge::InformedPerRound, informed as u64);
        }
    }
    TrialOutcome {
        completed: r.completed,
        value: value.unwrap_or(r.rounds as f64),
        messages: r.messages_sent as f64,
    }
}

/// Runs a measurement probe against an evolving graph (any substrate).
fn probe_trial<M: EvolvingGraph>(
    meg: &mut M,
    protocol: &Protocol,
    rng: &mut ChaCha8Rng,
) -> TrialOutcome {
    match protocol {
        Protocol::ExpansionProbe { set_size, samples } => {
            let snapshot = meg.advance();
            TrialOutcome::measured(min_expansion_sampled(
                snapshot,
                *set_size as usize,
                *samples as usize,
                SamplingStrategy::Mixed,
                rng,
            ))
        }
        Protocol::DiameterProbe => {
            // Freeze the snapshot through the duplicate-dropping CSR
            // constructor: the n-source BFS sweep assumes a simple graph
            // (duplicate edges would double-visit neighbors), and the
            // diameter is invariant to the neighbor reordering a freeze
            // implies. Every in-tree substrate already produces simple
            // snapshots, so this is a guard, not a behaviour change.
            let snapshot = meg.advance();
            let frozen = meg_graph::Csr::from_edges_dedup(snapshot.num_nodes(), &snapshot.edges());
            match meg_graph::diameter::exact(&frozen).finite() {
                Some(d) => TrialOutcome::measured(d as f64),
                None => TrialOutcome::failed(),
            }
        }
        Protocol::BoundProbe { snapshots, samples } => {
            let options = ExpansionMeasurement {
                snapshots: *snapshots as usize,
                samples_per_size: *samples as usize,
                strategy: SamplingStrategy::Mixed,
            };
            match measure_expansion_sequence(meg, options, rng) {
                Ok(seq) => TrialOutcome::measured(seq.flooding_bound()),
                Err(_) => TrialOutcome::failed(),
            }
        }
        // Occupancy needs node positions, which only the geometric substrate
        // exposes; on every other substrate the probe is inert.
        Protocol::OccupancyProbe => TrialOutcome::failed(),
        spreading => unreachable!("`{}` must not reach probe_trial", spreading.label()),
    }
}

/// Dispatches one trial to the spreading engine or the probe machinery.
fn drive<M: EvolvingGraph>(
    meg: &mut M,
    cell: &Cell,
    source: meg_graph::Node,
    rng: &mut ChaCha8Rng,
) -> TrialOutcome {
    if cell.protocol.is_probe() {
        probe_trial(meg, &cell.protocol, rng)
    } else {
        protocol_trial(meg, &cell.protocol, source, cell.round_budget, rng)
    }
}

fn geometric_occupancy_trial(
    n: usize,
    mobility: MobilityKind,
    radius: f64,
    move_radius: f64,
    rng: &mut ChaCha8Rng,
) -> TrialOutcome {
    use meg_geometric::cells::CellPartition;
    use meg_geometric::snapshot::{sample_paper_snapshot, snapshot_of};
    let side = (n as f64).sqrt();
    let snap = match mobility {
        MobilityKind::GridWalk => {
            sample_paper_snapshot(GeometricMegParams::new(n, move_radius, radius), rng)
        }
        MobilityKind::Waypoint => snapshot_of(
            &RandomWaypoint::new(n, side, move_radius * 0.5, move_radius, rng),
            radius,
        ),
        MobilityKind::Billiard => snapshot_of(
            &Billiard::new(n, side, move_radius * 0.5, move_radius, 0.1, rng),
            radius,
        ),
        MobilityKind::Walkers => {
            snapshot_of(&TorusWalkers::new(n, side, move_radius, 1.0, rng), radius)
        }
    };
    let partition = CellPartition::for_paper_instance(n, radius);
    match partition.occupancy_concentration(&snap.positions, radius) {
        Some(lambda) => TrialOutcome::measured(lambda),
        None => TrialOutcome::failed(), // an empty cell: λ is unbounded
    }
}

/// Executes one trial of one resolved cell under the given RNG stream.
fn execute_trial(cell: &Cell, rng: &mut ChaCha8Rng) -> TrialOutcome {
    let _span = obs::span("trial");
    obs::add(obs::Counter::Trials, 1);
    match &cell.substrate {
        ResolvedSubstrate::Edge {
            engine,
            params,
            init,
            stepping,
            ..
        } => {
            let sub_seed: u64 = rng.gen();
            match engine {
                EdgeEngine::Sparse => {
                    let mut meg = SparseEdgeMeg::with_stepping(*params, *init, *stepping, sub_seed);
                    drive(&mut meg, cell, 0, rng)
                }
                EdgeEngine::Dense => {
                    let mut meg = DenseEdgeMeg::with_stepping(*params, *init, *stepping, sub_seed);
                    drive(&mut meg, cell, 0, rng)
                }
            }
        }
        ResolvedSubstrate::Geometric {
            n,
            mobility,
            radius,
            move_radius,
        } => {
            let (n, radius, move_radius) = (*n, *radius, *move_radius);
            if cell.protocol == Protocol::OccupancyProbe {
                return geometric_occupancy_trial(n, *mobility, radius, move_radius, rng);
            }
            let side = (n as f64).sqrt();
            let sub_seed: u64 = rng.gen();
            match mobility {
                MobilityKind::GridWalk => {
                    let mut meg = GeometricMeg::from_params(
                        GeometricMegParams::new(n, move_radius, radius),
                        sub_seed,
                    );
                    drive(&mut meg, cell, 0, rng)
                }
                MobilityKind::Waypoint => {
                    let model = RandomWaypoint::new(n, side, move_radius * 0.5, move_radius, rng);
                    let mut meg = GeometricMeg::new(model, radius, sub_seed);
                    drive(&mut meg, cell, 0, rng)
                }
                MobilityKind::Billiard => {
                    let model = Billiard::new(n, side, move_radius * 0.5, move_radius, 0.1, rng);
                    let mut meg = GeometricMeg::new(model, radius, sub_seed);
                    drive(&mut meg, cell, 0, rng)
                }
                MobilityKind::Walkers => {
                    let model = TorusWalkers::new(n, side, move_radius, 1.0, rng);
                    let mut meg = GeometricMeg::new(model, radius, sub_seed);
                    drive(&mut meg, cell, 0, rng)
                }
            }
        }
        ResolvedSubstrate::Adversarial { n, construction } => match construction {
            AdversarialKind::RotatingStar => {
                let mut meg = RotatingStar::new(*n, 0);
                // The separation claim concerns the worst-case source.
                let source = meg.worst_source();
                drive(&mut meg, cell, source, rng)
            }
            AdversarialKind::RotatingBridge => {
                let mut meg = RotatingBridge::new(*n);
                drive(&mut meg, cell, 1, rng)
            }
        },
        ResolvedSubstrate::Static { n, graph, p_hat } => {
            let graph = match graph {
                StaticKind::ErdosRenyi { .. } => generators::erdos_renyi(*n, *p_hat, rng),
                StaticKind::Grid2d => {
                    let side = (*n as f64).sqrt().round() as usize;
                    generators::grid2d(side, side)
                }
            };
            let mut meg = FrozenGraph::new(graph);
            drive(&mut meg, cell, 0, rng)
        }
    }
}

/// The adaptive stop decision on an outcome prefix: `true` once at least two
/// trials completed and the standard error of their observable is ≤ `eps`.
/// `eps ≤ 0` never stops (the "spend the whole budget" mode). Shared by the
/// in-process runner and the distributed coordinator so both make identical
/// decisions.
pub fn adaptive_stop(eps: f64, outcomes: &[TrialOutcome]) -> bool {
    if eps <= 0.0 {
        return false;
    }
    let completed: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.completed)
        .map(|o| o.value)
        .collect();
    match Summary::of(&completed) {
        Some(s) if s.count >= 2 => s.standard_error() <= eps,
        _ => false,
    }
}

/// Runs trials `start .. start + count` of one resolved cell — the batch
/// unit of the distributed adaptive control loop. Trial `i`'s randomness
/// depends only on `(cell_seed, i)`, so concatenated batches are
/// byte-identical to one fixed run of the same length.
pub fn run_cell_range(
    cell: &Cell,
    cell_seed: u64,
    start: usize,
    count: usize,
) -> Vec<TrialOutcome> {
    run_trials_range(cell_seed, start, count, |_i, rng| execute_trial(cell, rng))
}

/// Executes one resolved cell's trials under the scenario's [`Precision`]
/// policy and returns the raw outcomes.
pub fn run_cell_outcomes(scenario: &Scenario, cell: &Cell, cell_seed: u64) -> Vec<TrialOutcome> {
    match scenario.precision {
        Precision::FixedTrials => {
            run_trials(cell_seed, cell.trials, |_i, rng| execute_trial(cell, rng))
        }
        Precision::TargetStderr {
            eps,
            min_trials,
            max_trials,
        } => {
            let checkpoints = precision_checkpoints(min_trials, max_trials);
            run_trials_scheduled(
                cell_seed,
                &checkpoints,
                |_i, rng| execute_trial(cell, rng),
                |outcomes| adaptive_stop(eps, outcomes),
            )
        }
    }
}

/// Aggregates a cell's trial outcomes into its result [`Row`].
///
/// Pure aggregation: given the same outcome slice it produces the same row
/// whether the trials ran in this process, in worker subprocesses, or were
/// re-read from a checkpoint — the second half of the byte-identity
/// guarantee.
pub fn aggregate_row(
    scenario: &Scenario,
    cell: &Cell,
    cell_seed: u64,
    outcomes: &[TrialOutcome],
) -> Row {
    let completed: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.completed)
        .map(|o| o.value)
        .collect();
    let completion_rate = completed.len() as f64 / outcomes.len() as f64;
    let mean_messages = outcomes.iter().map(|o| o.messages).sum::<f64>() / outcomes.len() as f64;

    let mut params = cell.substrate.params();
    match cell.protocol {
        Protocol::Probabilistic { beta } => params.push(("beta".into(), beta)),
        Protocol::Parsimonious { active_rounds } => {
            params.push(("active_rounds".into(), active_rounds as f64))
        }
        Protocol::ExpansionProbe { set_size, .. } => params.push(("h".into(), set_size as f64)),
        Protocol::Sis {
            contagion,
            infection_rounds,
            immunity_rounds,
        } => {
            params.push(("contagion".into(), contagion));
            params.push(("infection_rounds".into(), infection_rounds as f64));
            params.push(("immunity_rounds".into(), immunity_rounds as f64));
        }
        Protocol::Sir {
            contagion,
            infection_rounds,
        } => {
            params.push(("contagion".into(), contagion));
            params.push(("infection_rounds".into(), infection_rounds as f64));
        }
        Protocol::Byzantine { count } => params.push(("byzantine_count".into(), count as f64)),
        _ => {}
    }

    let rounds = Summary::of(&completed);
    let achieved_stderr = rounds
        .as_ref()
        .filter(|s| s.count >= 2)
        .map(Summary::standard_error);
    Row {
        scenario: scenario.name.clone(),
        cell: cell.index,
        family: cell.substrate.family().into(),
        substrate: cell.substrate_label.clone(),
        protocol: cell.protocol.label(),
        params,
        regime: cell.substrate.regime(),
        seed: cell_seed,
        trials: outcomes.len(),
        requested_trials: match scenario.precision {
            Precision::FixedTrials => cell.trials,
            Precision::TargetStderr { max_trials, .. } => max_trials,
        },
        achieved_stderr,
        completion_rate,
        rounds,
        mean_messages,
    }
}

/// Runs one resolved cell under `cell_seed` and aggregates its row.
pub fn run_cell(scenario: &Scenario, cell: &Cell, cell_seed: u64) -> Row {
    let _span = obs::span("cell");
    let outcomes = run_cell_outcomes(scenario, cell, cell_seed);
    aggregate_row(scenario, cell, cell_seed, &outcomes)
}

/// The seed of cell `index` of `scenario` under `master_seed`.
pub fn cell_seed(scenario_name: &str, master_seed: u64, index: usize) -> u64 {
    derive_seed(labeled_seed(master_seed, scenario_name), index as u64)
}

/// Runs every cell of the scenario, invoking `on_row` as each row is
/// produced (streaming sinks), and returns all rows.
pub fn run_scenario_streaming<F: FnMut(&Row)>(
    scenario: &Scenario,
    master_seed: u64,
    mut on_row: F,
) -> Result<Vec<Row>, ScenarioError> {
    let cells = resolve_cells(scenario)?;
    let mut rows = Vec::with_capacity(cells.len());
    for cell in &cells {
        let row = run_cell(
            scenario,
            cell,
            cell_seed(&scenario.name, master_seed, cell.index),
        );
        on_row(&row);
        rows.push(row);
    }
    Ok(rows)
}

/// Runs every cell of the scenario and returns the rows.
pub fn run_scenario(scenario: &Scenario, master_seed: u64) -> Result<Vec<Row>, ScenarioError> {
    run_scenario_streaming(scenario, master_seed, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{InitKind, MoveRadiusSpec, PHatSpec, RadiusSpec, SteppingKind, Sweep};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            description: "test scenario".into(),
            substrates: vec![
                Substrate::Edge {
                    n: 60,
                    engine: EdgeEngine::Sparse,
                    p_hat: PHatSpec::LogFactor(3.0),
                    q: 0.5,
                    init: InitKind::Stationary,
                    stepping: SteppingKind::PerPair,
                },
                Substrate::Geometric {
                    n: 80,
                    mobility: MobilityKind::GridWalk,
                    radius: RadiusSpec::ThresholdFactor(1.2),
                    move_radius: MoveRadiusSpec::RadiusFraction(0.5),
                },
            ],
            protocols: vec![Protocol::Flooding, Protocol::PushPull],
            sweep: Sweep::over(Param::N, [40.0, 60.0]),
            trials: 2,
            round_budget: 5_000,
            precision: Precision::FixedTrials,
        }
    }

    #[test]
    fn resolve_produces_the_full_grid_in_order() {
        let cells = resolve_cells(&tiny_scenario()).unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(
            cells.iter().map(|c| c.index).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        // n override applies to both families
        for c in &cells {
            let n = c
                .substrate
                .params()
                .iter()
                .find(|(k, _)| k == "n")
                .unwrap()
                .1;
            assert!(n == 40.0 || n == 60.0);
        }
        // substrate-major, then protocol, then grid
        assert_eq!(cells[0].substrate_label, "edge-sparse");
        assert_eq!(cells[0].protocol.label(), "flooding");
        assert_eq!(cells[3].substrate_label, "edge-sparse");
        assert_eq!(cells[3].protocol.label(), "push_pull");
        assert_eq!(cells[4].substrate_label, "geo-grid_walk");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let s = tiny_scenario();
        let a = run_scenario(&s, 99).unwrap();
        let b = run_scenario(&s, 99).unwrap();
        assert_eq!(a, b);
        let c = run_scenario(&s, 100).unwrap();
        assert_ne!(
            a.iter().map(|r| r.seed).collect::<Vec<_>>(),
            c.iter().map(|r| r.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cells_are_reproducible_in_isolation() {
        let s = tiny_scenario();
        let all = run_scenario(&s, 7).unwrap();
        let cells = resolve_cells(&s).unwrap();
        // Re-run only cell 5, alone: identical row.
        let lone = run_cell(&s, &cells[5], cell_seed(&s.name, 7, 5));
        assert_eq!(lone, all[5]);
    }

    #[test]
    fn rows_record_regimes_and_complete_above_threshold() {
        let s = tiny_scenario();
        let rows = run_scenario(&s, 1).unwrap();
        for row in &rows {
            assert!(!row.regime.is_empty());
            assert!(row.trials == 2);
            if row.protocol == "flooding" {
                assert!(
                    row.completion_rate > 0.0,
                    "flooding should complete above threshold: {row:?}"
                );
                assert!(row.rounds.as_ref().unwrap().mean >= 1.0);
                assert!(row.mean_messages > 0.0);
            }
        }
        // Both families and both protocols appear.
        assert!(rows.iter().any(|r| r.family == "edge"));
        assert!(rows.iter().any(|r| r.family == "geometric"));
        assert!(rows.iter().any(|r| r.protocol == "push_pull"));
    }

    #[test]
    fn rows_round_trip_through_json_exactly() {
        let s = tiny_scenario();
        for row in run_scenario(&s, 5).unwrap() {
            let back = Row::from_json(&row.to_json()).unwrap();
            assert_eq!(back, row, "lossy JSON round-trip");
            // And the re-rendered line is byte-identical (merge relies on it).
            assert_eq!(back.to_json().render(), row.to_json().render());
        }
        // Rows with no completed trial round-trip too.
        let mut row = run_scenario(&s, 5).unwrap().remove(0);
        row.rounds = None;
        row.completion_rate = 0.0;
        assert_eq!(Row::from_json(&row.to_json()).unwrap(), row);
        // Malformed rows are rejected, not garbled.
        for bad in ["{}", r#"{"scenario":"x","cell":-1}"#] {
            let v = crate::json::Json::parse(bad).unwrap();
            assert!(Row::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn streaming_sees_every_row_in_order() {
        let s = tiny_scenario();
        let mut seen = Vec::new();
        let rows = run_scenario_streaming(&s, 3, |r| seen.push(r.cell)).unwrap();
        assert_eq!(seen, (0..rows.len()).collect::<Vec<_>>());
    }

    #[test]
    fn all_mobility_kinds_execute() {
        let s = Scenario {
            name: "mobility".into(),
            description: String::new(),
            substrates: MobilityKind::ALL
                .into_iter()
                .map(|mobility| Substrate::Geometric {
                    n: 60,
                    mobility,
                    radius: RadiusSpec::ThresholdFactor(1.2),
                    move_radius: MoveRadiusSpec::RadiusFraction(0.5),
                })
                .collect(),
            protocols: vec![Protocol::Flooding],
            sweep: Sweep::none(),
            trials: 1,
            round_budget: 5_000,
            precision: Precision::FixedTrials,
        };
        let rows = run_scenario(&s, 11).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.completion_rate > 0.0, "no completion: {row:?}");
        }
    }

    #[test]
    fn adaptive_eps_zero_is_byte_identical_to_fixed_trials() {
        // eps = 0 can never be satisfied, so the adaptive run must execute
        // exactly max_trials — and, because trial seeds depend only on the
        // trial index, the rows must match a fixed run of the same count
        // byte for byte.
        let mut fixed = tiny_scenario();
        fixed.trials = 3;
        let mut adaptive = fixed.clone();
        adaptive.precision = Precision::TargetStderr {
            eps: 0.0,
            min_trials: 2,
            max_trials: 3,
        };
        let fixed_rows = run_scenario(&fixed, 7).unwrap();
        let adaptive_rows = run_scenario(&adaptive, 7).unwrap();
        assert_eq!(fixed_rows.len(), adaptive_rows.len());
        for (f, a) in fixed_rows.iter().zip(&adaptive_rows) {
            assert_eq!(a.trials, 3);
            assert_eq!(a.requested_trials, 3);
            assert_eq!(f.to_json().render(), a.to_json().render());
        }
    }

    #[test]
    fn adaptive_mode_converges_or_exhausts_the_budget() {
        let mut s = tiny_scenario();
        let (eps, max_trials) = (1.5, 16);
        s.precision = Precision::TargetStderr {
            eps,
            min_trials: 2,
            max_trials,
        };
        let rows = run_scenario(&s, 3).unwrap();
        for row in &rows {
            assert!(row.trials >= 2 && row.trials <= max_trials);
            assert_eq!(row.requested_trials, max_trials);
            let converged = row.achieved_stderr.is_some_and(|se| se <= eps);
            assert!(
                converged || row.trials == max_trials,
                "row neither met the target nor exhausted the budget: {row:?}"
            );
        }
        // Determinism holds in adaptive mode too.
        assert_eq!(rows, run_scenario(&s, 3).unwrap());
    }

    #[test]
    fn adaptive_stop_rule_semantics() {
        let done = |value| TrialOutcome {
            completed: true,
            value,
            messages: 0.0,
        };
        // eps = 0 never stops, even with zero variance.
        assert!(!adaptive_stop(0.0, &[done(4.0), done(4.0)]));
        // Zero variance stops as soon as two trials completed.
        assert!(adaptive_stop(0.5, &[done(4.0), done(4.0)]));
        // One completed trial is never enough to assess precision.
        assert!(!adaptive_stop(0.5, &[done(4.0)]));
        let failed = TrialOutcome::failed();
        assert!(!adaptive_stop(0.5, &[done(4.0), failed]));
        // High variance at a tight target keeps going.
        assert!(!adaptive_stop(0.01, &[done(1.0), done(100.0)]));
    }

    #[test]
    fn adversarial_substrates_separate_diameter_from_flooding() {
        let s = Scenario {
            name: "adv".into(),
            description: String::new(),
            substrates: vec![
                Substrate::Adversarial {
                    n: 64,
                    construction: AdversarialKind::RotatingStar,
                },
                Substrate::Adversarial {
                    n: 64,
                    construction: AdversarialKind::RotatingBridge,
                },
            ],
            protocols: vec![Protocol::Flooding, Protocol::DiameterProbe],
            sweep: Sweep::none(),
            trials: 1,
            round_budget: 1_000,
            precision: Precision::FixedTrials,
        };
        let rows = run_scenario(&s, 1).unwrap();
        assert_eq!(rows.len(), 4);
        let get = |substrate: &str, protocol: &str| {
            rows.iter()
                .find(|r| r.substrate == substrate && r.protocol == protocol)
                .unwrap_or_else(|| panic!("missing row {substrate}/{protocol}"))
                .rounds
                .as_ref()
                .unwrap()
                .mean
        };
        // The separation: both diameters are tiny, but the star floods in
        // n − 1 rounds from the worst source while the bridge is constant.
        assert_eq!(get("adv-rotating_star", "diameter"), 2.0);
        assert_eq!(get("adv-rotating_bridge", "diameter"), 3.0);
        assert_eq!(get("adv-rotating_star", "flooding"), 63.0);
        assert!(get("adv-rotating_bridge", "flooding") <= 4.0);
        assert!(rows.iter().all(|r| r.regime == "Deterministic"));
    }

    #[test]
    fn static_substrates_and_probes_execute() {
        let s = Scenario {
            name: "static".into(),
            description: String::new(),
            substrates: vec![
                Substrate::Static {
                    n: 120,
                    graph: StaticKind::ErdosRenyi {
                        p_hat: PHatSpec::LogFactor(4.0),
                    },
                },
                Substrate::Static {
                    n: 100,
                    graph: StaticKind::Grid2d,
                },
            ],
            protocols: vec![
                Protocol::Flooding,
                Protocol::ExpansionProbe {
                    set_size: 500, // clamped to n/2 at resolution
                    samples: 10,
                },
                Protocol::BoundProbe {
                    snapshots: 2,
                    samples: 10,
                },
            ],
            sweep: Sweep::none(),
            trials: 2,
            round_budget: 10_000,
            precision: Precision::FixedTrials,
        };
        let cells = resolve_cells(&s).unwrap();
        assert!(cells
            .iter()
            .filter(|c| matches!(c.protocol, Protocol::ExpansionProbe { .. }))
            .all(|c| c.protocol.label() == "expansion(h=60)"
                || c.protocol.label() == "expansion(h=50)"));
        let rows = run_scenario(&s, 5).unwrap();
        for row in &rows {
            assert_eq!(row.regime, "Static");
            if row.completion_rate > 0.0 {
                let mean = row.rounds.as_ref().unwrap().mean;
                assert!(mean > 0.0, "degenerate observable: {row:?}");
            }
            if row.protocol.starts_with("expansion") {
                let h = row.params.iter().find(|(k, _)| k == "h").unwrap().1;
                assert!(h == 60.0 || h == 50.0);
                assert_eq!(row.mean_messages, 0.0);
            }
        }
        // The flooding and bound-probe rows on G(n, p̂) must both complete,
        // and the measured bound must dominate the measured flooding time.
        let flood = rows
            .iter()
            .find(|r| r.substrate == "static-erdos_renyi" && r.protocol == "flooding")
            .unwrap();
        let bound = rows
            .iter()
            .find(|r| r.substrate == "static-erdos_renyi" && r.protocol == "bound")
            .unwrap();
        assert!(flood.completion_rate > 0.0);
        assert!(bound.completion_rate > 0.0);
        assert!(
            bound.rounds.as_ref().unwrap().mean >= flood.rounds.as_ref().unwrap().mean,
            "Lemma 2.4 bound must dominate measured flooding"
        );
    }

    #[test]
    fn occupancy_probe_measures_geometric_and_is_inert_elsewhere() {
        let s = Scenario {
            name: "occ".into(),
            description: String::new(),
            substrates: vec![
                Substrate::Geometric {
                    n: 300,
                    mobility: MobilityKind::GridWalk,
                    radius: RadiusSpec::ThresholdFactor(1.75),
                    move_radius: MoveRadiusSpec::RadiusFraction(0.5),
                },
                Substrate::Edge {
                    n: 100,
                    engine: EdgeEngine::Sparse,
                    p_hat: PHatSpec::LogFactor(3.0),
                    q: 0.5,
                    init: InitKind::Stationary,
                    stepping: SteppingKind::PerPair,
                },
            ],
            protocols: vec![Protocol::OccupancyProbe],
            sweep: Sweep::none(),
            trials: 2,
            round_budget: 1_000,
            precision: Precision::FixedTrials,
        };
        let rows = run_scenario(&s, 9).unwrap();
        let geo = &rows[0];
        assert!(geo.completion_rate > 0.0, "λ should be measurable: {geo:?}");
        assert!(
            geo.rounds.as_ref().unwrap().min >= 1.0,
            "λ ≥ 1 by definition"
        );
        // On a non-geometric substrate the probe is inert, not an error.
        let edge = &rows[1];
        assert_eq!(edge.completion_rate, 0.0);
        assert!(edge.rounds.is_none());
    }

    #[test]
    fn transitions_stepping_cells_resolve_and_flood() {
        let mut s = tiny_scenario();
        for sub in &mut s.substrates {
            if let Substrate::Edge { stepping, .. } = sub {
                *stepping = SteppingKind::Transitions;
            }
        }
        let cells = resolve_cells(&s).unwrap();
        assert_eq!(cells[0].substrate_label, "edge-sparse-transitions");
        assert!(cells.iter().any(|c| matches!(
            c.substrate,
            ResolvedSubstrate::Edge {
                stepping: meg_core::evolving::Stepping::Transitions,
                ..
            }
        )));
        let rows = run_scenario(&s, 99).unwrap();
        let flood = rows
            .iter()
            .find(|r| r.substrate == "edge-sparse-transitions" && r.protocol == "flooding")
            .unwrap();
        assert!(
            flood.completion_rate > 0.0,
            "transitions stepping should flood above threshold: {flood:?}"
        );
        // Determinism holds under the fast path too.
        assert_eq!(rows, run_scenario(&s, 99).unwrap());
    }

    #[test]
    fn protocol_knob_overrides_apply() {
        let s = Scenario {
            name: "knobs".into(),
            description: String::new(),
            substrates: vec![Substrate::Edge {
                n: 50,
                engine: EdgeEngine::Dense,
                p_hat: PHatSpec::Fixed(0.2),
                q: 0.3,
                init: InitKind::Stationary,
                stepping: SteppingKind::PerPair,
            }],
            protocols: vec![Protocol::Probabilistic { beta: 0.9 }],
            sweep: Sweep::over(Param::Beta, [0.25, 0.75]),
            trials: 1,
            round_budget: 2_000,
            precision: Precision::FixedTrials,
        };
        let cells = resolve_cells(&s).unwrap();
        assert_eq!(
            cells.iter().map(|c| c.protocol.label()).collect::<Vec<_>>(),
            vec!["probabilistic(beta=0.25)", "probabilistic(beta=0.75)"]
        );
    }
}
