//! Deterministic cell-to-shard assignment.
//!
//! A [`ShardSpec`] names one shard of an `m`-way split of a scenario's
//! resolved cell list. Assignment is a pure function of the **global cell
//! index**, so sharding never changes which seed a cell derives
//! ([`crate::run::cell_seed`] keys on the global index) — an `m`-way sharded
//! run computes exactly the rows an unsharded run would, just partitioned.
//!
//! ## Example
//!
//! ```
//! use meg_engine::dist::{ShardSpec, ShardStrategy};
//!
//! let mut shard = ShardSpec::parse("1/3").unwrap();
//! // Contiguous: the middle block of 8 cells.
//! assert_eq!(shard.assign(8), vec![3, 4, 5]);
//! // Round-robin: every 3rd cell starting at 1.
//! shard.strategy = ShardStrategy::RoundRobin;
//! assert_eq!(shard.assign(8), vec![1, 4, 7]);
//!
//! // Any split is a partition: each cell belongs to exactly one shard.
//! for cell in 0..8 {
//!     let owners = (0..3)
//!         .filter(|&i| ShardSpec::parse(&format!("{i}/3")).unwrap().owns(cell, 8))
//!         .count();
//!     assert_eq!(owners, 1);
//! }
//! ```

use std::fmt;
use std::str::FromStr;

/// How cells are partitioned across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Shard `i` owns the `i`-th of `m` (nearly) equal contiguous blocks.
    /// Good cache behaviour for sweeps ordered by cost.
    #[default]
    Contiguous,
    /// Shard `i` owns every cell with `index ≡ i (mod m)`. Balances load
    /// when cost grows monotonically along the grid (e.g. an `n` sweep).
    RoundRobin,
}

impl ShardStrategy {
    /// Stable identifier used in part-file headers and `--strategy`.
    pub fn id(self) -> &'static str {
        match self {
            ShardStrategy::Contiguous => "contiguous",
            ShardStrategy::RoundRobin => "round_robin",
        }
    }
}

impl FromStr for ShardStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "contiguous" | "block" => Ok(ShardStrategy::Contiguous),
            "round_robin" | "round-robin" | "rr" => Ok(ShardStrategy::RoundRobin),
            other => Err(format!(
                "unknown shard strategy `{other}` (expected contiguous|round_robin)"
            )),
        }
    }
}

/// One shard of an `m`-way split: `index ∈ [0, count)` plus the partitioning
/// strategy. Parsed from the CLI as `--shard i/m`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of shards, `≥ 1`.
    pub count: usize,
    /// Partitioning strategy.
    pub strategy: ShardStrategy,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::full()
    }
}

impl ShardSpec {
    /// The trivial single-shard spec (`0/1`): owns every cell.
    pub fn full() -> ShardSpec {
        ShardSpec {
            index: 0,
            count: 1,
            strategy: ShardStrategy::Contiguous,
        }
    }

    /// Builds a spec, validating `index < count` and `count ≥ 1`.
    pub fn new(index: usize, count: usize, strategy: ShardStrategy) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be ≥ 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(ShardSpec {
            index,
            count,
            strategy,
        })
    }

    /// Parses the `i/m` CLI form (strategy defaults to contiguous).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, m) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` must have the form i/m, e.g. 0/4"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("shard index `{i}` is not an unsigned integer"))?;
        let count: usize = m
            .trim()
            .parse()
            .map_err(|_| format!("shard count `{m}` is not an unsigned integer"))?;
        ShardSpec::new(index, count, ShardStrategy::default())
    }

    /// The `i/m` label used in part-file headers and file names.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// Whether this shard owns global cell `cell` of `num_cells`.
    pub fn owns(&self, cell: usize, num_cells: usize) -> bool {
        match self.strategy {
            ShardStrategy::RoundRobin => cell % self.count == self.index,
            ShardStrategy::Contiguous => {
                cell >= block_start(self.index, self.count, num_cells)
                    && cell < block_start(self.index + 1, self.count, num_cells)
            }
        }
    }

    /// The global cell indices this shard owns, in ascending order.
    pub fn assign(&self, num_cells: usize) -> Vec<usize> {
        match self.strategy {
            ShardStrategy::RoundRobin => (self.index..num_cells).step_by(self.count).collect(),
            ShardStrategy::Contiguous => (block_start(self.index, self.count, num_cells)
                ..block_start(self.index + 1, self.count, num_cells))
                .collect(),
        }
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.label(), self.strategy.id())
    }
}

/// Start of contiguous block `i` in an `m`-way split of `n` cells: the first
/// `n mod m` blocks get one extra cell, so blocks differ in size by ≤ 1.
fn block_start(i: usize, m: usize, n: usize) -> usize {
    let i = i.min(m);
    (n / m) * i + (n % m).min(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(m: usize, strategy: ShardStrategy) -> Vec<ShardSpec> {
        (0..m)
            .map(|i| ShardSpec::new(i, m, strategy).unwrap())
            .collect()
    }

    #[test]
    fn parse_accepts_i_over_m_and_rejects_garbage() {
        let s = ShardSpec::parse("2/5").unwrap();
        assert_eq!((s.index, s.count), (2, 5));
        assert_eq!(s.strategy, ShardStrategy::Contiguous);
        assert_eq!(s.label(), "2/5");
        for bad in ["", "3", "a/b", "5/5", "1/0", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn every_cell_belongs_to_exactly_one_shard() {
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            for m in 1..=7 {
                for n in [0usize, 1, 5, 12, 100] {
                    let mut seen = vec![0usize; n];
                    for shard in shards(m, strategy) {
                        for cell in shard.assign(n) {
                            assert!(shard.owns(cell, n));
                            seen[cell] += 1;
                        }
                    }
                    assert!(
                        seen.iter().all(|&c| c == 1),
                        "partition violated: {strategy:?} {m} ways over {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn contiguous_blocks_are_balanced_and_ordered() {
        let parts: Vec<Vec<usize>> = shards(3, ShardStrategy::Contiguous)
            .iter()
            .map(|s| s.assign(8))
            .collect();
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[1], vec![3, 4, 5]);
        assert_eq!(parts[2], vec![6, 7]);
    }

    #[test]
    fn round_robin_interleaves() {
        let s = ShardSpec::new(1, 3, ShardStrategy::RoundRobin).unwrap();
        assert_eq!(s.assign(8), vec![1, 4, 7]);
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            "round_robin".parse::<ShardStrategy>().unwrap(),
            ShardStrategy::RoundRobin
        );
        assert_eq!(
            "contiguous".parse::<ShardStrategy>().unwrap(),
            ShardStrategy::Contiguous
        );
        assert!("zigzag".parse::<ShardStrategy>().is_err());
    }
}
