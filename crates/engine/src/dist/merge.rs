//! Deterministic merge of sharded part files.
//!
//! [`merge_dir`] turns a directory of `*.part.jsonl` checkpoints back into
//! the canonical row stream:
//!
//! 1. every part file must carry a valid header, and all headers must agree
//!    on the run identity (scenario name, fingerprint, master seed, cell
//!    count) — shard layouts may differ, so a directory mixing a `0/2` file
//!    with leftovers from a `0/3` split of the *same run* still merges;
//! 2. duplicate rows for a cell are deduplicated, but only if byte-identical
//!    — a conflicting duplicate means two different runs wrote here, and the
//!    merge refuses;
//! 3. every global cell index must be covered, otherwise the merge reports
//!    exactly which cells are missing (run the owning shards with
//!    `--resume`);
//! 4. rows are re-sorted into ascending cell order.
//!
//! Because workers answer each cell with the canonical row line (seeds are
//! derived from the global index), the merged stream is **byte-identical**
//! to what an unsharded `meg-lab run --format json` prints.
//!
//! ## Example
//!
//! ```
//! use meg_engine::dist::{merge_dir, run_sharded, DistOptions, ShardSpec};
//! use meg_engine::prelude::*;
//!
//! let scenario = builtin("quick_smoke").unwrap().scaled(0.25);
//! let dir = std::env::temp_dir().join(format!("meg-merge-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Checkpoint both halves of a 2-way split, then reassemble.
//! for i in 0..2 {
//!     let opts = DistOptions {
//!         shard: ShardSpec::parse(&format!("{i}/2")).unwrap(),
//!         out_dir: Some(dir.clone()),
//!         ..DistOptions::default()
//!     };
//!     run_sharded(&scenario, 2009, &opts, |_, _| {}).unwrap();
//! }
//! let merged = merge_dir(&dir).unwrap();
//! assert_eq!(merged.parts, 2);
//! assert_eq!(merged.lines.len(), scenario.num_cells());
//! assert_eq!(merged.header.master_seed, 2009);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use super::checkpoint::{scan_dir, PartHeader};
use super::DistError;
use std::collections::BTreeMap;
use std::path::Path;

/// The result of a successful merge.
#[derive(Clone, Debug, PartialEq)]
pub struct Merged {
    /// The shared run identity (shard fields are taken from the first part
    /// file and are not meaningful for the merged whole).
    pub header: PartHeader,
    /// Canonical row JSON lines, one per cell, in ascending cell order.
    pub lines: Vec<String>,
    /// Number of part files merged.
    pub parts: usize,
    /// Byte-identical duplicate rows that were deduplicated.
    pub duplicates: usize,
}

/// Merges every part file in `dir`. See the module docs for the contract.
pub fn merge_dir(dir: &Path) -> Result<Merged, DistError> {
    let parts = scan_dir(dir)?;
    let Some((_, first)) = parts.first() else {
        return Err(DistError::Format(format!(
            "{}: no *.part.jsonl files to merge",
            dir.display()
        )));
    };
    let header = first.header.clone();

    let mut rows: BTreeMap<usize, String> = BTreeMap::new();
    let mut duplicates = 0usize;
    for (path, part) in &parts {
        if !header.same_run(&part.header) {
            return Err(DistError::Mismatch(format!(
                "{}: belongs to a different run than its siblings: {}",
                path.display(),
                header.diff(&part.header)
            )));
        }
        for (cell, line) in &part.rows {
            if *cell >= header.num_cells {
                return Err(DistError::Format(format!(
                    "{}: row for cell {cell}, but the run has only {} cells",
                    path.display(),
                    header.num_cells
                )));
            }
            match rows.get(cell) {
                None => {
                    rows.insert(*cell, line.clone());
                }
                Some(existing) if existing == line => duplicates += 1,
                Some(_) => {
                    return Err(DistError::Format(format!(
                        "{}: conflicting row for cell {cell} (same cell, different bytes — \
                         were these part files produced by different runs?)",
                        path.display()
                    )));
                }
            }
        }
    }

    let missing: Vec<usize> = (0..header.num_cells)
        .filter(|c| !rows.contains_key(c))
        .collect();
    if !missing.is_empty() {
        return Err(DistError::Incomplete(missing));
    }

    Ok(Merged {
        header,
        lines: rows.into_values().collect(),
        parts: parts.len(),
        duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::quick_smoke;
    use crate::dist::checkpoint::{PartHeader, PartWriter};
    use crate::dist::coordinator::{run_sharded, DistOptions};
    use crate::dist::shard::{ShardSpec, ShardStrategy};
    use crate::run::run_scenario;
    use crate::scenario::Scenario;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("meg-merge-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn scenario() -> Scenario {
        quick_smoke().scaled(0.25)
    }

    fn run_shards(dir: &Path, s: &Scenario, seed: u64, m: usize, strategy: ShardStrategy) {
        for i in 0..m {
            let opts = DistOptions {
                shard: ShardSpec {
                    index: i,
                    count: m,
                    strategy,
                },
                out_dir: Some(dir.to_path_buf()),
                ..DistOptions::default()
            };
            run_sharded(s, seed, &opts, |_, _| {}).unwrap();
        }
    }

    #[test]
    fn merged_output_is_byte_identical_to_unsharded() {
        let s = scenario();
        let reference: Vec<String> = run_scenario(&s, 2009)
            .unwrap()
            .iter()
            .map(|r| r.to_json().render())
            .collect();
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            let dir = tmp(strategy.id());
            run_shards(&dir, &s, 2009, 3, strategy);
            let merged = merge_dir(&dir).unwrap();
            assert_eq!(merged.parts, 3);
            assert_eq!(merged.duplicates, 0);
            assert_eq!(merged.lines, reference, "strategy {strategy:?}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn overlapping_identical_parts_dedupe() {
        let s = scenario();
        let dir = tmp("dedupe");
        run_shards(&dir, &s, 5, 2, ShardStrategy::Contiguous);
        // A full single-shard run into the same dir: every cell now appears
        // twice, all byte-identical.
        let opts = DistOptions {
            out_dir: Some(dir.clone()),
            ..DistOptions::default()
        };
        run_sharded(&s, 5, &opts, |_, _| {}).unwrap();
        let merged = merge_dir(&dir).unwrap();
        assert_eq!(merged.parts, 3);
        assert_eq!(merged.duplicates, s.num_cells());
        assert_eq!(merged.lines.len(), s.num_cells());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_cells_are_reported_precisely() {
        let s = scenario();
        let dir = tmp("missing");
        // Only shard 1/2 ran: the contiguous first half is absent.
        let opts = DistOptions {
            shard: ShardSpec::parse("1/2").unwrap(),
            out_dir: Some(dir.clone()),
            ..DistOptions::default()
        };
        let report = run_sharded(&s, 5, &opts, |_, _| {}).unwrap();
        match merge_dir(&dir) {
            Err(DistError::Incomplete(missing)) => {
                assert_eq!(missing.len(), s.num_cells() - report.rows.len());
                assert_eq!(missing[0], 0);
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_runs_and_conflicts_are_refused() {
        let s = scenario();
        let dir = tmp("mixed");
        run_shards(&dir, &s, 5, 2, ShardStrategy::Contiguous);
        // Different master seed ⇒ different run ⇒ mismatch.
        let opts = DistOptions {
            shard: ShardSpec::parse("0/3").unwrap(),
            out_dir: Some(dir.clone()),
            ..DistOptions::default()
        };
        run_sharded(&s, 6, &opts, |_, _| {}).unwrap();
        assert!(matches!(merge_dir(&dir), Err(DistError::Mismatch(_))));
        std::fs::remove_dir_all(&dir).unwrap();

        // Same run identity but conflicting bytes for one cell ⇒ refused.
        let dir = tmp("conflict");
        run_shards(&dir, &s, 5, 1, ShardStrategy::Contiguous);
        let header = PartHeader {
            shard: "0/9".into(),
            ..PartHeader::new(&s, 5, &ShardSpec::full())
        };
        let forged = ShardSpec::parse("0/9").unwrap();
        PartWriter::create(&dir, &header, &forged)
            .unwrap()
            .append(r#"{"cell":0,"forged":true}"#)
            .unwrap();
        assert!(matches!(merge_dir(&dir), Err(DistError::Format(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(merge_dir(&dir), Err(DistError::Format(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
