//! The worker side of the subprocess protocol.
//!
//! A worker (`meg-lab worker`) is a cell-execution server speaking JSON
//! lines on stdin/stdout:
//!
//! ```text
//! coordinator → worker   {"hello":{"scenario":{…},"master_seed":"2009"}}
//! worker → coordinator   {"ready":{"num_cells":8,"fingerprint":"…"}}
//! coordinator → worker   {"cell":3}
//! worker → coordinator   {"scenario":…,"cell":3,…}      ← canonical Row line
//! coordinator → worker   {"cell":3,"batch":{"start":4,"count":4}}
//! worker → coordinator   {"cell":3,"start":4,"outcomes":[{…},…]}
//! coordinator → worker   {"shutdown":true}              (or just EOF)
//! ```
//!
//! ## Metrics shipping
//!
//! When the hello carries `"metrics":true` ([`hello_line_with`]), the worker
//! installs its process-local `meg-obs` recorder and **ships telemetry back
//! inline**: every cell/batch response is followed by one extra line
//! holding the counter deltas recorded while serving that request, and the
//! shutdown request (which is otherwise unanswered) is acknowledged with
//! the worker's final full snapshot:
//!
//! ```text
//! worker → coordinator   {"metrics":{"counters":{"trials":2,…}}}      ← after each response
//! worker → coordinator   {"final_metrics":{"counters":{…},"gauges":{…},"spans":{…}}}
//! ```
//!
//! Counter deltas partition the counter stream exactly, so the coordinator
//! reconstructs each worker's totals by summing them — and stays correct
//! across respawns, where a fresh process restarts its recorder from zero
//! and the dead process's unshipped gauges/spans are the only loss. The
//! response row/outcome lines are byte-identical with shipping on or off.
//!
//! The response to a plain cell request is **exactly** the row line an
//! unsharded fixed-trials run would print: the worker derives the cell's
//! seed from the global index it was handed, so which process executes a
//! cell never changes its bytes.
//!
//! A **batch** request executes only trials `start .. start + count` of the
//! cell and returns the raw [`TrialOutcome`](crate::run::TrialOutcome)s
//! instead of a finished row — the unit the adaptive-precision control loop
//! grows cells with. Trial `i`'s randomness depends only on the cell seed
//! and `i`, so batches concatenate byte-identically to one fixed run.
//!
//! Workers are stateless between requests, so the coordinator may kill and
//! respawn one at any time and simply resend the in-flight request. The
//! `fail_after` knob makes a worker abort after serving that many requests —
//! deliberate fault injection used by the restart tests and available from
//! the CLI as `meg-lab worker --fail-after N`.
//!
//! ## Example
//!
//! [`serve`] is transport-agnostic (the binary passes stdin/stdout); driving
//! it over in-memory buffers shows the whole protocol:
//!
//! ```
//! use meg_engine::dist::worker::{cell_line, hello_line, serve, shutdown_line};
//! use meg_engine::prelude::*;
//!
//! let scenario = builtin("quick_smoke").unwrap().scaled(0.25);
//! let requests = format!(
//!     "{}\n{}\n{}\n",
//!     hello_line(&scenario, 2009),
//!     cell_line(0),
//!     shutdown_line(),
//! );
//! let mut replies = Vec::new();
//! let served = serve(requests.as_bytes(), &mut replies, None).unwrap();
//! assert_eq!(served, 1);
//!
//! // The cell reply is byte-identical to the unsharded run's row line.
//! let reply = String::from_utf8(replies).unwrap();
//! let row_line = reply.lines().nth(1).unwrap(); // after the ready line
//! let reference = run_scenario(&scenario, 2009).unwrap()[0].to_json().render();
//! assert_eq!(row_line, reference);
//! ```

use super::checkpoint::scenario_fingerprint;
use super::DistError;
use crate::json::Json;
use crate::metrics::snapshot_to_json;
use crate::run::{cell_seed, resolve_cells, run_cell, run_cell_range, Cell};
use crate::scenario::Scenario;
use meg_obs as obs;
use std::io::{BufRead, Write};

/// Exit code of a fault-injected worker abort (distinct from real errors).
pub const FAIL_AFTER_EXIT_CODE: i32 = 17;

/// Builds the handshake request line the coordinator opens with.
pub fn hello_line(scenario: &Scenario, master_seed: u64) -> String {
    hello_line_with(scenario, master_seed, false)
}

/// [`hello_line`] with the metrics-shipping flag: `ship_metrics` makes the
/// worker install its `meg-obs` recorder and follow every response with a
/// counter-delta snapshot line (see the module docs).
pub fn hello_line_with(scenario: &Scenario, master_seed: u64, ship_metrics: bool) -> String {
    let mut fields = vec![
        ("scenario".to_string(), scenario.to_json()),
        (
            "master_seed".to_string(),
            Json::Str(master_seed.to_string()),
        ),
    ];
    if ship_metrics {
        fields.push(("metrics".to_string(), Json::Bool(true)));
    }
    Json::obj([("hello", Json::Obj(fields))]).render()
}

/// Builds a cell-assignment request line.
pub fn cell_line(cell: usize) -> String {
    Json::obj([("cell", Json::Num(cell as f64))]).render()
}

/// Builds a trial-batch request line: run trials `start .. start + count` of
/// `cell` and return the raw outcomes.
pub fn batch_line(cell: usize, start: usize, count: usize) -> String {
    Json::obj([
        ("cell", Json::Num(cell as f64)),
        (
            "batch",
            Json::obj([
                ("start", Json::Num(start as f64)),
                ("count", Json::Num(count as f64)),
            ]),
        ),
    ])
    .render()
}

/// Builds the shutdown request line.
pub fn shutdown_line() -> String {
    Json::obj([("shutdown", Json::Bool(true))]).render()
}

/// Serves the worker protocol over arbitrary reader/writer pairs (the
/// binary passes stdin/stdout; tests pass in-memory buffers).
///
/// Returns `Ok(served)` — the number of cells answered — on a clean
/// shutdown or EOF. Protocol violations and invalid scenarios are errors;
/// the binary reports them on stderr and exits non-zero.
///
/// `fail_after: Some(n)` makes the worker abort the whole process (exit code
/// [`FAIL_AFTER_EXIT_CODE`]) after answering `n` cells — fault injection for
/// coordinator-restart tests.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    fail_after: Option<usize>,
) -> Result<usize, DistError> {
    let mut state: Option<(Scenario, u64, Vec<Cell>)> = None;
    let mut served = 0usize;
    // `Some(prev)` once a metrics-shipping hello installed the recorder:
    // the snapshot the next counter delta is taken against.
    let mut shipping: Option<obs::MetricsSnapshot> = None;

    for line in input.lines() {
        let line = line.map_err(|e| DistError::Io(format!("worker stdin: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let msg = Json::parse(&line)
            .map_err(|e| DistError::Format(format!("worker: bad request line: {e}")))?;

        if msg.get("shutdown").is_some() {
            if shipping.is_some() {
                let finale = Json::obj([("final_metrics", snapshot_to_json(&obs::snapshot()))]);
                writeln!(output, "{}", finale.render())
                    .and_then(|_| output.flush())
                    .map_err(|e| DistError::Io(format!("worker stdout: {e}")))?;
            }
            break;
        }
        if let Some(hello) = msg.get("hello") {
            let scenario = Scenario::from_json(
                hello
                    .get("scenario")
                    .ok_or_else(|| DistError::Format("hello: missing `scenario`".into()))?,
            )?;
            let master_seed: u64 = hello
                .get("master_seed")
                .and_then(Json::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    DistError::Format("hello: `master_seed` must be a u64 string".into())
                })?;
            let cells = resolve_cells(&scenario)?;
            let ready = Json::obj([(
                "ready",
                Json::obj([
                    ("num_cells", Json::Num(cells.len() as f64)),
                    ("fingerprint", Json::Str(scenario_fingerprint(&scenario))),
                ]),
            )]);
            writeln!(output, "{}", ready.render())
                .and_then(|_| output.flush())
                .map_err(|e| DistError::Io(format!("worker stdout: {e}")))?;
            if hello.get("metrics").and_then(Json::as_bool) == Some(true) {
                obs::install();
                shipping = Some(obs::snapshot());
            }
            state = Some((scenario, master_seed, cells));
            continue;
        }
        if let Some(index) = msg.get("cell").and_then(Json::as_usize) {
            let (scenario, master_seed, cells) = state
                .as_ref()
                .ok_or_else(|| DistError::Format("cell request before hello".into()))?;
            let cell = cells.get(index).ok_or_else(|| {
                DistError::Format(format!(
                    "cell {index} out of range (scenario has {} cells)",
                    cells.len()
                ))
            })?;
            let seed = cell_seed(&scenario.name, *master_seed, index);
            let reply = match msg.get("batch") {
                None => run_cell(scenario, cell, seed).to_json().render(),
                Some(batch) => {
                    let start = batch.get("start").and_then(Json::as_usize).ok_or_else(|| {
                        DistError::Format("batch request: missing `start`".into())
                    })?;
                    let count = batch.get("count").and_then(Json::as_usize).ok_or_else(|| {
                        DistError::Format("batch request: missing `count`".into())
                    })?;
                    let outcomes = run_cell_range(cell, seed, start, count);
                    Json::obj([
                        ("cell", Json::Num(index as f64)),
                        ("start", Json::Num(start as f64)),
                        (
                            "outcomes",
                            Json::Arr(outcomes.iter().map(|o| o.to_json()).collect()),
                        ),
                    ])
                    .render()
                }
            };
            writeln!(output, "{reply}")
                .and_then(|_| output.flush())
                .map_err(|e| DistError::Io(format!("worker stdout: {e}")))?;
            if let Some(prev) = &mut shipping {
                // Ship the counters this request recorded as a second line;
                // the response line above stays byte-identical either way.
                let now = obs::snapshot();
                let delta = Json::obj([(
                    "metrics",
                    snapshot_to_json(&now.delta_counters_snapshot(prev)),
                )]);
                *prev = now;
                writeln!(output, "{}", delta.render())
                    .and_then(|_| output.flush())
                    .map_err(|e| DistError::Io(format!("worker stdout: {e}")))?;
            }
            served += 1;
            if fail_after.is_some_and(|n| served >= n) {
                // Simulated crash: die without a goodbye, like a real one.
                std::process::exit(FAIL_AFTER_EXIT_CODE);
            }
            continue;
        }
        return Err(DistError::Format(format!(
            "worker: unrecognised request: {line}"
        )));
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::quick_smoke;
    use crate::run::{run_scenario, Row};

    fn drive(requests: &str) -> Result<(usize, Vec<String>), DistError> {
        let mut out = Vec::new();
        let served = serve(requests.as_bytes(), &mut out, None)?;
        let text = String::from_utf8(out).expect("utf8 output");
        Ok((served, text.lines().map(str::to_string).collect()))
    }

    #[test]
    fn serves_cells_byte_identically_to_an_unsharded_run() {
        let scenario = quick_smoke().scaled(0.25);
        let reference: Vec<String> = run_scenario(&scenario, 2009)
            .unwrap()
            .iter()
            .map(|r| r.to_json().render())
            .collect();

        // Ask for cells out of order; responses are still the canonical lines.
        let requests = format!(
            "{}\n{}\n{}\n{}\n",
            hello_line(&scenario, 2009),
            cell_line(2),
            cell_line(0),
            shutdown_line()
        );
        let (served, lines) = drive(&requests).unwrap();
        assert_eq!(served, 2);
        assert_eq!(lines.len(), 3, "ready + two rows");
        let ready = Json::parse(&lines[0]).unwrap();
        assert_eq!(
            ready.get("ready").unwrap().get("num_cells").unwrap(),
            &Json::Num(reference.len() as f64)
        );
        assert_eq!(lines[1], reference[2]);
        assert_eq!(lines[2], reference[0]);
        // Row lines parse back losslessly.
        let row = Row::from_json(&Json::parse(&lines[1]).unwrap()).unwrap();
        assert_eq!(row.cell, 2);
    }

    #[test]
    fn batch_requests_return_raw_outcomes_that_concatenate() {
        use crate::run::{resolve_cells, TrialOutcome};
        let scenario = quick_smoke().scaled(0.25);
        let cells = resolve_cells(&scenario).unwrap();
        let seed = crate::run::cell_seed(&scenario.name, 2009, 1);
        let reference = crate::run::run_cell_range(&cells[1], seed, 0, 2);

        let requests = format!(
            "{}\n{}\n{}\n{}\n",
            hello_line(&scenario, 2009),
            batch_line(1, 0, 1),
            batch_line(1, 1, 1),
            shutdown_line()
        );
        let (served, lines) = drive(&requests).unwrap();
        assert_eq!(served, 2);
        let mut outcomes = Vec::new();
        for (i, line) in lines[1..].iter().enumerate() {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("cell").unwrap().as_usize(), Some(1));
            assert_eq!(v.get("start").unwrap().as_usize(), Some(i));
            for o in v.get("outcomes").unwrap().as_arr().unwrap() {
                outcomes.push(TrialOutcome::from_json(o).unwrap());
            }
        }
        // Two one-trial batches concatenate to the two-trial reference.
        assert_eq!(outcomes, reference);
        // Malformed batch objects are protocol errors.
        let requests = format!(
            "{}\n{{\"cell\":1,\"batch\":{{\"start\":0}}}}\n",
            hello_line(&scenario, 2009)
        );
        assert!(matches!(drive(&requests), Err(DistError::Format(_))));
    }

    #[test]
    fn metrics_shipping_adds_delta_lines_without_touching_row_bytes() {
        let scenario = quick_smoke().scaled(0.25);
        let reference: Vec<String> = run_scenario(&scenario, 2009)
            .unwrap()
            .iter()
            .map(|r| r.to_json().render())
            .collect();
        let requests = format!(
            "{}\n{}\n{}\n",
            hello_line_with(&scenario, 2009, true),
            cell_line(1),
            shutdown_line()
        );
        let (served, lines) = drive(&requests).unwrap();
        assert_eq!(served, 1);
        // ready, row, metrics delta, final snapshot.
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert_eq!(lines[1], reference[1], "row bytes must not change");
        let delta = Json::parse(&lines[2]).unwrap();
        assert!(delta.get("metrics").is_some());
        crate::metrics::snapshot_from_json(delta.get("metrics").unwrap()).unwrap();
        let finale = Json::parse(&lines[3]).unwrap();
        let final_snap =
            crate::metrics::snapshot_from_json(finale.get("final_metrics").unwrap()).unwrap();
        // Structural only: the recorder is process-global and other tests in
        // this binary may be toggling it concurrently, so counter values are
        // asserted in the subprocess-based CLI tests instead.
        assert_eq!(final_snap.counters.len(), obs::Counter::ALL.len());
    }

    #[test]
    fn eof_is_a_clean_shutdown() {
        let scenario = quick_smoke().scaled(0.25);
        let requests = format!("{}\n{}\n", hello_line(&scenario, 1), cell_line(0));
        let (served, lines) = drive(&requests).unwrap();
        assert_eq!(served, 1);
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn protocol_violations_are_errors() {
        // Cell before hello.
        assert!(matches!(
            drive(&format!("{}\n", cell_line(0))),
            Err(DistError::Format(_))
        ));
        // Out-of-range cell.
        let scenario = quick_smoke().scaled(0.25);
        let requests = format!("{}\n{}\n", hello_line(&scenario, 1), cell_line(999));
        assert!(matches!(drive(&requests), Err(DistError::Format(_))));
        // Garbage line.
        assert!(matches!(drive("not json\n"), Err(DistError::Format(_))));
        // Unknown request object.
        assert!(matches!(drive("{\"warp\":1}\n"), Err(DistError::Format(_))));
    }
}
