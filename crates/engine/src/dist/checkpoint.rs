//! Durable shard checkpoints: the `*.part.jsonl` file format.
//!
//! A part file is a JSON-lines file:
//!
//! ```text
//! {"kind":"meg-part","version":1,"scenario":"quick_smoke","fingerprint":"…",
//!  "master_seed":"2009","num_cells":4,"shard":"0/2","strategy":"contiguous"}
//! {"scenario":"quick_smoke","cell":0,…}     ← canonical Row JSON lines,
//! {"scenario":"quick_smoke","cell":1,…}       appended as cells complete
//! ```
//!
//! The header pins the run identity: scenario **fingerprint** (an FNV-1a
//! hash of the effective scenario's canonical JSON — scale and trial
//! overrides included), master seed, and total cell count. Resume and merge
//! refuse to mix part files whose identities disagree, so a stale directory
//! can never silently contaminate a run.
//!
//! Rows are appended with one `write` + flush per line. A process killed
//! mid-write therefore loses at most the final line; [`read_part`] tolerates
//! (and drops) a torn trailing line, and everything before it is trusted.
//!
//! ## Example
//!
//! ```
//! use meg_engine::dist::checkpoint::{read_part, scenario_fingerprint, PartHeader, PartWriter};
//! use meg_engine::dist::ShardSpec;
//! use meg_engine::prelude::*;
//!
//! let scenario = builtin("quick_smoke").unwrap().scaled(0.25);
//! let dir = std::env::temp_dir().join(format!("meg-ckpt-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Write a two-row part file for shard 0/1 …
//! let shard = ShardSpec::full();
//! let header = PartHeader::new(&scenario, 2009, &shard);
//! let rows = run_scenario(&scenario, 2009).unwrap();
//! let mut writer = PartWriter::create(&dir, &header, &shard).unwrap();
//! for row in &rows[..2] {
//!     writer.append(&row.to_json().render()).unwrap();
//! }
//! let path = writer.path().to_path_buf();
//! drop(writer);
//!
//! // … and read it back: identity pinned, rows keyed by global cell index.
//! let part = read_part(&path).unwrap();
//! assert!(part.header.same_run(&header));
//! assert_eq!(part.header.fingerprint, scenario_fingerprint(&scenario));
//! assert_eq!(part.rows.len(), 2);
//! assert_eq!(part.rows[1], (1, rows[1].to_json().render()));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use super::shard::ShardSpec;
use super::{io_err, DistError};
use crate::json::Json;
use crate::scenario::Scenario;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Part-file format version (bumped on incompatible header/row changes).
pub const PART_VERSION: u64 = 1;

/// Deterministic fingerprint of the *effective* scenario: a 64-bit FNV-1a
/// hash of its canonical compact JSON, rendered as fixed-width hex. Two
/// scenarios fingerprint equally iff their JSON forms are identical, so any
/// edit — including `--scale` and `--trials` overrides, which rewrite the
/// scenario before execution — changes the fingerprint.
pub fn scenario_fingerprint(scenario: &Scenario) -> String {
    let text = scenario.to_json().render();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The identity header written as the first line of every part file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartHeader {
    /// Scenario name.
    pub scenario: String,
    /// [`scenario_fingerprint`] of the effective scenario.
    pub fingerprint: String,
    /// Master seed of the run.
    pub master_seed: u64,
    /// Total number of cells in the (unsharded) scenario.
    pub num_cells: usize,
    /// Shard label, `i/m`.
    pub shard: String,
    /// Shard strategy id.
    pub strategy: String,
}

impl PartHeader {
    /// Builds the header for one shard of a run.
    pub fn new(scenario: &Scenario, master_seed: u64, shard: &ShardSpec) -> PartHeader {
        PartHeader {
            scenario: scenario.name.clone(),
            fingerprint: scenario_fingerprint(scenario),
            master_seed,
            num_cells: scenario.num_cells(),
            shard: shard.label(),
            strategy: shard.strategy.id().to_string(),
        }
    }

    /// Serializes the header line.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str("meg-part".into())),
            ("version", Json::Num(PART_VERSION as f64)),
            ("scenario", Json::Str(self.scenario.clone())),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            // u64 seeds can exceed 2^53; transported as a string (like rows).
            ("master_seed", Json::Str(self.master_seed.to_string())),
            ("num_cells", Json::Num(self.num_cells as f64)),
            ("shard", Json::Str(self.shard.clone())),
            ("strategy", Json::Str(self.strategy.clone())),
        ])
    }

    /// Decodes a header line.
    pub fn from_json(v: &Json) -> Result<PartHeader, DistError> {
        let err = |m: String| DistError::Format(m);
        let get_str = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| err(format!("part header: missing string field `{key}`")))
        };
        if v.get("kind").and_then(Json::as_str) != Some("meg-part") {
            return Err(err("not a part-file header (kind != \"meg-part\")".into()));
        }
        let version = v.get("version").and_then(Json::as_f64).unwrap_or(0.0);
        if version != PART_VERSION as f64 {
            return Err(err(format!(
                "unsupported part-file version {version} (expected {PART_VERSION})"
            )));
        }
        Ok(PartHeader {
            scenario: get_str("scenario")?,
            fingerprint: get_str("fingerprint")?,
            master_seed: get_str("master_seed")?
                .parse()
                .map_err(|_| err("part header: `master_seed` is not a u64".into()))?,
            num_cells: v
                .get("num_cells")
                .and_then(Json::as_usize)
                .ok_or_else(|| err("part header: missing integer field `num_cells`".into()))?,
            shard: get_str("shard")?,
            strategy: get_str("strategy")?,
        })
    }

    /// Whether two part files belong to the same run (shard fields may
    /// differ — merging mixed shard layouts is legal as long as the run
    /// identity agrees).
    pub fn same_run(&self, other: &PartHeader) -> bool {
        self.scenario == other.scenario
            && self.fingerprint == other.fingerprint
            && self.master_seed == other.master_seed
            && self.num_cells == other.num_cells
    }

    /// Explains the first identity difference to `other`, for error text.
    pub fn diff(&self, other: &PartHeader) -> String {
        if self.scenario != other.scenario {
            format!("scenario `{}` vs `{}`", self.scenario, other.scenario)
        } else if self.fingerprint != other.fingerprint {
            format!(
                "scenario fingerprint {} vs {} (definition, scale, or trials differ)",
                self.fingerprint, other.fingerprint
            )
        } else if self.master_seed != other.master_seed {
            format!("master seed {} vs {}", self.master_seed, other.master_seed)
        } else {
            format!("num_cells {} vs {}", self.num_cells, other.num_cells)
        }
    }
}

/// A parsed part file: header plus `(global cell index, row JSON line)`
/// entries in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct PartFile {
    /// The identity header.
    pub header: PartHeader,
    /// Completed rows, as canonical JSON lines keyed by cell index.
    pub rows: Vec<(usize, String)>,
    /// Whether a torn trailing fragment (unparsable, or missing its final
    /// newline) was dropped.
    pub torn_tail: bool,
    /// Byte length of the valid prefix: everything up to and including the
    /// last durably recorded line's newline. [`PartWriter::resume`] truncates
    /// the file here before appending, so a torn fragment can never fuse with
    /// the next row.
    pub valid_len: u64,
}

/// The canonical file name of a shard's part file: `shard-<i>-of-<m>.part.jsonl`.
pub fn part_path(dir: &Path, shard: &ShardSpec) -> PathBuf {
    dir.join(format!(
        "shard-{}-of-{}.part.jsonl",
        shard.index, shard.count
    ))
}

fn row_cell(line: &str) -> Option<usize> {
    Json::parse(line).ok()?.get("cell")?.as_usize()
}

/// Reads and validates one part file. A trailing fragment that does not
/// parse *or* lacks its final newline (a torn write from a killed process)
/// is dropped and reported via [`PartFile::torn_tail`]; a malformed line
/// anywhere else is an error. A record only counts as durably written once
/// its newline is on disk — a parsable final line without one is still torn
/// (its cell simply re-executes, deterministically, on resume).
pub fn read_part(path: &Path) -> Result<PartFile, DistError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let mut segments = text.split_inclusive('\n').enumerate();
    let (_, first) = segments.next().ok_or_else(|| {
        DistError::Format(format!("{}: empty part file (no header)", path.display()))
    })?;
    if !first.ends_with('\n') {
        return Err(DistError::Format(format!(
            "{}: truncated header line",
            path.display()
        )));
    }
    let header_json = Json::parse(first.trim_end())
        .map_err(|e| DistError::Format(format!("{}: bad header: {e}", path.display())))?;
    let header = PartHeader::from_json(&header_json)
        .map_err(|e| DistError::Format(format!("{}: {e}", path.display())))?;

    let mut rows = Vec::new();
    let mut torn_tail = false;
    let mut valid_len = first.len();
    let mut pending: Option<usize> = None;
    for (lineno, segment) in segments {
        let line = segment.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            if pending.is_none() {
                valid_len += segment.len();
            }
            continue;
        }
        // A bad line is only tolerable if nothing follows it.
        if let Some(bad_no) = pending {
            return Err(DistError::Format(format!(
                "{}: line {}: malformed row mid-file",
                path.display(),
                bad_no + 1
            )));
        }
        match row_cell(line) {
            Some(cell) if segment.ends_with('\n') => {
                rows.push((cell, line.to_string()));
                valid_len += segment.len();
            }
            _ => pending = Some(lineno),
        }
    }
    if pending.is_some() {
        torn_tail = true;
    }
    Ok(PartFile {
        header,
        rows,
        torn_tail,
        valid_len: valid_len as u64,
    })
}

/// All `*.part.jsonl` files in `dir`, parsed, in file-name order
/// (deterministic regardless of directory enumeration order).
pub fn scan_dir(dir: &Path) -> Result<Vec<(PathBuf, PartFile)>, DistError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".part.jsonl"))
        })
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| read_part(&p).map(|f| (p, f)))
        .collect()
}

/// The union of completed cells across already-parsed part files that belong
/// to the run identified by `header`. Fails on a part file from a
/// *different* run (stale directory) or on conflicting duplicate rows.
pub fn completed_from_parts(
    parts: &[(PathBuf, PartFile)],
    header: &PartHeader,
) -> Result<BTreeMap<usize, String>, DistError> {
    let mut completed = BTreeMap::new();
    for (path, part) in parts {
        if !header.same_run(&part.header) {
            return Err(DistError::Mismatch(format!(
                "{} belongs to a different run: {}",
                path.display(),
                header.diff(&part.header)
            )));
        }
        for (cell, line) in &part.rows {
            if let Some(existing) = completed.insert(*cell, line.clone()) {
                if existing != *line {
                    return Err(DistError::Format(format!(
                        "{}: cell {cell} has conflicting rows across part files",
                        path.display()
                    )));
                }
            }
        }
    }
    Ok(completed)
}

/// [`completed_from_parts`] over a fresh [`scan_dir`] of `dir`.
pub fn completed_in_dir(
    dir: &Path,
    header: &PartHeader,
) -> Result<BTreeMap<usize, String>, DistError> {
    completed_from_parts(&scan_dir(dir)?, header)
}

/// Append-only writer for one shard's part file.
pub struct PartWriter {
    out: BufWriter<File>,
    path: PathBuf,
}

impl PartWriter {
    /// Creates a fresh part file, writing the header line. Fails if the file
    /// already exists — pass `resume` to continue one instead.
    pub fn create(dir: &Path, header: &PartHeader, shard: &ShardSpec) -> Result<Self, DistError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let path = part_path(dir, shard);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    DistError::Mismatch(format!(
                        "{} already exists — pass --resume to continue it, or clean the directory",
                        path.display()
                    ))
                } else {
                    io_err(&path, e)
                }
            })?;
        let mut writer = PartWriter {
            out: BufWriter::new(file),
            path,
        };
        writer.write_line(&header.to_json().render())?;
        Ok(writer)
    }

    /// Opens an existing part file for appending, first validating that its
    /// header matches `header` exactly (same run *and* same shard) and
    /// truncating any torn trailing fragment so appended rows start on a
    /// fresh line. Creates the file if it does not exist yet.
    ///
    /// `parsed` lets a caller that already [`scan_dir`]-ed the directory
    /// (the coordinator's resume path) hand over this shard's parsed file
    /// instead of paying a second full read; `None` reads it here.
    pub fn resume(
        dir: &Path,
        header: &PartHeader,
        shard: &ShardSpec,
        parsed: Option<&PartFile>,
    ) -> Result<Self, DistError> {
        let path = part_path(dir, shard);
        if !path.exists() {
            return Self::create(dir, header, shard);
        }
        let read_here;
        let existing = match parsed {
            Some(part) => part,
            None => {
                read_here = read_part(&path)?;
                &read_here
            }
        };
        if existing.header != *header {
            return Err(DistError::Mismatch(format!(
                "{} cannot be resumed: {}",
                path.display(),
                if existing.header.same_run(header) {
                    format!(
                        "it checkpoints shard {} ({}) but this run is shard {} ({})",
                        existing.header.shard,
                        existing.header.strategy,
                        header.shard,
                        header.strategy
                    )
                } else {
                    header.diff(&existing.header)
                }
            )));
        }
        if existing.torn_tail {
            // Drop the torn fragment: without this, the first appended row
            // would fuse onto the partial line and corrupt the checkpoint.
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.set_len(existing.valid_len)
                .map_err(|e| io_err(&path, e))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        Ok(PartWriter {
            out: BufWriter::new(file),
            path,
        })
    }

    /// Appends one completed row line and flushes, so the checkpoint
    /// survives an immediate kill.
    pub fn append(&mut self, line: &str) -> Result<(), DistError> {
        self.write_line(line)
    }

    fn write_line(&mut self, line: &str) -> Result<(), DistError> {
        self.out
            .write_all(line.as_bytes())
            .and_then(|_| self.out.write_all(b"\n"))
            .and_then(|_| self.out.flush())
            .map_err(|e| io_err(&self.path, e))
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::quick_smoke;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("meg-checkpoint-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header() -> PartHeader {
        PartHeader::new(&quick_smoke(), 2009, &ShardSpec::full())
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let s = quick_smoke();
        assert_eq!(scenario_fingerprint(&s), scenario_fingerprint(&s));
        assert_ne!(
            scenario_fingerprint(&s),
            scenario_fingerprint(&s.scaled(0.5)),
            "scaling must change the fingerprint"
        );
        let mut t = s.clone();
        t.trials += 1;
        assert_ne!(scenario_fingerprint(&s), scenario_fingerprint(&t));
    }

    #[test]
    fn header_round_trips_and_compares() {
        let h = header();
        let back = PartHeader::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        let mut other = h.clone();
        other.shard = "1/2".into();
        assert!(h.same_run(&other), "shard fields do not affect identity");
        other.master_seed = 7;
        assert!(!h.same_run(&other));
        assert!(h.diff(&other).contains("master seed"));
    }

    #[test]
    fn header_decode_rejects_foreign_lines() {
        for bad in [
            r#"{"scenario":"x"}"#,
            r#"{"kind":"meg-part","version":99,"scenario":"x"}"#,
            r#"{"kind":"other"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(PartHeader::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn writer_reader_round_trip_with_torn_tail() {
        let dir = tmp("torn");
        let h = header();
        let shard = ShardSpec::full();
        let mut w = PartWriter::create(&dir, &h, &shard).unwrap();
        w.append(r#"{"cell":0,"x":1}"#).unwrap();
        w.append(r#"{"cell":3,"x":2}"#).unwrap();
        drop(w);
        // Simulate a kill mid-write: a torn, unparsable trailing line.
        let path = part_path(&dir, &shard);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"cell\":5,\"x\"").unwrap();
        drop(file);

        let part = read_part(&path).unwrap();
        assert_eq!(part.header, h);
        assert!(part.torn_tail);
        assert_eq!(
            part.rows,
            vec![
                (0, r#"{"cell":0,"x":1}"#.to_string()),
                (3, r#"{"cell":3,"x":2}"#.to_string()),
            ]
        );

        // Resume truncates the torn fragment, so appended rows land on a
        // fresh line instead of fusing with the garbage.
        let mut w = PartWriter::resume(&dir, &h, &shard, None).unwrap();
        w.append(r#"{"cell":5,"x":3}"#).unwrap();
        drop(w);
        let healed = read_part(&path).unwrap();
        assert!(!healed.torn_tail);
        assert_eq!(
            healed.rows.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![0, 3, 5]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parsable_final_line_without_newline_is_still_torn() {
        // The newline is the durability marker: a kill can land exactly
        // between a row's bytes and its terminator, and the row must then
        // re-execute rather than fuse with the next append.
        let dir = tmp("no-newline");
        let h = header();
        let shard = ShardSpec::full();
        let mut w = PartWriter::create(&dir, &h, &shard).unwrap();
        w.append(r#"{"cell":0}"#).unwrap();
        drop(w);
        let path = part_path(&dir, &shard);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(br#"{"cell":1}"#).unwrap(); // complete JSON, no \n
        drop(file);

        let part = read_part(&path).unwrap();
        assert!(part.torn_tail);
        assert_eq!(part.rows.len(), 1, "unterminated row must not count");

        let mut w = PartWriter::resume(&dir, &h, &shard, None).unwrap();
        w.append(r#"{"cell":1,"rerun":true}"#).unwrap();
        drop(w);
        let healed = read_part(&path).unwrap();
        assert!(!healed.torn_tail);
        assert_eq!(
            healed.rows,
            vec![
                (0, r#"{"cell":0}"#.to_string()),
                (1, r#"{"cell":1,"rerun":true}"#.to_string()),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_mid_file_line_is_an_error() {
        let dir = tmp("midfile");
        let path = dir.join("bad.part.jsonl");
        std::fs::write(
            &path,
            format!(
                "{}\nnot json\n{}\n",
                header().to_json().render(),
                r#"{"cell":1}"#
            ),
        )
        .unwrap();
        assert!(matches!(read_part(&path), Err(DistError::Format(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_overwrite_and_resume_validates() {
        let dir = tmp("overwrite");
        let h = header();
        let shard = ShardSpec::full();
        let mut w = PartWriter::create(&dir, &h, &shard).unwrap();
        w.append(r#"{"cell":0}"#).unwrap();
        drop(w);
        assert!(matches!(
            PartWriter::create(&dir, &h, &shard),
            Err(DistError::Mismatch(_))
        ));
        // Resuming with the same header appends after the existing rows.
        let mut w = PartWriter::resume(&dir, &h, &shard, None).unwrap();
        w.append(r#"{"cell":1}"#).unwrap();
        drop(w);
        let part = read_part(&part_path(&dir, &shard)).unwrap();
        assert_eq!(part.rows.len(), 2);
        // Resuming under a different seed is refused.
        let mut wrong = h.clone();
        wrong.master_seed = 1;
        assert!(matches!(
            PartWriter::resume(&dir, &wrong, &shard, None),
            Err(DistError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn completed_in_dir_unions_and_rejects_strangers() {
        let dir = tmp("union");
        let h = header();
        let a = ShardSpec::parse("0/2").unwrap();
        let b = ShardSpec::parse("1/2").unwrap();
        let ha = PartHeader {
            shard: a.label(),
            ..h.clone()
        };
        let hb = PartHeader {
            shard: b.label(),
            ..h.clone()
        };
        PartWriter::create(&dir, &ha, &a)
            .unwrap()
            .append(r#"{"cell":0}"#)
            .unwrap();
        PartWriter::create(&dir, &hb, &b)
            .unwrap()
            .append(r#"{"cell":2}"#)
            .unwrap();
        let completed = completed_in_dir(&dir, &h).unwrap();
        assert_eq!(completed.keys().copied().collect::<Vec<_>>(), vec![0, 2]);
        // A part file from a different run poisons the directory.
        let mut stranger = h.clone();
        stranger.master_seed = 77;
        let c = ShardSpec::parse("0/3").unwrap();
        PartWriter::create(&dir, &stranger, &c).unwrap();
        assert!(matches!(
            completed_in_dir(&dir, &h),
            Err(DistError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
