//! Structured trace journal: Chrome trace-event export for sweeps.
//!
//! The coordinator records per-cell lifecycle events while a sharded run
//! executes — a *complete* span for every work item a lane serves
//! (dispatch → rows → response), and *instant* markers for faults (worker
//! deaths, respawns, retries) and adaptive doubling steps. `meg-lab run
//! --trace out.json` writes the journal in the [Chrome trace-event JSON
//! format], loadable in Perfetto or `chrome://tracing`: one timeline lane
//! per worker (`tid = lane`), plus a coordinator lane for control-loop
//! events.
//!
//! Timestamps are microseconds on the coordinator's monotonic clock,
//! anchored at journal creation. All clock reads happen strictly outside
//! RNG-consuming code (workers run in other processes; the in-process path
//! reads the clock only around whole-cell execution), so tracing a run
//! cannot change a single emitted row byte.
//!
//! [Chrome trace-event JSON format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Json;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// One recorded event: a complete-phase span (`ph: "X"`) or an instant
/// marker (`ph: "i"`).
#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    lane: usize,
    ts_us: u64,
    /// `Some(duration)` for complete spans, `None` for instants.
    dur_us: Option<u64>,
    /// The global cell index the event concerns, when it concerns one.
    cell: Option<usize>,
}

/// An append-only, thread-shared event journal for one sharded run.
///
/// Lanes `0 .. workers` belong to the worker pool; lane `workers` is the
/// coordinator's control loop (for `workers == 0`, lane 0 carries the
/// in-process cell spans and doubles as the coordinator lane).
pub struct TraceJournal {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceJournal {
    /// Opens a journal; its creation instant anchors every timestamp.
    pub fn new() -> TraceJournal {
        TraceJournal {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the journal opened. Use as the `start_us`
    /// of a later [`TraceJournal::complete`] call.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records a complete-phase span on `lane` that began at `start_us`
    /// (from [`TraceJournal::now_us`]) and ends now.
    pub fn complete(&self, lane: usize, name: String, start_us: u64, cell: Option<usize>) {
        let dur = self.now_us().saturating_sub(start_us);
        self.events.lock().expect("trace lock").push(TraceEvent {
            name,
            lane,
            ts_us: start_us,
            dur_us: Some(dur),
            cell,
        });
    }

    /// Records an instant marker on `lane` at the current time.
    pub fn instant(&self, lane: usize, name: String, cell: Option<usize>) {
        let ts_us = self.now_us();
        self.events.lock().expect("trace lock").push(TraceEvent {
            name,
            lane,
            ts_us,
            dur_us: None,
            cell,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the journal as a Chrome trace-event JSON document.
    /// `lane_names` labels the timeline rows (index = lane) via
    /// `thread_name` metadata events.
    pub fn to_chrome_json(&self, lane_names: &[String]) -> Json {
        let mut events: Vec<Json> = lane_names
            .iter()
            .enumerate()
            .map(|(lane, name)| {
                Json::obj([
                    ("name", Json::Str("thread_name".into())),
                    ("ph", Json::Str("M".into())),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(lane as f64)),
                    ("args", Json::obj([("name", Json::Str(name.clone()))])),
                ])
            })
            .collect();
        for ev in self.events.lock().expect("trace lock").iter() {
            let mut pairs = vec![
                ("name".to_string(), Json::Str(ev.name.clone())),
                (
                    "ph".to_string(),
                    Json::Str(if ev.dur_us.is_some() { "X" } else { "i" }.into()),
                ),
                ("ts".to_string(), Json::Num(ev.ts_us as f64)),
            ];
            if let Some(dur) = ev.dur_us {
                pairs.push(("dur".to_string(), Json::Num(dur as f64)));
            } else {
                // Instant scope: thread-local, the narrowest marker.
                pairs.push(("s".to_string(), Json::Str("t".into())));
            }
            pairs.push(("pid".to_string(), Json::Num(1.0)));
            pairs.push(("tid".to_string(), Json::Num(ev.lane as f64)));
            if let Some(cell) = ev.cell {
                pairs.push((
                    "args".to_string(),
                    Json::obj([("cell", Json::Num(cell as f64))]),
                ));
            }
            events.push(Json::Obj(pairs));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }

    /// Writes the journal to `path` as Chrome trace-event JSON.
    pub fn write(&self, path: &Path, lane_names: &[String]) -> Result<(), super::DistError> {
        std::fs::write(path, self.to_chrome_json(lane_names).render())
            .map_err(|e| super::io_err(path, e))
    }
}

impl Default for TraceJournal {
    fn default() -> Self {
        TraceJournal::new()
    }
}

/// Timeline lane labels for a run with `workers` subprocesses: one per
/// worker plus the trailing coordinator lane (a single `in-process` lane
/// when `workers == 0`).
pub fn lane_names(workers: usize) -> Vec<String> {
    if workers == 0 {
        return vec!["in-process".to_string()];
    }
    let mut names: Vec<String> = (0..workers).map(|i| format!("worker {i}")).collect();
    names.push("coordinator".to_string());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_renders_valid_chrome_trace_json() {
        let j = TraceJournal::new();
        let t0 = j.now_us();
        j.complete(0, "cell 3".into(), t0, Some(3));
        j.instant(1, "worker died".into(), Some(5));
        j.complete(2, "cell 5".into(), j.now_us(), Some(5));
        assert_eq!(j.len(), 3);

        let doc = j.to_chrome_json(&lane_names(2));
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 lane-name metadata events + 3 recorded events.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, ["M", "M", "M", "X", "i", "X"]);
        // Complete spans carry non-negative durations and their cell.
        let span = &events[3];
        assert!(span.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(
            span.get("args").unwrap().get("cell").unwrap().as_usize(),
            Some(3)
        );
        // Lane labels land on distinct tids.
        assert_eq!(events[2].get("tid").unwrap().as_usize(), Some(2));
        assert_eq!(
            events[2].get("args").unwrap().get("name").unwrap().as_str(),
            Some("coordinator")
        );
    }

    #[test]
    fn lane_names_cover_workers_plus_coordinator() {
        assert_eq!(lane_names(0), ["in-process"]);
        assert_eq!(lane_names(2), ["worker 0", "worker 1", "coordinator"]);
    }

    #[test]
    fn write_round_trips_through_a_file() {
        let j = TraceJournal::new();
        j.complete(0, "cell 0".into(), 0, Some(0));
        let path = std::env::temp_dir().join(format!("meg-trace-{}.json", std::process::id()));
        j.write(&path, &lane_names(0)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}
