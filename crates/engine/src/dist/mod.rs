//! Distributed sweep execution: shard a scenario's cell list across
//! processes, checkpoint durably, merge deterministically.
//!
//! A resolved scenario is a flat list of cells (see [`crate::run`]); every
//! cell's seed depends only on `(scenario name, master seed, global cell
//! index)`. That makes the cell list a **shardable work queue**: any
//! partition of the indices executes exactly the rows an unsharded run
//! would, so distribution is pure mechanics — no statistics change. The
//! subsystem has four layers:
//!
//! * [`shard`] — [`ShardSpec`] (`--shard i/m`) with contiguous and
//!   round-robin partitioning strategies, a pure function of the global
//!   cell index;
//! * [`checkpoint`] — durable `*.part.jsonl` shard files: a header line
//!   recording the scenario fingerprint, master seed, and shard spec,
//!   followed by one completed [`Row`](crate::run::Row) JSON line per cell.
//!   Appended as cells finish, so a killed run loses at most the torn final
//!   line; `--resume` skips every checkpointed cell;
//! * [`worker`] — the subprocess protocol: `meg-lab worker` reads JSON-line
//!   requests on stdin (a scenario handshake, then cell assignments) and
//!   answers each cell with the row's canonical JSON line on stdout;
//! * [`coordinator`] — [`run_sharded`] executes one shard, either in-process
//!   or by dispatching cells to `--workers k` subprocesses (dead workers are
//!   respawned and their in-flight request retried), streaming rows back in
//!   canonical cell order. Under an adaptive-precision scenario
//!   (`Precision::TargetStderr`, `meg-lab run --target-stderr`) it runs the
//!   per-cell control loop: dispatch `min_trials`, inspect the returned
//!   standard error, re-dispatch incremental trial batches until the target
//!   is met or `max_trials` is spent;
//! * [`trace`] / [`progress`] — sweep observability: a Chrome trace-event
//!   journal of per-cell lifecycle events (`--trace out.json`, viewable in
//!   Perfetto) and a throttled single-line stderr status (`--progress`).
//!   Workers additionally ship `meg-obs` counter-delta snapshots with every
//!   response (see [`worker`]), which the coordinator pools into the merged
//!   `--metrics` view;
//! * [`merge`] — [`merge_dir`] validates that every part file in a directory
//!   belongs to the same run, rejects conflicting duplicates, checks
//!   completeness, and re-sorts rows into canonical cell-index order — so a
//!   sharded run's merged output is **byte-identical** to an unsharded run.
//!
//! ## Example
//!
//! ```
//! use meg_engine::dist::{merge_dir, run_sharded, DistOptions, ShardSpec};
//! use meg_engine::prelude::*;
//!
//! let scenario = builtin("quick_smoke").unwrap().scaled(0.25);
//! let dir = std::env::temp_dir().join(format!("meg-dist-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir); // stale checkpoints would refuse create
//! std::fs::create_dir_all(&dir).unwrap();
//!
//! // Run both halves of a 2-way shard, checkpointing into `dir` …
//! for i in 0..2 {
//!     let opts = DistOptions {
//!         shard: ShardSpec::parse(&format!("{i}/2")).unwrap(),
//!         out_dir: Some(dir.clone()),
//!         ..DistOptions::default()
//!     };
//!     run_sharded(&scenario, 2009, &opts, |_cell, _line| {}).unwrap();
//! }
//!
//! // … and merge: identical to the unsharded row stream.
//! let merged = merge_dir(&dir).unwrap();
//! let unsharded: Vec<String> = run_scenario(&scenario, 2009)
//!     .unwrap()
//!     .iter()
//!     .map(|r| r.to_json().render())
//!     .collect();
//! assert_eq!(merged.lines, unsharded);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod checkpoint;
pub mod coordinator;
pub mod merge;
pub mod progress;
pub mod shard;
pub mod trace;
pub mod worker;

pub use checkpoint::{scenario_fingerprint, PartHeader};
pub use coordinator::{run_sharded, DistOptions, RunReport};
pub use merge::{merge_dir, Merged};
pub use progress::Progress;
pub use shard::{ShardSpec, ShardStrategy};
pub use trace::TraceJournal;

use crate::scenario::ScenarioError;
use std::fmt;

/// Errors produced by the distributed-execution subsystem.
#[derive(Clone, Debug, PartialEq)]
pub enum DistError {
    /// Filesystem failure (path plus the underlying error text).
    Io(String),
    /// A part file or protocol message violated the expected format.
    Format(String),
    /// Part files (or a resume directory) disagree on scenario, seed, or
    /// cell count — they belong to different runs.
    Mismatch(String),
    /// The scenario itself is invalid.
    Scenario(ScenarioError),
    /// A worker subprocess failed beyond the retry budget.
    Worker(String),
    /// Merge found no row for these global cell indices.
    Incomplete(Vec<usize>),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(m) => write!(f, "I/O error: {m}"),
            DistError::Format(m) => write!(f, "format error: {m}"),
            DistError::Mismatch(m) => write!(f, "run mismatch: {m}"),
            DistError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            DistError::Worker(m) => write!(f, "worker failure: {m}"),
            DistError::Incomplete(missing) => {
                let shown: Vec<String> = missing.iter().take(8).map(|c| c.to_string()).collect();
                write!(
                    f,
                    "incomplete run: {} cell(s) missing (first: {}{})",
                    missing.len(),
                    shown.join(", "),
                    if missing.len() > 8 { ", …" } else { "" }
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<ScenarioError> for DistError {
    fn from(e: ScenarioError) -> Self {
        DistError::Scenario(e)
    }
}

pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> DistError {
    DistError::Io(format!("{}: {e}", path.display()))
}
