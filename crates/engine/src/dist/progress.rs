//! Live sweep progress: a throttled single-line stderr status.
//!
//! `meg-lab run --progress` rewrites one stderr line (`\r`, no scrolling)
//! with cells done/total, overall row throughput, per-worker item
//! throughput, the respawn count, and an ETA. The line is redrawn at most
//! every [`REDRAW_EVERY`] and auto-disables when stderr is not a TTY
//! (`MEG_PROGRESS_FORCE=1` overrides, for tests and CI captures).
//!
//! Like every `meg-obs` surface, progress reads the monotonic clock only on
//! the coordinator side, strictly outside RNG-consuming code, so enabling it
//! cannot change a single emitted row byte — stdout is untouched either way.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between redraws (faults redraw immediately).
pub const REDRAW_EVERY: Duration = Duration::from_millis(100);

/// Whether `--progress` should actually draw: stderr is a TTY, or the
/// `MEG_PROGRESS_FORCE=1` escape hatch is set.
pub fn stderr_wants_progress() -> bool {
    std::io::stderr().is_terminal() || std::env::var_os("MEG_PROGRESS_FORCE").is_some()
}

struct ProgressState {
    start: Instant,
    total: usize,
    done: usize,
    lane_items: Vec<u64>,
    respawns: u64,
    last_draw: Option<Instant>,
    last_len: usize,
}

/// A thread-shared progress meter for one sharded run.
pub struct Progress {
    state: Mutex<ProgressState>,
}

impl Progress {
    /// Opens a meter over `total` cells, `already_done` of them resumed from
    /// a checkpoint, with `lanes` worker lanes (1 for in-process runs).
    pub fn new(total: usize, already_done: usize, lanes: usize) -> Progress {
        Progress {
            state: Mutex::new(ProgressState {
                start: Instant::now(),
                total,
                done: already_done,
                lane_items: vec![0; lanes.max(1)],
                respawns: 0,
                last_draw: None,
                last_len: 0,
            }),
        }
    }

    /// Records one work item served by `lane` (a cell or a trial batch).
    pub fn item_done(&self, lane: usize) {
        let mut st = self.state.lock().expect("progress lock");
        if let Some(slot) = st.lane_items.get_mut(lane) {
            *slot += 1;
        }
        Self::draw(&mut st, false);
    }

    /// Records one finalized cell (its row has been emitted).
    pub fn cell_done(&self) {
        let mut st = self.state.lock().expect("progress lock");
        st.done += 1;
        Self::draw(&mut st, false);
    }

    /// Records a worker respawn; faults redraw immediately.
    pub fn respawn(&self) {
        let mut st = self.state.lock().expect("progress lock");
        st.respawns += 1;
        Self::draw(&mut st, true);
    }

    /// Draws the final status and moves to a fresh line.
    pub fn finish(&self) {
        let mut st = self.state.lock().expect("progress lock");
        Self::draw(&mut st, true);
        eprintln!();
    }

    fn draw(st: &mut ProgressState, force: bool) {
        let now = Instant::now();
        if !force
            && st
                .last_draw
                .is_some_and(|last| now.duration_since(last) < REDRAW_EVERY)
        {
            return;
        }
        st.last_draw = Some(now);
        let line = format_status(
            st.done,
            st.total,
            now.duration_since(st.start),
            &st.lane_items,
            st.respawns,
        );
        // Pad over whatever the previous (possibly longer) draw left behind.
        let pad = st.last_len.saturating_sub(line.len());
        st.last_len = line.len();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}{}", " ".repeat(pad));
        let _ = err.flush();
    }
}

/// Renders one status line. Pure, so the format is unit-testable without a
/// terminal.
pub fn format_status(
    done: usize,
    total: usize,
    elapsed: Duration,
    lane_items: &[u64],
    respawns: u64,
) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let rate = done as f64 / secs;
    let eta = if done > 0 && done < total {
        let remaining = (total - done) as f64 / rate;
        if remaining >= 90.0 {
            format!("{:.1}m", remaining / 60.0)
        } else {
            format!("{remaining:.0}s")
        }
    } else if done >= total {
        "done".to_string()
    } else {
        "--".to_string()
    };
    // Per-lane item throughput; wide pools abbreviate to the first lanes.
    const SHOWN: usize = 8;
    let mut lanes: Vec<String> = lane_items
        .iter()
        .take(SHOWN)
        .map(|&n| format!("{:.1}", n as f64 / secs))
        .collect();
    if lane_items.len() > SHOWN {
        lanes.push("…".to_string());
    }
    format!(
        "meg-lab: {done}/{total} cells · {rate:.1} rows/s · workers [{}] items/s · \
         {respawns} respawn(s) · ETA {eta}",
        lanes.join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_line_reports_rates_respawns_and_eta() {
        let line = format_status(10, 40, Duration::from_secs(5), &[10, 15], 2);
        assert!(line.contains("10/40 cells"), "{line}");
        assert!(line.contains("2.0 rows/s"), "{line}");
        assert!(line.contains("[2.0 3.0] items/s"), "{line}");
        assert!(line.contains("2 respawn(s)"), "{line}");
        assert!(line.contains("ETA 15s"), "{line}");
    }

    #[test]
    fn status_line_edge_cases() {
        // Nothing done yet: no rate to extrapolate an ETA from.
        assert!(format_status(0, 4, Duration::from_secs(1), &[0], 0).contains("ETA --"));
        // Finished: ETA collapses to done.
        assert!(format_status(4, 4, Duration::from_secs(1), &[4], 0).contains("ETA done"));
        // Long remainders render in minutes.
        let slow = format_status(1, 1000, Duration::from_secs(10), &[1], 0);
        assert!(slow.contains('m'), "{slow}");
        // Wide pools abbreviate.
        let wide = format_status(1, 2, Duration::from_secs(1), &[1; 20], 0);
        assert!(wide.contains('…'), "{wide}");
    }

    #[test]
    fn meter_accumulates_without_a_terminal() {
        // Exercise the lock paths; drawing goes to stderr, which tests may
        // capture freely.
        let p = Progress::new(2, 0, 2);
        p.item_done(0);
        p.item_done(1);
        p.item_done(99); // out-of-range lane is ignored
        p.cell_done();
        p.respawn();
        let st = p.state.lock().unwrap();
        assert_eq!((st.done, st.respawns), (1, 1));
        assert_eq!(st.lane_items, vec![1, 1]);
    }
}
