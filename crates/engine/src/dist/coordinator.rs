//! The coordinator: executes one shard of a scenario, in-process or across
//! worker subprocesses, with durable checkpointing and resume.
//!
//! [`run_sharded`] is the single entry point. It
//!
//! 1. resolves the scenario and takes this shard's slice of the global cell
//!    list ([`ShardSpec::assign`]);
//! 2. under `--resume`, loads every compatible part file in the output
//!    directory and **skips each already-checkpointed cell** — resumed rows
//!    are re-emitted from the checkpoint, not re-executed;
//! 3. executes the remaining cells — sequentially in-process
//!    (`workers == 0`), or by dispatching them to `workers` subprocesses
//!    speaking the [`worker`](super::worker) protocol. A worker that dies
//!    mid-run is respawned and its in-flight cell retried, up to
//!    [`DistOptions::max_retries`] retries (i.e. `max_retries + 1` total
//!    attempts) per cell;
//! 4. appends each completed row to the shard's part file the moment it
//!    finishes, then streams rows to the caller in ascending global
//!    cell-index order — so the emitted byte stream of shard `i/m` is
//!    exactly the corresponding subsequence of an unsharded run's output.
//!
//! Under a [`Precision::TargetStderr`] scenario the worker pool runs the
//! **adaptive control loop** instead of one-request-per-cell: each cell's
//! first `min_trials` are dispatched as a batch, the returned outcomes'
//! standard error is checked against `eps` at every checkpoint of the shared
//! doubling schedule (`meg_stats::precision_checkpoints`), and incremental
//! batches are re-dispatched until the target is met or `max_trials` is
//! spent. Trial seeds depend only on `(cell seed, trial index)`, so the
//! finished rows are byte-identical to an unsharded adaptive run — and, at
//! `eps = 0`, to a fixed run of `max_trials` trials.
//!
//! ## Example
//!
//! An in-process (`workers == 0`) shard of an adaptive scenario:
//!
//! ```
//! use meg_engine::dist::{run_sharded, DistOptions};
//! use meg_engine::prelude::*;
//!
//! let mut scenario = builtin("quick_smoke").unwrap().scaled(0.25);
//! scenario.precision = Precision::TargetStderr {
//!     eps: 1.0,
//!     min_trials: 2,
//!     max_trials: 8,
//! };
//! let report = run_sharded(&scenario, 2009, &DistOptions::default(), |_, _| {}).unwrap();
//! assert!(report.complete);
//!
//! // Every row either met the target or spent the whole budget …
//! let rows: Vec<Row> = report
//!     .rows
//!     .iter()
//!     .map(|(_, line)| Row::from_json(&meg_engine::Json::parse(line).unwrap()).unwrap())
//!     .collect();
//! assert!(rows
//!     .iter()
//!     .all(|r| r.achieved_stderr.is_some_and(|se| se <= 1.0) || r.trials == 8));
//!
//! // … and the row stream matches the unsharded adaptive run byte for byte.
//! let reference: Vec<String> = run_scenario(&scenario, 2009)
//!     .unwrap()
//!     .iter()
//!     .map(|r| r.to_json().render())
//!     .collect();
//! assert_eq!(
//!     report.rows.into_iter().map(|(_, l)| l).collect::<Vec<_>>(),
//!     reference
//! );
//! ```

use super::checkpoint::{self, PartHeader, PartWriter};
use super::progress::{self, Progress};
use super::shard::ShardSpec;
use super::trace::{lane_names, TraceJournal};
use super::worker::{batch_line, cell_line, hello_line_with, shutdown_line};
use super::DistError;
use crate::json::Json;
use crate::metrics::snapshot_from_json;
use crate::run::{
    adaptive_stop, aggregate_row, cell_seed, resolve_cells, run_cell, Cell, TrialOutcome,
};
use crate::scenario::{Precision, Scenario};
use meg_obs as obs;
use meg_obs::MetricsSnapshot;
use meg_stats::precision_checkpoints;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Options controlling one sharded run.
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Which slice of the cell list to execute.
    pub shard: ShardSpec,
    /// Worker subprocesses to dispatch cells to; `0` executes in-process.
    pub workers: usize,
    /// Directory for the shard's `*.part.jsonl` checkpoint (no checkpointing
    /// when `None`; required for `resume`).
    pub out_dir: Option<PathBuf>,
    /// Skip cells already checkpointed in `out_dir` and append to the
    /// existing part file instead of refusing to overwrite it.
    pub resume: bool,
    /// Execute at most this many *new* cells, then stop (the checkpoint
    /// stays valid — a later `resume` finishes the rest). Models an
    /// interrupted run deterministically.
    pub limit: Option<usize>,
    /// Binary to spawn as `<cmd> worker` (default: the current executable,
    /// which is correct for `meg-lab` itself).
    pub worker_cmd: Option<PathBuf>,
    /// Fault injection: spawned workers abort after serving this many cells
    /// (forwarded as `worker --fail-after N`). Exercises the restart path.
    pub worker_fail_after: Option<usize>,
    /// Per-cell retry budget when a worker dies (respawn + resend).
    pub max_retries: usize,
    /// Narrate worker fault events (deaths, respawns, retries) on stderr,
    /// each prefixed with the monotonic milliseconds since the pool started.
    pub verbose: bool,
    /// Have each worker ship `meg-obs` counter-delta snapshots with every
    /// response plus a final full snapshot at shutdown; the per-lane merges
    /// land in [`RunReport::worker_metrics`].
    pub ship_metrics: bool,
    /// Record per-cell lifecycle events and write them to this file as
    /// Chrome trace-event JSON when the run finishes (`--trace`).
    pub trace: Option<PathBuf>,
    /// Render a throttled single-line progress status on stderr
    /// (`--progress`; auto-disabled when stderr is not a TTY).
    pub progress: bool,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            shard: ShardSpec::full(),
            workers: 0,
            out_dir: None,
            resume: false,
            limit: None,
            worker_cmd: None,
            worker_fail_after: None,
            max_retries: 3,
            verbose: false,
            ship_metrics: false,
            trace: None,
            progress: false,
        }
    }
}

/// What a sharded run did.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Every row this run emitted — resumed and freshly executed — as
    /// `(global cell index, canonical JSON line)` in ascending index order.
    pub rows: Vec<(usize, String)>,
    /// Cells assigned to this shard.
    pub assigned: usize,
    /// Cells actually executed by this run.
    pub executed: usize,
    /// Cells skipped because a checkpoint already had their rows.
    pub resumed: usize,
    /// Whether every assigned cell now has a row (false only under `limit`).
    pub complete: bool,
    /// With [`DistOptions::ship_metrics`], one merged [`MetricsSnapshot`]
    /// per worker lane: every counter delta the lane's subprocesses shipped,
    /// plus the gauges and span histograms of the final snapshot. Empty
    /// otherwise (including in-process runs).
    pub worker_metrics: Vec<MetricsSnapshot>,
}

/// Buffers out-of-order results and releases them in ascending assigned
/// order, so callers see the canonical row stream regardless of which worker
/// finished first.
struct OrderedEmitter<'a, F: FnMut(usize, &str)> {
    assigned: &'a [usize],
    next: usize,
    buffer: BTreeMap<usize, String>,
    emitted: Vec<(usize, String)>,
    on_row: F,
}

impl<'a, F: FnMut(usize, &str)> OrderedEmitter<'a, F> {
    fn new(assigned: &'a [usize], on_row: F) -> Self {
        OrderedEmitter {
            assigned,
            next: 0,
            buffer: BTreeMap::new(),
            emitted: Vec::new(),
            on_row,
        }
    }

    fn offer(&mut self, cell: usize, line: String) {
        self.buffer.insert(cell, line);
        while let Some(&expect) = self.assigned.get(self.next) {
            match self.buffer.remove(&expect) {
                Some(line) => {
                    (self.on_row)(expect, &line);
                    self.emitted.push((expect, line));
                    self.next += 1;
                }
                None => break,
            }
        }
    }

    /// Flushes rows stranded behind a gap (possible only under `limit`).
    fn finish(mut self) -> Vec<(usize, String)> {
        let rest = std::mem::take(&mut self.buffer);
        for (cell, line) in rest {
            (self.on_row)(cell, &line);
            self.emitted.push((cell, line));
        }
        self.emitted
    }
}

/// Executes this shard's cells and returns the report. `on_row` is invoked
/// once per emitted row, in ascending global cell-index order.
pub fn run_sharded<F: FnMut(usize, &str)>(
    scenario: &Scenario,
    master_seed: u64,
    opts: &DistOptions,
    on_row: F,
) -> Result<RunReport, DistError> {
    let cells = resolve_cells(scenario)?;
    let assigned = opts.shard.assign(cells.len());
    let header = PartHeader::new(scenario, master_seed, &opts.shard);

    if opts.resume && opts.out_dir.is_none() {
        return Err(DistError::Format(
            "--resume needs an output directory".into(),
        ));
    }
    // One directory scan serves both the skip-set and this shard's own
    // part file (so resume never parses a large checkpoint twice).
    let (completed, own_part) = match &opts.out_dir {
        Some(dir) if opts.resume && dir.exists() => {
            let parts = checkpoint::scan_dir(dir)?;
            let completed = checkpoint::completed_from_parts(&parts, &header)?;
            let own = checkpoint::part_path(dir, &opts.shard);
            let own_part = parts.into_iter().find(|(p, _)| *p == own).map(|(_, f)| f);
            (completed, own_part)
        }
        _ => (BTreeMap::new(), None),
    };
    let mut writer = match &opts.out_dir {
        Some(dir) if opts.resume => Some(PartWriter::resume(
            dir,
            &header,
            &opts.shard,
            own_part.as_ref(),
        )?),
        Some(dir) => Some(PartWriter::create(dir, &header, &opts.shard)?),
        None => None,
    };

    let resumed: Vec<(usize, String)> = assigned
        .iter()
        .filter_map(|c| completed.get(c).map(|l| (*c, l.clone())))
        .collect();
    let mut todo: Vec<usize> = assigned
        .iter()
        .copied()
        .filter(|c| !completed.contains_key(c))
        .collect();
    let outstanding = todo.len();
    if let Some(limit) = opts.limit {
        todo.truncate(limit);
    }

    let mut emitter = OrderedEmitter::new(&assigned, on_row);
    let resumed_count = resumed.len();

    // Sweep observability: both read the monotonic clock strictly outside
    // RNG-consuming code, so neither can perturb a single row byte.
    let journal = opts.trace.as_ref().map(|_| TraceJournal::new());
    let coord_lane = opts.workers; // == 0 → the single in-process lane
    let meter = (opts.progress && progress::stderr_wants_progress())
        .then(|| Progress::new(assigned.len(), resumed_count, opts.workers.max(1)));

    for (cell, line) in resumed {
        if let Some(j) = &journal {
            j.instant(coord_lane, format!("cell {cell} resumed"), Some(cell));
        }
        emitter.offer(cell, line);
    }

    let executed = todo.len();
    let mut worker_metrics = Vec::new();
    if opts.workers == 0 {
        for &index in &todo {
            let t0 = journal.as_ref().map(|j| j.now_us());
            let row = run_cell(
                scenario,
                &cells[index],
                cell_seed(&scenario.name, master_seed, index),
            );
            let line = row.to_json().render();
            if let Some(j) = &journal {
                j.complete(0, format!("cell {index}"), t0.unwrap_or(0), Some(index));
            }
            if let Some(w) = &mut writer {
                w.append(&line)?;
            }
            emitter.offer(index, line);
            if let Some(m) = &meter {
                m.item_done(0);
                m.cell_done();
            }
        }
    } else {
        worker_metrics = dispatch_to_workers(
            scenario,
            &cells,
            master_seed,
            opts,
            &todo,
            journal.as_ref(),
            meter.as_ref(),
            |index, line| {
                if let Some(w) = &mut writer {
                    w.append(&line)?;
                }
                emitter.offer(index, line);
                Ok(())
            },
        )?;
    }

    if let Some(m) = &meter {
        m.finish();
    }
    if let (Some(j), Some(path)) = (&journal, &opts.trace) {
        j.write(path, &lane_names(opts.workers))?;
    }

    let rows = emitter.finish();
    Ok(RunReport {
        assigned: assigned.len(),
        executed,
        resumed: resumed_count,
        complete: executed == outstanding,
        rows,
        worker_metrics,
    })
}

// ---------------------------------------------------------------------------
// Worker-pool dispatch

/// One unit of work a pool thread sends to its subprocess.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WorkItem {
    /// Execute a whole cell and answer with its canonical row line
    /// (fixed-trials mode).
    Row(usize),
    /// Execute trials `start .. start + count` of a cell and answer with the
    /// raw outcomes (adaptive mode; the control loop decides what follows).
    Batch {
        cell: usize,
        start: usize,
        count: usize,
    },
}

impl WorkItem {
    /// The global cell index this item concerns.
    fn cell(&self) -> usize {
        match *self {
            WorkItem::Row(index) => index,
            WorkItem::Batch { cell, .. } => cell,
        }
    }

    /// Label for this item's trace span.
    fn trace_name(&self) -> String {
        match *self {
            WorkItem::Row(index) => format!("cell {index}"),
            WorkItem::Batch { cell, start, count } => {
                format!("cell {cell} trials {start}..{}", start + count)
            }
        }
    }
}

/// The shared work queue. Unlike a plain deque, it knows how many adaptive
/// cells are still *open* (not yet finalized by the control loop): a pool
/// thread finding the queue empty must keep waiting while open cells exist,
/// because the coordinator may still enqueue follow-up batches for them.
struct WorkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    items: VecDeque<WorkItem>,
    open_cells: usize,
    shutdown: bool,
}

impl WorkQueue {
    fn new(items: VecDeque<WorkItem>, open_cells: usize) -> WorkQueue {
        WorkQueue {
            state: Mutex::new(QueueState {
                items,
                open_cells,
                shutdown: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Takes the next work item, blocking while the queue is empty but
    /// adaptive cells remain open. Returns `None` when drained or shut down.
    fn pop(&self) -> Option<WorkItem> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(item) = st.items.pop_front() {
                obs::sample(obs::Gauge::QueueDepth, st.items.len() as u64);
                return Some(item);
            }
            if st.open_cells == 0 {
                return None;
            }
            st = self.available.wait(st).expect("queue lock");
        }
    }

    fn push(&self, item: WorkItem) {
        let mut st = self.state.lock().expect("queue lock");
        st.items.push_back(item);
        obs::sample(obs::Gauge::QueueDepth, st.items.len() as u64);
        drop(st);
        self.available.notify_one();
    }

    /// Marks one adaptive cell finalized; wakes every waiting thread once
    /// none remain so they can exit.
    fn finish_cell(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.open_cells = st.open_cells.saturating_sub(1);
        if st.open_cells == 0 {
            drop(st);
            self.available.notify_all();
        }
    }

    /// Aborts the run: waiting threads wake up and exit.
    fn shut_down(&self) {
        self.state.lock().expect("queue lock").shutdown = true;
        self.available.notify_all();
    }
}

/// A live worker subprocess with buffered pipes.
struct WorkerProc {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
    /// Whether the hello asked this worker to ship metrics snapshots (an
    /// extra `{"metrics":…}` line after every response).
    ship_metrics: bool,
}

/// The hello line plus what a healthy worker must echo back: agreeing on
/// the cell count and scenario fingerprint is what lets a foreign binary
/// serve cells without breaking byte-identity.
struct Handshake {
    hello: String,
    num_cells: usize,
    fingerprint: String,
}

impl WorkerProc {
    fn spawn(
        cmd: &std::path::Path,
        handshake: &Handshake,
        fail_after: Option<usize>,
        ship_metrics: bool,
    ) -> Result<WorkerProc, String> {
        let mut command = Command::new(cmd);
        command
            .arg("worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if let Some(n) = fail_after {
            command.arg("--fail-after").arg(n.to_string());
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("cannot spawn worker `{}`: {e}", cmd.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut worker = WorkerProc {
            child,
            stdin,
            stdout,
            ship_metrics,
        };
        // A worker that fails the handshake must be reaped here — returning
        // Err after a plain drop would leak a zombie per retry attempt.
        match worker.validate_ready(handshake) {
            Ok(()) => Ok(worker),
            Err(e) => {
                worker.kill();
                Err(e)
            }
        }
    }

    fn validate_ready(&mut self, handshake: &Handshake) -> Result<(), String> {
        let ready = self
            .round_trip(&handshake.hello)
            .map_err(|e| format!("worker handshake failed: {e}"))?;
        let parsed = Json::parse(&ready).ok();
        let ready_obj = parsed.as_ref().and_then(|v| v.get("ready"));
        let num_cells = ready_obj.and_then(|r| r.get("num_cells")?.as_usize());
        if num_cells != Some(handshake.num_cells) {
            return Err(format!(
                "worker resolved {num_cells:?} cells, coordinator expects {} \
                 (mismatched binary?)",
                handshake.num_cells
            ));
        }
        // The fingerprint guards byte-identity itself: a worker binary that
        // resolves the scenario differently must not be allowed to serve.
        let fingerprint = ready_obj.and_then(|r| r.get("fingerprint")?.as_str());
        if fingerprint != Some(handshake.fingerprint.as_str()) {
            return Err(format!(
                "worker scenario fingerprint {fingerprint:?} does not match the \
                 coordinator's {} (mismatched binary?)",
                handshake.fingerprint
            ));
        }
        Ok(())
    }

    /// Writes one request line and reads one response line.
    fn round_trip(&mut self, request: &str) -> Result<String, String> {
        let _span = obs::span("worker_round_trip");
        writeln!(self.stdin, "{request}")
            .and_then(|_| self.stdin.flush())
            .map_err(|e| format!("write: {e}"))?;
        let mut line = String::new();
        match self.stdout.read_line(&mut line) {
            Ok(0) => Err("worker closed its stdout (died?)".into()),
            Ok(_) => Ok(line.trim_end_matches('\n').to_string()),
            Err(e) => Err(format!("read: {e}")),
        }
    }

    fn request_cell(&mut self, index: usize) -> Result<String, String> {
        let line = self.round_trip(&cell_line(index))?;
        let cell = Json::parse(&line)
            .ok()
            .and_then(|v| v.get("cell")?.as_usize());
        if cell != Some(index) {
            return Err(format!("worker answered cell {cell:?}, wanted {index}"));
        }
        Ok(line)
    }

    /// Sends one work item, validates the reply's addressing, and parses it
    /// exactly once: the adaptive batch reply must echo the cell and start
    /// offset and carry exactly `count` well-formed outcomes (a malformed
    /// reply counts as a worker failure, so it goes through the normal
    /// respawn-and-retry path). A shipping worker follows every response
    /// with a counter-delta line, returned alongside the reply.
    fn request(&mut self, item: WorkItem) -> Result<(WorkReply, Option<MetricsSnapshot>), String> {
        let reply = match item {
            WorkItem::Row(index) => self.request_cell(index).map(WorkReply::Row)?,
            WorkItem::Batch { cell, start, count } => {
                let line = self.round_trip(&batch_line(cell, start, count))?;
                let parsed = Json::parse(&line).ok();
                let got_cell = parsed.as_ref().and_then(|v| v.get("cell")?.as_usize());
                let got_start = parsed.as_ref().and_then(|v| v.get("start")?.as_usize());
                let outcomes = parsed
                    .as_ref()
                    .and_then(|v| v.get("outcomes")?.as_arr())
                    .map(|arr| {
                        arr.iter()
                            .map(TrialOutcome::from_json)
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .and_then(Result::ok);
                let got_count = outcomes.as_ref().map(Vec::len);
                if got_cell != Some(cell) || got_start != Some(start) || got_count != Some(count) {
                    return Err(format!(
                        "worker answered batch (cell {got_cell:?}, start {got_start:?}, \
                         {got_count:?} outcomes), wanted (cell {cell}, start {start}, \
                         {count} outcomes)"
                    ));
                }
                WorkReply::Batch(outcomes.expect("validated above"))
            }
        };
        let metrics = if self.ship_metrics {
            Some(self.read_metrics()?)
        } else {
            None
        };
        Ok((reply, metrics))
    }

    /// Reads the `{"metrics":…}` counter-delta line a shipping worker sends
    /// after every response. A missing or malformed line is a worker failure
    /// (the stream would be desynchronized), handled by respawn-and-retry.
    fn read_metrics(&mut self) -> Result<MetricsSnapshot, String> {
        let mut line = String::new();
        match self.stdout.read_line(&mut line) {
            Ok(0) => return Err("worker closed its stdout before its metrics line".into()),
            Ok(_) => {}
            Err(e) => return Err(format!("read metrics: {e}")),
        }
        Json::parse(line.trim_end_matches('\n'))
            .ok()
            .as_ref()
            .and_then(|v| v.get("metrics"))
            .ok_or_else(|| "expected a metrics delta line".to_string())
            .and_then(|m| snapshot_from_json(m).map_err(|e| format!("metrics line: {e}")))
    }

    /// Sends shutdown; a shipping worker answers with its final full
    /// snapshot (gauges and span histograms included), returned to be folded
    /// into the lane's merge. Best-effort: a worker that dies instead just
    /// yields `None`.
    fn shutdown(mut self) -> Option<MetricsSnapshot> {
        let _ = writeln!(self.stdin, "{}", shutdown_line());
        let _ = self.stdin.flush();
        let finale = if self.ship_metrics {
            let mut line = String::new();
            match self.stdout.read_line(&mut line) {
                Ok(n) if n > 0 => Json::parse(line.trim_end_matches('\n'))
                    .ok()
                    .as_ref()
                    .and_then(|v| v.get("final_metrics"))
                    .and_then(|m| snapshot_from_json(m).ok()),
                _ => None,
            }
        } else {
            None
        };
        drop(self.stdin);
        let _ = self.child.wait();
        finale
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A validated, parsed worker reply.
enum WorkReply {
    /// The canonical row line answering a [`WorkItem::Row`].
    Row(String),
    /// The trial outcomes answering a [`WorkItem::Batch`].
    Batch(Vec<TrialOutcome>),
}

/// Shared, read-only context every pool thread borrows.
struct PoolCtx<'a> {
    cmd: &'a std::path::Path,
    handshake: &'a Handshake,
    opts: &'a DistOptions,
    queue: &'a WorkQueue,
    abort: &'a AtomicBool,
    journal: Option<&'a TraceJournal>,
    meter: Option<&'a Progress>,
    /// When the pool started — anchors the `[+{ms}ms]` prefix on verbose
    /// fault narration, correlatable with the trace journal's timestamps.
    started: Instant,
}

impl PoolCtx<'_> {
    fn elapsed_ms(&self) -> u128 {
        self.started.elapsed().as_millis()
    }
}

/// One worker thread: owns (and respawns) a subprocess, pulls work items off
/// the shared queue, and ships each validated reply over the channel.
/// Counter deltas the subprocess ships accumulate into `metrics_out`, plus
/// the gauges/spans of its final shutdown snapshot (counters cleared there —
/// the deltas already cover every increment, so nothing double-counts).
fn worker_thread(
    lane: usize,
    ctx: &PoolCtx<'_>,
    results: &mpsc::Sender<Result<(WorkItem, WorkReply), DistError>>,
    metrics_out: &Mutex<MetricsSnapshot>,
) {
    let opts = ctx.opts;
    let mut proc: Option<WorkerProc> = None;
    let mut acc = MetricsSnapshot::empty();
    'items: while !ctx.abort.load(Ordering::SeqCst) {
        let Some(item) = ctx.queue.pop() else {
            break;
        };
        let cell = item.cell();
        let mut attempts = 0usize;
        let reply = loop {
            if ctx.abort.load(Ordering::SeqCst) {
                break 'items;
            }
            let t0 = ctx.journal.map(|j| j.now_us());
            let attempt = match proc.as_mut() {
                Some(p) => p.request(item),
                None => {
                    match WorkerProc::spawn(
                        ctx.cmd,
                        ctx.handshake,
                        opts.worker_fail_after,
                        opts.ship_metrics,
                    ) {
                        Ok(p) => {
                            proc = Some(p);
                            if attempts > 0 {
                                obs::add(obs::Counter::WorkerRespawns, 1);
                                if let Some(m) = ctx.meter {
                                    m.respawn();
                                }
                                if let Some(j) = ctx.journal {
                                    j.instant(lane, "worker respawned".into(), Some(cell));
                                }
                                if opts.verbose {
                                    eprintln!(
                                        "meg-lab: [+{}ms] worker respawned \
                                         (lane {lane}, attempt {} for cell {cell})",
                                        ctx.elapsed_ms(),
                                        attempts + 1
                                    );
                                }
                            }
                            continue;
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            match attempt {
                Ok((reply, delta)) => {
                    if let Some(d) = delta {
                        acc.merge(&d);
                    }
                    if let Some(j) = ctx.journal {
                        j.complete(lane, item.trace_name(), t0.unwrap_or(0), Some(cell));
                    }
                    if let Some(m) = ctx.meter {
                        m.item_done(lane);
                    }
                    break reply;
                }
                Err(reason) => {
                    if let Some(p) = proc.take() {
                        p.kill();
                        obs::add(obs::Counter::WorkerDeaths, 1);
                        if let Some(j) = ctx.journal {
                            j.instant(lane, "worker died".into(), Some(cell));
                        }
                        if opts.verbose {
                            eprintln!(
                                "meg-lab: [+{}ms] worker died (lane {lane}, cell {cell}): {reason}",
                                ctx.elapsed_ms()
                            );
                        }
                    }
                    attempts += 1;
                    if attempts > opts.max_retries {
                        if opts.verbose {
                            eprintln!(
                                "meg-lab: [+{}ms] giving up on cell {cell} \
                                 (lane {lane}) after {attempts} attempt(s)",
                                ctx.elapsed_ms()
                            );
                        }
                        ctx.abort.store(true, Ordering::SeqCst);
                        ctx.queue.shut_down();
                        let _ = results.send(Err(DistError::Worker(format!(
                            "{item:?} failed after {attempts} attempt(s): {reason}"
                        ))));
                        break 'items;
                    }
                    obs::add(obs::Counter::WorkerRetries, 1);
                    if opts.verbose {
                        eprintln!(
                            "meg-lab: [+{}ms] retrying cell {cell} on lane {lane} \
                             (attempt {} of {})",
                            ctx.elapsed_ms(),
                            attempts + 1,
                            opts.max_retries + 1
                        );
                    }
                }
            }
        };
        if results.send(Ok((item, reply))).is_err() {
            break;
        }
    }
    if let Some(p) = proc.take() {
        if let Some(mut finale) = p.shutdown() {
            finale.clear_counters();
            acc.merge(&finale);
        }
    }
    if let Ok(mut slot) = metrics_out.lock() {
        *slot = acc;
    }
}

/// Control-loop state of one adaptive cell: the outcomes accumulated so far
/// and which checkpoint of the schedule they reach.
struct CellCtl {
    outcomes: Vec<TrialOutcome>,
    next_checkpoint: usize,
}

/// Runs `todo` through a pool of `opts.workers` subprocesses, invoking
/// `on_result` (on the calling thread) as each finished row line arrives.
///
/// Under `Precision::FixedTrials` each cell is one work item answered by its
/// canonical row line. Under `Precision::TargetStderr` this thread runs the
/// **adaptive control loop**: it dispatches each cell's first `min_trials`
/// batch, inspects the returned outcomes' standard error at every checkpoint
/// of the shared doubling schedule, re-dispatches incremental batches while
/// the target is unmet, and aggregates the final row itself — reaching
/// exactly the trial count an unsharded adaptive run would, so the row bytes
/// match.
#[allow(clippy::too_many_arguments)] // internal seam; run_sharded is the API
fn dispatch_to_workers<F: FnMut(usize, String) -> Result<(), DistError>>(
    scenario: &Scenario,
    cells: &[Cell],
    master_seed: u64,
    opts: &DistOptions,
    todo: &[usize],
    journal: Option<&TraceJournal>,
    meter: Option<&Progress>,
    mut on_result: F,
) -> Result<Vec<MetricsSnapshot>, DistError> {
    if todo.is_empty() {
        return Ok(Vec::new());
    }
    let cmd = match &opts.worker_cmd {
        Some(p) => p.clone(),
        None => std::env::current_exe()
            .map_err(|e| DistError::Worker(format!("cannot locate own executable: {e}")))?,
    };
    let handshake = Handshake {
        hello: hello_line_with(scenario, master_seed, opts.ship_metrics),
        num_cells: scenario.num_cells(),
        fingerprint: super::checkpoint::scenario_fingerprint(scenario),
    };
    let adaptive = match scenario.precision {
        Precision::FixedTrials => None,
        Precision::TargetStderr {
            eps,
            min_trials,
            max_trials,
        } => Some((eps, precision_checkpoints(min_trials, max_trials))),
    };

    let (items, open_cells): (VecDeque<WorkItem>, usize) = match &adaptive {
        None => (todo.iter().map(|&c| WorkItem::Row(c)).collect(), 0),
        Some((_, checkpoints)) => (
            todo.iter()
                .map(|&cell| WorkItem::Batch {
                    cell,
                    start: 0,
                    count: checkpoints[0],
                })
                .collect(),
            todo.len(),
        ),
    };
    let queue = WorkQueue::new(items, open_cells);
    let abort = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let pool_size = opts.workers.min(todo.len());
    // Trace lane layout follows `lane_names(opts.workers)`: lanes past the
    // pool (when fewer cells than workers) simply stay empty.
    let coord_lane = opts.workers;
    let mut ctl: BTreeMap<usize, CellCtl> = BTreeMap::new();
    let ctx = PoolCtx {
        cmd: &cmd,
        handshake: &handshake,
        opts,
        queue: &queue,
        abort: &abort,
        journal,
        meter,
        started: Instant::now(),
    };
    let lane_metrics: Vec<Mutex<MetricsSnapshot>> = (0..pool_size)
        .map(|_| Mutex::new(MetricsSnapshot::empty()))
        .collect();

    std::thread::scope(|scope| {
        for (lane, slot) in lane_metrics.iter().enumerate() {
            let tx = tx.clone();
            let ctx = &ctx;
            scope.spawn(move || {
                worker_thread(lane, ctx, &tx, slot);
            });
        }
        drop(tx);

        let fail = |abort: &AtomicBool, queue: &WorkQueue| {
            abort.store(true, Ordering::SeqCst);
            queue.shut_down();
        };
        let mut first_error = None;
        let mut finalized = 0usize;
        while finalized < todo.len() {
            let mut finished: Option<(usize, String)> = None;
            match rx.recv() {
                Ok(Ok((WorkItem::Row(index), WorkReply::Row(line)))) => {
                    finished = Some((index, line))
                }
                Ok(Ok((WorkItem::Batch { cell, .. }, WorkReply::Batch(outcomes)))) => {
                    let (eps, checkpoints) = adaptive.as_ref().expect("batch implies adaptive");
                    let state = ctl.entry(cell).or_insert(CellCtl {
                        outcomes: Vec::new(),
                        next_checkpoint: 0,
                    });
                    state.outcomes.extend(outcomes);
                    let last = state.next_checkpoint + 1 == checkpoints.len();
                    if !last && !adaptive_stop(*eps, &state.outcomes) {
                        // Target unmet with budget left: grow to the next
                        // checkpoint of the shared schedule.
                        state.next_checkpoint += 1;
                        let start = state.outcomes.len();
                        let target = checkpoints[state.next_checkpoint];
                        if let Some(j) = journal {
                            j.instant(
                                coord_lane,
                                format!("double cell {cell} to {target} trials"),
                                Some(cell),
                            );
                        }
                        queue.push(WorkItem::Batch {
                            cell,
                            start,
                            count: target - start,
                        });
                    } else {
                        let state = ctl.remove(&cell).expect("cell is in flight");
                        let row = aggregate_row(
                            scenario,
                            &cells[cell],
                            cell_seed(&scenario.name, master_seed, cell),
                            &state.outcomes,
                        );
                        queue.finish_cell();
                        finished = Some((cell, row.to_json().render()));
                    }
                }
                Ok(Ok(_)) => {
                    fail(&abort, &queue);
                    first_error = Some(DistError::Worker(
                        "worker reply kind does not match its work item".into(),
                    ));
                    break;
                }
                Ok(Err(e)) => {
                    first_error = Some(e);
                    break;
                }
                Err(_) => {
                    first_error = Some(DistError::Worker(
                        "worker pool exited without completing the queue".into(),
                    ));
                    break;
                }
            }
            if let Some((index, line)) = finished {
                finalized += 1;
                if let Some(j) = journal {
                    j.instant(coord_lane, format!("cell {index} complete"), Some(index));
                }
                if let Some(m) = meter {
                    m.cell_done();
                }
                if let Err(e) = on_result(index, line) {
                    // Checkpoint write failed: stop the pool and surface it.
                    fail(&abort, &queue);
                    first_error = Some(e);
                    break;
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    Ok(if opts.ship_metrics {
        lane_metrics
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    } else {
        Vec::new()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::quick_smoke;
    use crate::run::run_scenario;
    use std::path::Path;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("meg-coord-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reference_lines(scenario: &Scenario, seed: u64) -> Vec<String> {
        run_scenario(scenario, seed)
            .unwrap()
            .iter()
            .map(|r| r.to_json().render())
            .collect()
    }

    fn shard_opts(label: &str, dir: &Path) -> DistOptions {
        DistOptions {
            shard: ShardSpec::parse(label).unwrap(),
            out_dir: Some(dir.to_path_buf()),
            ..DistOptions::default()
        }
    }

    #[test]
    fn single_shard_in_process_matches_unsharded_run() {
        let scenario = quick_smoke().scaled(0.25);
        let reference = reference_lines(&scenario, 2009);
        let mut streamed = Vec::new();
        let report = run_sharded(&scenario, 2009, &DistOptions::default(), |cell, line| {
            streamed.push((cell, line.to_string()))
        })
        .unwrap();
        assert!(report.complete);
        assert_eq!(report.executed, reference.len());
        assert_eq!(report.resumed, 0);
        assert_eq!(report.rows, streamed);
        assert_eq!(
            report
                .rows
                .iter()
                .map(|(_, l)| l.clone())
                .collect::<Vec<_>>(),
            reference
        );
    }

    #[test]
    fn shards_partition_the_reference_rows() {
        let scenario = quick_smoke().scaled(0.25);
        let reference = reference_lines(&scenario, 7);
        for strategy in ["contiguous", "round_robin"] {
            let mut seen: Vec<Option<String>> = vec![None; reference.len()];
            for i in 0..3 {
                let mut shard = ShardSpec::parse(&format!("{i}/3")).unwrap();
                shard.strategy = strategy.parse().unwrap();
                let opts = DistOptions {
                    shard,
                    ..DistOptions::default()
                };
                let report = run_sharded(&scenario, 7, &opts, |_, _| {}).unwrap();
                for (cell, line) in report.rows {
                    assert!(seen[cell].is_none(), "cell {cell} ran twice");
                    seen[cell] = Some(line);
                }
            }
            let merged: Vec<String> = seen.into_iter().map(Option::unwrap).collect();
            assert_eq!(merged, reference, "strategy {strategy}");
        }
    }

    #[test]
    fn limit_interrupts_and_resume_skips_completed_cells() {
        let scenario = quick_smoke().scaled(0.25);
        let reference = reference_lines(&scenario, 11);
        let dir = tmp("resume");

        // "Kill" the run after 2 cells.
        let mut opts = shard_opts("0/1", &dir);
        opts.limit = Some(2);
        let partial = run_sharded(&scenario, 11, &opts, |_, _| {}).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.executed, 2);

        // Resume: exactly the remaining cells execute, none twice.
        let mut opts = shard_opts("0/1", &dir);
        opts.resume = true;
        let finished = run_sharded(&scenario, 11, &opts, |_, _| {}).unwrap();
        assert!(finished.complete);
        assert_eq!(finished.resumed, 2, "checkpointed cells must be skipped");
        assert_eq!(finished.executed, reference.len() - 2);
        assert_eq!(
            finished
                .rows
                .iter()
                .map(|(_, l)| l.clone())
                .collect::<Vec<_>>(),
            reference,
            "final output must match a clean run"
        );

        // A second resume has nothing left to do.
        let mut opts = shard_opts("0/1", &dir);
        opts.resume = true;
        let idle = run_sharded(&scenario, 11, &opts, |_, _| {}).unwrap();
        assert_eq!(idle.executed, 0);
        assert_eq!(idle.resumed, reference.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rerunning_without_resume_refuses_to_clobber_the_checkpoint() {
        let scenario = quick_smoke().scaled(0.25);
        let dir = tmp("clobber");
        run_sharded(&scenario, 3, &shard_opts("0/1", &dir), |_, _| {}).unwrap();
        assert!(matches!(
            run_sharded(&scenario, 3, &shard_opts("0/1", &dir), |_, _| {}),
            Err(DistError::Mismatch(_))
        ));
        // And resuming under a different seed is caught by the header check.
        let mut opts = shard_opts("0/1", &dir);
        opts.resume = true;
        assert!(matches!(
            run_sharded(&scenario, 4, &opts, |_, _| {}),
            Err(DistError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_out_dir_is_rejected() {
        let scenario = quick_smoke().scaled(0.25);
        let opts = DistOptions {
            resume: true,
            ..DistOptions::default()
        };
        assert!(matches!(
            run_sharded(&scenario, 1, &opts, |_, _| {}),
            Err(DistError::Format(_))
        ));
    }

    #[test]
    fn sharded_adaptive_run_matches_unsharded_adaptive_run() {
        use crate::scenario::Precision;
        let mut scenario = quick_smoke().scaled(0.25);
        scenario.precision = Precision::TargetStderr {
            eps: 1.0,
            min_trials: 2,
            max_trials: 8,
        };
        let reference = reference_lines(&scenario, 13);
        let dir = tmp("adaptive");
        let mut seen: Vec<Option<String>> = vec![None; reference.len()];
        for i in 0..2 {
            let opts = shard_opts(&format!("{i}/2"), &dir);
            let report = run_sharded(&scenario, 13, &opts, |_, _| {}).unwrap();
            assert!(report.complete);
            for (cell, line) in report.rows {
                seen[cell] = Some(line);
            }
        }
        let merged: Vec<String> = seen.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            merged, reference,
            "sharded adaptive rows must be byte-identical to the unsharded adaptive run"
        );
        // The checkpoint merges byte-identically too, and resuming an
        // adaptive run re-executes nothing.
        assert_eq!(
            super::super::merge::merge_dir(&dir).unwrap().lines,
            reference
        );
        let mut opts = shard_opts("0/2", &dir);
        opts.resume = true;
        let idle = run_sharded(&scenario, 13, &opts, |_, _| {}).unwrap();
        assert_eq!(idle.executed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tracing_an_in_process_run_keeps_rows_identical_and_writes_a_journal() {
        let scenario = quick_smoke().scaled(0.25);
        let reference = reference_lines(&scenario, 2009);
        let trace_path =
            std::env::temp_dir().join(format!("meg-coord-trace-{}.json", std::process::id()));
        let opts = DistOptions {
            trace: Some(trace_path.clone()),
            progress: true, // accepted; draws only if stderr is a TTY
            ..DistOptions::default()
        };
        let report = run_sharded(&scenario, 2009, &opts, |_, _| {}).unwrap();
        assert_eq!(
            report
                .rows
                .iter()
                .map(|(_, l)| l.clone())
                .collect::<Vec<_>>(),
            reference,
            "tracing must not change a row byte"
        );
        assert!(report.worker_metrics.is_empty(), "in-process ships nothing");

        let doc = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let cell_spans = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        assert_eq!(cell_spans, reference.len(), "one complete span per cell");
        std::fs::remove_file(&trace_path).unwrap();
    }

    #[test]
    fn ordered_emitter_releases_in_assigned_order() {
        let assigned = [1usize, 4, 7];
        let order = std::cell::RefCell::new(Vec::new());
        let mut e = OrderedEmitter::new(&assigned, |c, _| order.borrow_mut().push(c));
        e.offer(7, "c".into());
        assert!(order.borrow().is_empty(), "7 must wait for 1 and 4");
        e.offer(1, "a".into());
        assert_eq!(*order.borrow(), vec![1]);
        e.offer(4, "b".into());
        assert_eq!(*order.borrow(), vec![1, 4, 7]);
        let rows = e.finish();
        assert_eq!(
            rows.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![1, 4, 7]
        );
    }
}
