//! Baseline comparison for `meg-lab bench --baseline <FILE>` — the
//! regression gate behind every perf PR's "no workload got slower" claim.
//!
//! A baseline is any previously recorded bench document: either the
//! committed `BENCH_PR*.json` trajectory files at the repository root
//! (schema `meg-bench/v1`: an `entries` array keyed by `workload`) or a
//! `meg-lab bench --out` document (a `results` array keyed by `bench`).
//! [`parse_baseline`] accepts both, so CI can gate directly against the
//! last PR's committed numbers without a conversion step.
//!
//! [`compare`] joins a fresh run against the baseline per workload and
//! reports, for each matched name, the median-to-median wall-time ratio
//! (`current / baseline`; above 1 is slower) and whether the checksums
//! agree — a checksum mismatch means the two runs did *different work*, so
//! the ratio next to it is meaningless and the comparison fails regardless
//! of speed. [`render_table`] draws the per-workload table `meg-lab`
//! prints, and [`regressions`] applies the pass/fail threshold.

use crate::bench::BenchResult;
use crate::json::Json;

/// One workload's numbers as recorded in a baseline document.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineEntry {
    /// Workload name (`workload` key in `meg-bench/v1`, `bench` in
    /// `--out` documents).
    pub name: String,
    /// Recorded median wall time, in milliseconds.
    pub median_ms: f64,
    /// Recorded checksum; `None` when the entry carries none (derived or
    /// aggregate entries).
    pub checksum: Option<f64>,
}

/// One row of the baseline comparison: a workload present in both the
/// fresh run and the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct CompareRow {
    /// Workload name.
    pub name: String,
    /// Baseline median, in milliseconds.
    pub baseline_ms: f64,
    /// Fresh-run median, in milliseconds.
    pub current_ms: f64,
    /// `current_ms / baseline_ms` — below 1.0 is a speedup, above is a
    /// slowdown.
    pub ratio: f64,
    /// `Some(true)` when both checksums exist and agree, `Some(false)` on a
    /// mismatch, `None` when the baseline entry recorded no checksum.
    pub checksum_match: Option<bool>,
}

/// Extracts the per-workload entries from a baseline document, accepting
/// both on-disk schemas (see the module docs). Names joinable against
/// [`BenchResult::name`] are whatever the document recorded; entries
/// missing a median are skipped (aggregate/derived sections).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let (list, key) = match (doc.get("entries"), doc.get("results")) {
        (Some(entries), _) => (entries, "workload"),
        (None, Some(results)) => (results, "bench"),
        (None, None) => {
            return Err("baseline document has neither `entries` nor `results`".to_string())
        }
    };
    let arr = list
        .as_arr()
        .ok_or_else(|| format!("baseline `{key}` section is not an array"))?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let name = match item.get(key).and_then(Json::as_str) {
            Some(name) => name.to_string(),
            None => continue,
        };
        let median_ms = match item.get("median_ms").and_then(Json::as_f64) {
            Some(m) if m > 0.0 => m,
            _ => continue,
        };
        out.push(BaselineEntry {
            name,
            median_ms,
            checksum: item.get("checksum").and_then(Json::as_f64),
        });
    }
    if out.is_empty() {
        return Err("baseline document contains no usable workload entries".to_string());
    }
    Ok(out)
}

/// Joins fresh results against baseline entries by workload name, in the
/// order of `results`. Workloads absent from the baseline produce no row
/// (new workloads are not regressions); baseline entries not re-run are
/// likewise ignored.
pub fn compare(results: &[BenchResult], baseline: &[BaselineEntry]) -> Vec<CompareRow> {
    results
        .iter()
        .filter_map(|r| {
            let base = baseline.iter().find(|b| b.name == r.name)?;
            Some(CompareRow {
                name: r.name.clone(),
                baseline_ms: base.median_ms,
                current_ms: r.median_ms,
                ratio: r.median_ms / base.median_ms,
                checksum_match: base.checksum.map(|c| c == r.checksum),
            })
        })
        .collect()
}

/// A row fails the gate when it ran slower than `threshold × baseline`
/// **or** its checksum disagrees with the baseline's (different work —
/// the timing comparison itself is invalid).
pub fn is_regression(row: &CompareRow, threshold: f64) -> bool {
    row.ratio > threshold || row.checksum_match == Some(false)
}

/// The rows of `rows` that fail the gate at `threshold`.
pub fn regressions(rows: &[CompareRow], threshold: f64) -> Vec<CompareRow> {
    rows.iter()
        .filter(|r| is_regression(r, threshold))
        .cloned()
        .collect()
}

/// Renders the comparison as a fixed-width ASCII table (one line per
/// workload, regressions marked), ending with a one-line verdict.
pub fn render_table(rows: &[CompareRow], threshold: f64) -> String {
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(8)
        .max("workload".len());
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>12}  {:>12}  {:>7}  {:>8}\n",
        "workload", "baseline_ms", "current_ms", "ratio", "checksum"
    ));
    for row in rows {
        let checksum = match row.checksum_match {
            Some(true) => "ok",
            Some(false) => "MISMATCH",
            None => "-",
        };
        let mark = if is_regression(row, threshold) {
            "  << REGRESSION"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<name_w$}  {:>12.3}  {:>12.3}  {:>6.3}x  {:>8}{}\n",
            row.name, row.baseline_ms, row.current_ms, row.ratio, checksum, mark
        ));
    }
    let failed = regressions(rows, threshold).len();
    if rows.is_empty() {
        out.push_str("no workloads matched the baseline document\n");
    } else if failed == 0 {
        out.push_str(&format!(
            "all {} workload(s) within {threshold}x of baseline\n",
            rows.len()
        ));
    } else {
        out.push_str(&format!(
            "{failed} of {} workload(s) regressed past {threshold}x\n",
            rows.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, median_ms: f64, checksum: f64) -> BenchResult {
        BenchResult {
            name: name.to_string(),
            params: vec![("n".into(), 64.0)],
            repetitions: 2,
            warmup: 1,
            median_ms,
            iqr_ms: 0.0,
            min_ms: median_ms,
            max_ms: median_ms,
            samples_ms: vec![median_ms, median_ms],
            checksum,
            counters: None,
            spans: None,
        }
    }

    #[test]
    fn parses_the_committed_pr_schema() {
        let text = r#"{
            "schema": "meg-bench/v1",
            "entries": [
                {"workload": "a", "median_ms": 10.0, "checksum": 42},
                {"workload": "b", "median_ms": 5.0},
                {"note": "derived entry without workload key"}
            ]
        }"#;
        let base = parse_baseline(text).unwrap();
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].name, "a");
        assert_eq!(base[0].checksum, Some(42.0));
        assert_eq!(base[1].checksum, None);
    }

    #[test]
    fn parses_the_bench_out_schema() {
        let text = r#"{
            "label": "x", "results": [
                {"bench": "a", "median_ms": 2.5, "checksum": 7}
            ]
        }"#;
        let base = parse_baseline(text).unwrap();
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].name, "a");
        assert_eq!(base[0].median_ms, 2.5);
    }

    #[test]
    fn rejects_unusable_documents() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline(r#"{"entries": []}"#).is_err());
        assert!(parse_baseline(r#"{"entries": [{"workload": "a"}]}"#).is_err());
    }

    #[test]
    fn compare_joins_by_name_and_flags_checksums() {
        let base = vec![
            BaselineEntry {
                name: "a".into(),
                median_ms: 10.0,
                checksum: Some(42.0),
            },
            BaselineEntry {
                name: "b".into(),
                median_ms: 4.0,
                checksum: Some(1.0),
            },
            BaselineEntry {
                name: "unrun".into(),
                median_ms: 1.0,
                checksum: None,
            },
        ];
        let results = vec![
            result("a", 8.0, 42.0),
            result("b", 4.0, 2.0), // checksum mismatch
            result("new_workload", 1.0, 9.0),
        ];
        let rows = compare(&results, &base);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].ratio, 0.8);
        assert_eq!(rows[0].checksum_match, Some(true));
        assert!(!is_regression(&rows[0], 1.25));
        assert_eq!(rows[1].checksum_match, Some(false));
        assert!(
            is_regression(&rows[1], 1.25),
            "checksum mismatch fails the gate even at ratio 1.0"
        );
    }

    #[test]
    fn threshold_separates_noise_from_regression() {
        let base = vec![BaselineEntry {
            name: "a".into(),
            median_ms: 10.0,
            checksum: Some(5.0),
        }];
        let slow = compare(&[result("a", 12.0, 5.0)], &base);
        assert!(!is_regression(&slow[0], 1.25), "1.2x is within a 1.25 gate");
        assert!(is_regression(&slow[0], 1.1), "1.2x fails a 1.1 gate");
        assert_eq!(regressions(&slow, 1.1).len(), 1);
        assert_eq!(regressions(&slow, 1.25).len(), 0);
    }

    #[test]
    fn table_renders_every_row_and_a_verdict() {
        let base = vec![
            BaselineEntry {
                name: "fast_one".into(),
                median_ms: 10.0,
                checksum: Some(5.0),
            },
            BaselineEntry {
                name: "slow_one".into(),
                median_ms: 10.0,
                checksum: Some(6.0),
            },
        ];
        let rows = compare(
            &[result("fast_one", 8.0, 5.0), result("slow_one", 20.0, 6.0)],
            &base,
        );
        let table = render_table(&rows, 1.25);
        assert!(table.contains("fast_one"), "{table}");
        assert!(table.contains("0.800x"), "{table}");
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("1 of 2 workload(s) regressed"), "{table}");
        let clean = render_table(&rows[..1], 1.25);
        assert!(clean.contains("all 1 workload(s) within"), "{clean}");
        let empty = render_table(&[], 1.25);
        assert!(empty.contains("no workloads matched"), "{empty}");
    }

    #[test]
    fn round_trips_against_a_real_out_document() {
        // A `--out` document produced by `results_to_json` must parse as a
        // baseline and compare clean against its own source results.
        let results = vec![result("a", 3.0, 11.0)];
        let doc =
            crate::bench::results_to_json("t", &crate::bench::BenchOptions::default(), &results);
        let base = parse_baseline(&doc.render()).unwrap();
        let rows = compare(&results, &base);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].ratio, 1.0);
        assert_eq!(rows[0].checksum_match, Some(true));
        assert!(regressions(&rows, 1.25).is_empty());
    }
}
