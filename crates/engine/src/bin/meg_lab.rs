//! `meg-lab` — the single entry point for every experiment.
//!
//! ```text
//! meg-lab list                      # built-in scenarios
//! meg-lab show <name>               # print a scenario as JSON
//! meg-lab run <name> [flags]        # run a built-in scenario
//! meg-lab run --file scenario.json  # run a scenario from disk
//!
//! flags:
//!   --seed N              master seed        (default: MEG_SEED or 2009)
//!   --trials N            trials per cell    (default: MEG_TRIALS or scenario)
//!   --scale F             node-count scale   (default: MEG_SCALE or 1)
//!   --format table|json|csv                  (default: MEG_OUTPUT or table)
//! ```

use meg_engine::harness;
use meg_engine::scenario::Scenario;
use meg_engine::sink::OutputFormat;
use meg_engine::{builtin, builtin_names};

const USAGE: &str = "usage:
  meg-lab list
  meg-lab show <name>
  meg-lab run <name | --file scenario.json> \\
          [--seed N] [--trials N] [--scale F] [--format table|json|csv]

Environment defaults: MEG_SEED, MEG_TRIALS, MEG_SCALE, MEG_OUTPUT.
Flags win over the environment.";

fn fail(msg: &str) -> ! {
    eprintln!("meg-lab: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => cmd_show(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown command `{other}`")),
    }
}

fn cmd_list() {
    println!("built-in scenarios:");
    for name in builtin_names() {
        let s = builtin(name).expect("registry is consistent");
        println!(
            "  {name:<20} {} [{} cells × {} trials]",
            s.description,
            s.num_cells(),
            s.trials
        );
    }
}

fn cmd_show(args: &[String]) {
    let Some(name) = args.first() else {
        fail("`show` needs a scenario name");
    };
    match builtin(name) {
        Some(s) => println!("{}", s.to_json().render_pretty()),
        None => fail(&format!(
            "unknown scenario `{name}` (try: {})",
            builtin_names().join(", ")
        )),
    }
}

fn cmd_run(args: &[String]) {
    let mut name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut trials: Option<usize> = None;
    let mut scale: Option<f64> = None;
    let mut format: Option<OutputFormat> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |what: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("`{what}` needs a value")),
            }
        };
        match arg.as_str() {
            "--file" => file = Some(flag_value("--file")),
            "--seed" => {
                seed = Some(
                    flag_value("--seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--seed must be a u64")),
                )
            }
            "--trials" => {
                trials = Some(
                    flag_value("--trials")
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| fail("--trials must be a positive integer")),
                )
            }
            "--scale" => {
                scale = Some(
                    flag_value("--scale")
                        .parse::<f64>()
                        .ok()
                        .filter(|&f| f > 0.0)
                        .unwrap_or_else(|| fail("--scale must be a positive number")),
                )
            }
            "--format" => {
                format = Some(
                    flag_value("--format")
                        .parse()
                        .unwrap_or_else(|e: String| fail(&e)),
                )
            }
            other if other.starts_with('-') => fail(&format!("unknown flag `{other}`")),
            other if name.is_none() => name = Some(other.to_string()),
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }

    let pristine = match (&name, &file) {
        (Some(_), Some(_)) => fail("pass either a scenario name or --file, not both"),
        (None, None) => fail("`run` needs a scenario name or --file"),
        (Some(n), None) => builtin(n).unwrap_or_else(|| {
            fail(&format!(
                "unknown scenario `{n}` (try: {})",
                builtin_names().join(", ")
            ))
        }),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read `{path}`: {e}")));
            Scenario::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse `{path}`: {e}")))
        }
    };

    // Environment first, explicit flags last: --scale replaces the env
    // factor (scaling is not composable — it always starts from the pristine
    // definition), --trials wins over MEG_TRIALS.
    let mut scenario = match scale {
        Some(f) => pristine.scaled(f),
        None => pristine.scaled(harness::scale_from_env()),
    };
    if let Some(t) = trials.or_else(harness::trials_from_env) {
        scenario.trials = t;
    }
    let seed = seed.unwrap_or_else(harness::master_seed_from_env);
    let format = format.unwrap_or_else(meg_engine::sink::format_from_env);

    match harness::run_and_emit(&scenario, seed, format) {
        Ok(rows) => {
            if format == OutputFormat::Table {
                println!(
                    "\n{} cells, seed {seed}; rerun any cell in isolation with the `seed` \
                     column of its row.",
                    rows.len()
                );
            }
        }
        Err(e) => fail(&format!("scenario failed: {e}")),
    }
}
