//! `meg-lab` — the single entry point for every experiment.
//!
//! ```text
//! meg-lab list                      # built-in scenarios
//! meg-lab show <name>               # print a scenario as JSON
//! meg-lab run <name> [flags]        # run a built-in scenario
//! meg-lab run --file scenario.json  # run a scenario from disk
//! meg-lab worker [--fail-after N]   # cell-execution server (stdin/stdout)
//! meg-lab merge <dir> [--format F]  # merge *.part.jsonl checkpoints
//! meg-lab bench [names…] [flags]    # wall-time measurement harness
//!
//! bench flags:
//!   --list                list the registered workloads
//!   --repetitions R       measured repetitions        (default 5)
//!   --warmup W            untimed warm-up repetitions (default 2)
//!   --scale F             node-count multiplier       (default 1)
//!   --label STR           label recorded in the JSON document
//!   --out FILE            also write the full JSON document to FILE
//!   --counters            run one extra untimed repetition per workload with
//!                         the meg-obs recorder installed and record its
//!                         counter deltas in the JSON (timed reps stay
//!                         metrics-off)
//!   --overhead            A/B-time each workload metrics-off vs metrics-on
//!                         and print the ratio (the ≤ 5% guard in ci.sh)
//!   --baseline FILE       after the run, compare each workload's median
//!                         against FILE (a committed BENCH_PR*.json or a
//!                         previous --out document), print the per-workload
//!                         ratio table on stderr, and exit 4 if any workload
//!                         ran slower than threshold × baseline or its
//!                         checksum diverged
//!   --baseline-threshold F
//!                         regression gate for --baseline (default 1.25)
//!
//! run flags:
//!   --seed N              master seed        (default: MEG_SEED or 2009)
//!   --trials N            trials per cell    (default: MEG_TRIALS or scenario)
//!   --scale F             node-count scale   (default: MEG_SCALE or 1)
//!   --format table|json|csv                  (default: MEG_OUTPUT or table)
//!   --stepping per_pair|transitions
//!                         override the chain stepping mode of every edge
//!                         substrate (default: whatever the scenario declares;
//!                         `transitions` is the sub-linear fast path)
//!   --metrics report|jsonl
//!                         install the meg-obs recorder and emit counters,
//!                         gauges, and span timings to stderr after the run
//!                         (default: MEG_METRICS or off); row output on
//!                         stdout is byte-identical either way. Under
//!                         --workers K the workers ship their own counters
//!                         back and the summary reports the merged view with
//!                         per-worker subtotals
//!   --trace FILE          record per-cell lifecycle events (dispatch,
//!                         respawns, retries, adaptive doubling) and write
//!                         them to FILE as Chrome trace-event JSON, viewable
//!                         in Perfetto (one timeline lane per worker)
//!   --progress            throttled single-line status on stderr (cells
//!                         done/total, rows/s, per-worker throughput,
//!                         respawns, ETA); auto-disabled when stderr is not
//!                         a TTY (MEG_PROGRESS_FORCE=1 overrides)
//!   --verbose             narrate worker fault events (deaths, respawns,
//!                         retries) on stderr, prefixed with monotonic
//!                         elapsed milliseconds and the cell index
//!
//! adaptive-precision run flags:
//!   --target-stderr EPS   grow each cell's trials until the standard error
//!                         of its observable is ≤ EPS (0 = spend the budget)
//!   --min-trials N        trials before the first check  (default: --trials)
//!   --max-trials N        per-cell budget                (default: 32 × min)
//!
//! distributed run flags (see the `meg_engine::dist` docs):
//!   --shard i/m           run only shard i of an m-way split
//!   --strategy contiguous|round_robin        (default: contiguous)
//!   --workers K           dispatch cells to K worker subprocesses
//!   --out DIR             checkpoint completed rows to DIR/*.part.jsonl
//!   --resume DIR          skip cells already checkpointed in DIR
//!   --limit N             stop after N new cells (checkpoint stays valid)
//!   --worker-fail-after N fault injection: workers abort after N cells
//! ```

use meg_engine::dist::{merge_dir, run_sharded, worker, DistOptions, ShardSpec, ShardStrategy};
use meg_engine::harness::{self, MetricsMode};
use meg_engine::run::Row;
use meg_engine::scenario::{Scenario, SteppingKind, Substrate};
use meg_engine::sink::{row_to_csv, rows_to_table, OutputFormat, CSV_HEADER};
use meg_engine::{builtin, builtin_names, Json};
use std::path::PathBuf;

const USAGE: &str = "usage:
  meg-lab list
  meg-lab show <name>
  meg-lab run <name | --file scenario.json> \\
          [--seed N] [--trials N] [--scale F] [--format table|json|csv] \\
          [--stepping per_pair|transitions] [--metrics report|jsonl] \\
          [--target-stderr EPS] [--min-trials N] [--max-trials N] \\
          [--shard i/m] [--strategy contiguous|round_robin] [--workers K] \\
          [--out DIR] [--resume DIR] [--limit N] [--worker-fail-after N] \\
          [--trace FILE] [--progress] [--verbose]
  meg-lab worker [--fail-after N]
  meg-lab merge <dir> [--format table|json|csv]
  meg-lab bench [names…] [--list] [--repetitions R] [--warmup W] \\
          [--scale F] [--label STR] [--out FILE] [--counters] [--overhead] \\
          [--baseline FILE] [--baseline-threshold F]

Environment defaults: MEG_SEED, MEG_TRIALS, MEG_SCALE, MEG_OUTPUT,
MEG_METRICS. Flags win over the environment.";

fn fail(msg: &str) -> ! {
    eprintln!("meg-lab: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => cmd_show(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown command `{other}`")),
    }
}

fn cmd_list() {
    println!("built-in scenarios:");
    for name in builtin_names() {
        let s = builtin(name).expect("registry is consistent");
        println!(
            "  {name:<20} {} [{} cells × {} trials]",
            s.description,
            s.num_cells(),
            s.trials
        );
    }
}

fn cmd_show(args: &[String]) {
    let Some(name) = args.first() else {
        fail("`show` needs a scenario name");
    };
    match builtin(name) {
        Some(s) => println!("{}", s.to_json().render_pretty()),
        None => fail(&format!(
            "unknown scenario `{name}` (try: {})",
            builtin_names().join(", ")
        )),
    }
}

fn parse_row(line: &str) -> Row {
    let json = Json::parse(line).unwrap_or_else(|e| fail(&format!("bad row line: {e}")));
    Row::from_json(&json).unwrap_or_else(|e| fail(&format!("bad row line: {e}")))
}

/// Absolute form of `path` with `.` and `..` components resolved lexically
/// (no filesystem access, so it works for directories that don't exist yet).
fn normalized(path: &PathBuf) -> PathBuf {
    use std::path::Component;
    let absolute = if path.is_absolute() {
        path.clone()
    } else {
        std::env::current_dir().unwrap_or_default().join(path)
    };
    let mut out = PathBuf::new();
    for component in absolute.components() {
        match component {
            Component::CurDir => {}
            Component::ParentDir => {
                out.pop();
            }
            other => out.push(other),
        }
    }
    out
}

fn cmd_run(args: &[String]) {
    let mut name: Option<String> = None;
    let mut file: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut trials: Option<usize> = None;
    let mut scale: Option<f64> = None;
    let mut stepping: Option<SteppingKind> = None;
    let mut format: Option<OutputFormat> = None;
    let mut target_stderr: Option<f64> = None;
    let mut min_trials: Option<usize> = None;
    let mut max_trials: Option<usize> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut strategy: Option<ShardStrategy> = None;
    let mut workers: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut limit: Option<usize> = None;
    let mut worker_fail_after: Option<usize> = None;
    let mut metrics: Option<MetricsMode> = None;
    let mut trace: Option<PathBuf> = None;
    let mut progress = false;
    let mut verbose = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |what: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("`{what}` needs a value")),
            }
        };
        match arg.as_str() {
            "--file" => file = Some(flag_value("--file")),
            "--seed" => {
                seed = Some(
                    flag_value("--seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--seed must be a u64")),
                )
            }
            "--trials" => {
                trials = Some(
                    flag_value("--trials")
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| fail("--trials must be a positive integer")),
                )
            }
            "--scale" => {
                scale = Some(
                    flag_value("--scale")
                        .parse::<f64>()
                        .ok()
                        .filter(|&f| f > 0.0)
                        .unwrap_or_else(|| fail("--scale must be a positive number")),
                )
            }
            "--stepping" => {
                stepping = Some(
                    SteppingKind::from_id(&flag_value("--stepping"))
                        .unwrap_or_else(|_| fail("--stepping must be per_pair or transitions")),
                )
            }
            "--format" => {
                format = Some(
                    flag_value("--format")
                        .parse()
                        .unwrap_or_else(|e: String| fail(&e)),
                )
            }
            "--target-stderr" => {
                target_stderr = Some(
                    flag_value("--target-stderr")
                        .parse::<f64>()
                        .ok()
                        .filter(|e| *e >= 0.0 && e.is_finite())
                        .unwrap_or_else(|| fail("--target-stderr must be a finite number ≥ 0")),
                )
            }
            "--min-trials" => {
                min_trials = Some(
                    flag_value("--min-trials")
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| fail("--min-trials must be a positive integer")),
                )
            }
            "--max-trials" => {
                max_trials = Some(
                    flag_value("--max-trials")
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .unwrap_or_else(|| fail("--max-trials must be a positive integer")),
                )
            }
            "--shard" => {
                shard = Some(ShardSpec::parse(&flag_value("--shard")).unwrap_or_else(|e| fail(&e)))
            }
            "--strategy" => {
                strategy = Some(
                    flag_value("--strategy")
                        .parse()
                        .unwrap_or_else(|e: String| fail(&e)),
                )
            }
            "--workers" => {
                workers = Some(
                    flag_value("--workers")
                        .parse::<usize>()
                        .unwrap_or_else(|_| fail("--workers must be a non-negative integer")),
                )
            }
            "--out" => out_dir = Some(PathBuf::from(flag_value("--out"))),
            "--resume" => resume_dir = Some(PathBuf::from(flag_value("--resume"))),
            "--limit" => {
                limit = Some(
                    flag_value("--limit")
                        .parse::<usize>()
                        .unwrap_or_else(|_| fail("--limit must be a non-negative integer")),
                )
            }
            "--worker-fail-after" => {
                worker_fail_after = Some(
                    flag_value("--worker-fail-after")
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| fail("--worker-fail-after must be ≥ 1")),
                )
            }
            "--metrics" => {
                metrics = Some(
                    flag_value("--metrics")
                        .parse()
                        .unwrap_or_else(|e: String| fail(&e)),
                )
            }
            "--trace" => trace = Some(PathBuf::from(flag_value("--trace"))),
            "--progress" => progress = true,
            "--verbose" => verbose = true,
            other if other.starts_with('-') => fail(&format!("unknown flag `{other}`")),
            other if name.is_none() => name = Some(other.to_string()),
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }

    let pristine = match (&name, &file) {
        (Some(_), Some(_)) => fail("pass either a scenario name or --file, not both"),
        (None, None) => fail("`run` needs a scenario name or --file"),
        (Some(n), None) => builtin(n).unwrap_or_else(|| {
            fail(&format!(
                "unknown scenario `{n}` (try: {})",
                builtin_names().join(", ")
            ))
        }),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read `{path}`: {e}")));
            Scenario::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse `{path}`: {e}")))
        }
    };

    // Environment first, explicit flags last: --scale replaces the env
    // factor (scaling is not composable — it always starts from the pristine
    // definition), --trials wins over MEG_TRIALS.
    let mut scenario = match scale {
        Some(f) => pristine.scaled(f),
        None => pristine.scaled(harness::scale_from_env()),
    };
    if let Some(t) = trials.or_else(harness::trials_from_env) {
        scenario.trials = t;
    }
    if let Some(mode) = stepping {
        // The flag overrides every edge substrate; other families have no
        // stepping knob, so the flag is inert for them by design.
        for sub in &mut scenario.substrates {
            if let Substrate::Edge { stepping, .. } = sub {
                *stepping = mode;
            }
        }
    }
    match target_stderr.or_else(harness::target_stderr_from_env) {
        Some(eps) => {
            scenario.precision = harness::resolve_target_stderr(
                eps,
                min_trials.or_else(harness::min_trials_from_env),
                max_trials.or_else(harness::max_trials_from_env),
                scenario.trials,
            )
            .unwrap_or_else(|e| fail(&e));
        }
        None if min_trials.is_some() || max_trials.is_some() => {
            fail("--min-trials/--max-trials shape the adaptive budget; pass --target-stderr EPS")
        }
        None => {}
    }
    let seed = seed.unwrap_or_else(harness::master_seed_from_env);
    let format = format.unwrap_or_else(meg_engine::sink::format_from_env);
    let metrics = metrics.or_else(harness::metrics_from_env);

    let distributed = shard.is_some()
        || strategy.is_some()
        || workers.is_some()
        || out_dir.is_some()
        || resume_dir.is_some()
        || limit.is_some()
        || worker_fail_after.is_some()
        || trace.is_some()
        || progress;
    if !distributed {
        // Single-process, no checkpointing: the original streaming path.
        match harness::run_and_emit_observed(&scenario, seed, format, metrics) {
            Ok(rows) => {
                if format == OutputFormat::Table {
                    println!(
                        "\n{} cells, seed {seed}; rerun any cell in isolation with the `seed` \
                         column of its row.",
                        rows.len()
                    );
                }
            }
            Err(e) => fail(&format!("scenario failed: {e}")),
        }
        return;
    }

    // Distributed path: shard, checkpoint, and/or worker subprocesses.
    if let (Some(out), Some(res)) = (&out_dir, &resume_dir) {
        // Compare lexically-normalized absolute paths so equivalent
        // spellings (`--out ./x --resume x`) are accepted even before the
        // directory exists; symlink aliasing is out of scope.
        if normalized(out) != normalized(res) {
            fail("--out and --resume point at different directories");
        }
    }
    if worker_fail_after.is_some() && workers.unwrap_or(0) == 0 {
        fail("--worker-fail-after only injects faults into a worker pool; pass --workers K ≥ 1");
    }
    if limit.is_some() && out_dir.is_none() && resume_dir.is_none() {
        // Without a checkpoint the partial work would simply be lost.
        fail("--limit stops a run early; pass --out DIR so the completed cells are checkpointed");
    }
    let resume = resume_dir.is_some();
    let mut shard = shard.unwrap_or_else(ShardSpec::full);
    if let Some(s) = strategy {
        shard.strategy = s;
    }
    let opts = DistOptions {
        shard,
        workers: workers.unwrap_or(0),
        out_dir: resume_dir.or(out_dir),
        resume,
        limit,
        worker_cmd: None,
        worker_fail_after,
        max_retries: 3,
        verbose,
        // Workers ship their counters back whenever a metrics sink wants
        // them; without one the extra protocol lines would be dead weight.
        ship_metrics: metrics.is_some() && workers.unwrap_or(0) > 0,
        trace,
        progress,
    };

    if format == OutputFormat::Csv {
        println!("{CSV_HEADER}");
    }
    if metrics.is_some() {
        meg_engine::obs::install();
    }
    let mut prev = meg_engine::obs::snapshot();
    let mut table_rows: Vec<Row> = Vec::new();
    let report = run_sharded(&scenario, seed, &opts, |cell, line| {
        match format {
            OutputFormat::Json => println!("{line}"),
            OutputFormat::Csv => println!("{}", row_to_csv(&parse_row(line))),
            OutputFormat::Table => table_rows.push(parse_row(line)),
        }
        if let Some(mode) = metrics {
            harness::emit_cell_metrics(mode, cell, &mut prev);
        }
    })
    .unwrap_or_else(|e| fail(&format!("sharded run failed: {e}")));
    if let Some(mode) = metrics {
        harness::emit_metrics_summary_merged(mode, &report.worker_metrics);
    }

    if format == OutputFormat::Table {
        let caption = format!(
            "{}: {} (seed {seed}, shard {})",
            scenario.name, scenario.description, opts.shard
        );
        print!("{}", rows_to_table(&caption, &table_rows).render_ascii());
        println!(
            "\nshard {}: {} of {} cell(s) emitted ({} executed, {} resumed).",
            opts.shard,
            report.rows.len(),
            report.assigned,
            report.executed,
            report.resumed
        );
    }
    if !report.complete {
        let remaining = report.assigned - report.rows.len();
        eprintln!(
            "meg-lab: --limit reached with {remaining} cell(s) outstanding; \
             finish with `meg-lab run … --resume <dir>`"
        );
        std::process::exit(3);
    }
}

fn cmd_bench(args: &[String]) {
    use meg_engine::bench::{
        bench_names, results_to_json, run_bench, run_bench_with_counters, run_overhead,
        BenchOptions,
    };

    let mut opts = BenchOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut label = String::from("meg-lab bench");
    let mut out: Option<PathBuf> = None;
    let mut list = false;
    let mut counters = false;
    let mut overhead = false;
    let mut baseline: Option<PathBuf> = None;
    let mut baseline_threshold = 1.25f64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |what: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => fail(&format!("`{what}` needs a value")),
            }
        };
        match arg.as_str() {
            "--list" => list = true,
            "--repetitions" => {
                opts.repetitions = flag_value("--repetitions")
                    .parse::<usize>()
                    .ok()
                    .filter(|&r| r >= 1)
                    .unwrap_or_else(|| fail("--repetitions must be a positive integer"));
            }
            "--warmup" => {
                opts.warmup = flag_value("--warmup")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("--warmup must be a non-negative integer"));
            }
            "--scale" => {
                opts.scale = flag_value("--scale")
                    .parse::<f64>()
                    .ok()
                    .filter(|&f| f > 0.0)
                    .unwrap_or_else(|| fail("--scale must be a positive number"));
            }
            "--label" => label = flag_value("--label"),
            "--out" => out = Some(PathBuf::from(flag_value("--out"))),
            "--counters" => counters = true,
            "--overhead" => overhead = true,
            "--baseline" => baseline = Some(PathBuf::from(flag_value("--baseline"))),
            "--baseline-threshold" => {
                baseline_threshold = flag_value("--baseline-threshold")
                    .parse::<f64>()
                    .ok()
                    .filter(|&f| f > 0.0)
                    .unwrap_or_else(|| fail("--baseline-threshold must be a positive number"));
            }
            other if other.starts_with('-') => fail(&format!("unknown bench flag `{other}`")),
            other => names.push(other.to_string()),
        }
    }

    if list {
        println!("registered bench workloads:");
        for name in bench_names() {
            println!("  {name}");
        }
        return;
    }
    let names: Vec<String> = if names.is_empty() {
        bench_names().into_iter().map(String::from).collect()
    } else {
        names
    };

    if overhead && baseline.is_some() {
        fail("--baseline compares timed results; it cannot be combined with --overhead");
    }
    if overhead {
        // A/B mode: each workload timed metrics-off then metrics-on under
        // identical options; the ratio is the instrumentation overhead.
        let measurements: Vec<_> = names
            .iter()
            .map(|name| {
                let m = run_overhead(name, &opts).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown bench `{name}` (try: {})",
                        bench_names().join(", ")
                    ))
                });
                println!("{}", m.to_json().render());
                m
            })
            .collect();
        if let Some(path) = out {
            let doc = meg_engine::Json::obj([
                ("label", meg_engine::Json::Str(label)),
                (
                    "harness",
                    meg_engine::Json::Str("meg-lab bench --overhead".to_string()),
                ),
                (
                    "overhead",
                    meg_engine::Json::Arr(measurements.iter().map(|m| m.to_json()).collect()),
                ),
            ]);
            std::fs::write(&path, doc.render_pretty() + "\n")
                .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
            eprintln!(
                "meg-lab bench: wrote {} overhead measurement(s) to {}",
                measurements.len(),
                path.display()
            );
        }
        return;
    }

    let mut results = Vec::with_capacity(names.len());
    for name in &names {
        let runner = if counters {
            run_bench_with_counters
        } else {
            run_bench
        };
        let r = runner(name, &opts).unwrap_or_else(|| {
            fail(&format!(
                "unknown bench `{name}` (try: {})",
                bench_names().join(", ")
            ))
        });
        println!("{}", r.to_json().render());
        results.push(r);
    }
    let doc = results_to_json(&label, &opts, &results);
    if let Some(path) = out {
        std::fs::write(&path, doc.render_pretty() + "\n")
            .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
        eprintln!(
            "meg-lab bench: wrote {} result(s) to {}",
            results.len(),
            path.display()
        );
    }

    if let Some(path) = baseline {
        use meg_engine::bench_baseline::{compare, parse_baseline, regressions, render_table};
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline `{}`: {e}", path.display())));
        let base = parse_baseline(&text)
            .unwrap_or_else(|e| fail(&format!("baseline `{}`: {e}", path.display())));
        let rows = compare(&results, &base);
        eprint!(
            "\nbaseline comparison against {} (threshold {baseline_threshold}x):\n{}",
            path.display(),
            render_table(&rows, baseline_threshold)
        );
        if !regressions(&rows, baseline_threshold).is_empty() {
            std::process::exit(4);
        }
    }
}

fn cmd_worker(args: &[String]) {
    let mut fail_after: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fail-after" => {
                fail_after = Some(
                    it.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| fail("--fail-after must be a positive integer")),
                )
            }
            other => fail(&format!("unknown worker flag `{other}`")),
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = worker::serve(stdin.lock(), stdout.lock(), fail_after) {
        eprintln!("meg-lab worker: {e}");
        std::process::exit(2);
    }
}

fn cmd_merge(args: &[String]) {
    let mut dir: Option<PathBuf> = None;
    let mut format = OutputFormat::Json;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--format must be table|json|csv"))
            }
            other if other.starts_with('-') => fail(&format!("unknown merge flag `{other}`")),
            other if dir.is_none() => dir = Some(PathBuf::from(other)),
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(dir) = dir else {
        fail("`merge` needs a directory of *.part.jsonl files");
    };
    let merged = merge_dir(&dir).unwrap_or_else(|e| fail(&format!("merge failed: {e}")));
    match format {
        OutputFormat::Json => {
            for line in &merged.lines {
                println!("{line}");
            }
        }
        OutputFormat::Csv => {
            println!("{CSV_HEADER}");
            for line in &merged.lines {
                println!("{}", row_to_csv(&parse_row(line)));
            }
        }
        OutputFormat::Table => {
            let rows: Vec<Row> = merged.lines.iter().map(|l| parse_row(l)).collect();
            let caption = format!(
                "{} (merged, seed {})",
                merged.header.scenario, merged.header.master_seed
            );
            print!("{}", rows_to_table(&caption, &rows).render_ascii());
        }
    }
    eprintln!(
        "meg-lab: merged {} row(s) from {} part file(s){}",
        merged.lines.len(),
        merged.parts,
        if merged.duplicates > 0 {
            format!(" ({} duplicate(s) dropped)", merged.duplicates)
        } else {
            String::new()
        }
    );
}
