//! Minimal JSON value type, writer, and parser.
//!
//! The workspace builds fully offline and the vendored `serde` shim is
//! marker-traits only (no serialization format), so the scenario engine
//! carries its own small JSON layer: enough to serialize [`Scenario`]s and
//! result rows, and to parse scenario files back. When the real serde +
//! serde_json return (registry access), scenario types already carry the
//! derive markers and this module can shrink to a compatibility veneer.
//!
//! [`Scenario`]: crate::scenario::Scenario
//!
//! Numbers are stored as `f64` (like JavaScript); `u64` values above 2⁵³
//! (e.g. raw seeds) must be transported as strings, which is what the engine
//! does for its `seed` row field.

use std::fmt;

/// A JSON value. Objects preserve insertion order (deterministic output).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`]: a message plus the byte offset it
/// refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value rounded to `usize`, if this is a non-negative number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as indented multi-line JSON.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-round-trip float formatting; valid JSON
                    // (exponent forms like `1e300` are legal number tokens).
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (exactly one value plus surrounding
    /// whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-12.75),
            Json::Num(1e300),
            Json::Num(3.0 * (1000f64).ln() / 1000.0),
            Json::Str("he\"ll\\o\nworld — ünïcode".into()),
        ] {
            let text = v.render();
            assert_eq!(Json::parse(&text).unwrap(), v, "failed on {text}");
        }
    }

    #[test]
    fn renders_and_reparses_nested_structures() {
        let v = Json::obj([
            ("name", Json::Str("edge_vs_n".into())),
            (
                "axes",
                Json::Arr(vec![
                    Json::obj([
                        ("param", Json::Str("n".into())),
                        (
                            "values",
                            Json::Arr(vec![Json::Num(1000.0), Json::Num(2000.0)]),
                        ),
                    ]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
            ("trials", Json::Num(5.0)),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1, true], "d": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(
            v.get("c").unwrap().as_arr().unwrap()[1].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[1 2]",
            "nul",
            "--3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""éA""#).unwrap(), Json::Str("éA".into()));
        // surrogate pair for 𝄞 (U+1D11E), both literal and escaped
        assert_eq!(Json::parse(r#""𝄞""#).unwrap(), Json::Str("𝄞".into()));
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("𝄞".into())
        );
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        // lone high surrogate, and high surrogate followed by a
        // non-low-surrogate escape (a clean error, not an arithmetic overflow)
        assert!(Json::parse(r#""\ud834""#).is_err());
        assert!(Json::parse(r#""\ud834\u0041""#).is_err());
        assert!(Json::parse(r#""\ud800\ud800""#).is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn float_round_trip_is_exact() {
        let mut x = 0.1f64;
        for _ in 0..50 {
            x = x * 3.7 + 0.000123;
            let text = Json::Num(x).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "drift on {text}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
