//! `meg-lab bench` — the workspace's trustworthy wall-time measurement
//! harness.
//!
//! The vendored criterion shim only smoke-runs benches with tiny fixed
//! iteration counts, so its numbers cannot be trusted for perf work. This
//! module is the replacement the ROADMAP gates hot-path optimisation on:
//! a small registry of **named benchmark workloads** (each a deterministic,
//! seeded end-to-end run over the real substrates), timed with warm-up
//! repetitions followed by `R` measured repetitions, and summarised as
//! **median / IQR / min** wall time so one noisy repetition cannot skew a
//! reported speedup.
//!
//! Results render as machine-readable JSON (see [`results_to_json`]); the
//! committed `BENCH_PR5.json` at the repository root records the
//! pre/post-refactor trajectory of the allocation-free snapshot pipeline and
//! is the template every future perf PR extends. `BENCH_PR6.json` records
//! the stepping A/B pairs (`edge_*_flood_n*` vs `edge_*_flood_fast_n*`):
//! equal parameters and seeds, per-pair vs transitions stepping, interleaved
//! runs. Every workload returns a
//! `checksum` folded from its observable output; it is recorded in the JSON
//! so (a) the optimiser cannot dead-code-eliminate the work and (b) two
//! harness runs on the same code can be spot-checked for identical behaviour.
//!
//! ## Example
//!
//! ```
//! use meg_engine::bench::{run_bench, BenchOptions};
//!
//! let opts = BenchOptions {
//!     repetitions: 2,
//!     warmup: 1,
//!     scale: 0.02, // doc-test sized; real runs use scale 1.0
//! };
//! let result = run_bench("geo_flood_n4096", &opts).unwrap();
//! assert_eq!(result.repetitions, 2);
//! assert!(result.median_ms >= 0.0);
//! assert!(result.checksum > 0.0);
//! ```

use crate::json::Json;
use meg_core::evolving::{EvolvingGraph, InitialDistribution, Stepping};
use meg_core::flooding::flood;
use meg_core::protocols::push_pull_gossip;
use meg_core::spec;
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_graph::Graph;
use meg_obs as obs;
use meg_stats::quantile::quantile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Fixed seed for every workload: benches must measure the same work on
/// every invocation, on every machine, pre- and post-optimisation.
const BENCH_SEED: u64 = 0x4D45_475F_5035; // "MEG_P5"

/// Options shared by every benchmark workload.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Measured repetitions (the statistics are computed over these).
    pub repetitions: usize,
    /// Untimed warm-up repetitions run first (cache / branch-predictor /
    /// page-table warm-up). Note that every repetition constructs fresh
    /// models, so each *measured* repetition still includes the models' own
    /// buffer-capacity warm-up — deliberately: the workloads time the
    /// end-to-end trial cost the engine actually pays, identically for every
    /// code version being compared.
    pub warmup: usize,
    /// Node-count multiplier applied to each workload's canonical `n`.
    pub scale: f64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            repetitions: 5,
            warmup: 2,
            scale: 1.0,
        }
    }
}

/// Measured wall-time statistics of one named workload.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Workload name (from [`bench_names`]).
    pub name: String,
    /// Resolved workload parameters (`n` after scaling, etc.).
    pub params: Vec<(String, f64)>,
    /// Measured repetitions.
    pub repetitions: usize,
    /// Warm-up repetitions that ran before measurement.
    pub warmup: usize,
    /// Median wall time over the measured repetitions, in milliseconds.
    pub median_ms: f64,
    /// Interquartile range (Q3 − Q1) of the wall times, in milliseconds.
    pub iqr_ms: f64,
    /// Minimum wall time, in milliseconds.
    pub min_ms: f64,
    /// Maximum wall time, in milliseconds.
    pub max_ms: f64,
    /// Every measured repetition's wall time, in milliseconds, in run order
    /// (the raw samples behind the summary statistics — lets a later reader
    /// recompute any quantile or spot a drifting machine).
    pub samples_ms: Vec<f64>,
    /// Checksum folded from the workload's observable output (anti-DCE and
    /// a cheap behavioural fingerprint; identical across runs of the same
    /// code at the same scale).
    pub checksum: f64,
    /// `meg-obs` counter deltas from one extra **untimed** instrumented
    /// repetition (`--counters`); `None` when the repetition was not run.
    /// Never populated from the timed repetitions — the recorder stays off
    /// while the clock runs.
    pub counters: Option<Vec<(String, u64)>>,
    /// Span statistics (count, total, p50/p90/p99 from the log2 latency
    /// histogram) of the same instrumented repetition; spans that recorded
    /// nothing are omitted. `None` without `--counters`.
    pub spans: Option<Vec<meg_obs::SpanStats>>,
}

impl BenchResult {
    /// Renders the result as one JSON object. The `counters` key is present
    /// only when the instrumented repetition ran, keeping the document
    /// byte-compatible with pre-observability consumers.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("bench".to_string(), Json::Str(self.name.clone())),
            (
                "params".to_string(),
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "repetitions".to_string(),
                Json::Num(self.repetitions as f64),
            ),
            ("warmup".to_string(), Json::Num(self.warmup as f64)),
            ("median_ms".to_string(), Json::Num(self.median_ms)),
            ("iqr_ms".to_string(), Json::Num(self.iqr_ms)),
            ("min_ms".to_string(), Json::Num(self.min_ms)),
            ("max_ms".to_string(), Json::Num(self.max_ms)),
            (
                "samples_ms".to_string(),
                Json::Arr(self.samples_ms.iter().map(|&t| Json::Num(t)).collect()),
            ),
            ("checksum".to_string(), Json::Num(self.checksum)),
        ];
        if let Some(counters) = &self.counters {
            fields.push((
                "counters".to_string(),
                Json::Obj(
                    counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ));
        }
        if let Some(spans) = &self.spans {
            fields.push((
                "spans".to_string(),
                Json::Obj(
                    spans
                        .iter()
                        .map(|s| {
                            (
                                s.name.to_string(),
                                Json::obj([
                                    ("count", Json::Num(s.count as f64)),
                                    ("total_ms", Json::Num(s.total_ms())),
                                    ("p50_ms", Json::Num(s.p50_ms())),
                                    ("p90_ms", Json::Num(s.p90_ms())),
                                    ("p99_ms", Json::Num(s.p99_ms())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

/// Renders a labelled harness run (label + options + every result) as the
/// JSON document `meg-lab bench --out` writes.
pub fn results_to_json(label: &str, opts: &BenchOptions, results: &[BenchResult]) -> Json {
    Json::obj([
        ("label", Json::Str(label.to_string())),
        ("harness", Json::Str("meg-lab bench".to_string())),
        ("repetitions", Json::Num(opts.repetitions as f64)),
        ("warmup", Json::Num(opts.warmup as f64)),
        ("scale", Json::Num(opts.scale)),
        (
            "results",
            Json::Arr(results.iter().map(BenchResult::to_json).collect()),
        ),
    ])
}

/// Names of all benchmark workloads, in registry order.
pub fn bench_names() -> Vec<&'static str> {
    vec![
        "geo_flood_n4096",
        "geo_snapshots_n4096",
        "geo_flood_torus_n2048",
        "edge_sparse_flood_n16384",
        "edge_dense_flood_n1024",
        "edge_dense_snapshots_n2048",
        "push_pull_geo_n2048",
        "edge_dense_flood_n4096",
        "edge_dense_flood_fast_n4096",
        "edge_sparse_flood_n65536",
        "edge_sparse_flood_fast_n65536",
    ]
}

fn scaled_n(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(16)
}

/// Trials and sequential floods per trial of the dense stepping A/B pair.
const DENSE_AB_TRIALS: u64 = 3;
const DENSE_AB_FLOODS: usize = 8;

/// Shared body of the dense stepping A/B pair: identical parameters and
/// seeds, the stepping mode is the *only* difference between the two
/// workload names, so `median(A)/median(B)` is the fast path's speedup.
///
/// Each trial builds one long-lived MEG and floods it from several sources
/// in sequence (the chain keeps evolving across floods). A single flood
/// completes in a handful of rounds, so the one-off `O(C(n,2))` stationary
/// initialisation — identical work in both modes — would otherwise dominate
/// the measurement and mask the per-round stepping difference the pair
/// exists to expose.
///
/// `q = 0.1` keeps the stationary density at `p̂` while thinning the flip
/// calendar (expected flips/round scale with `2p̂q`): the regime the
/// transitions path is built for, and the one the flooding scenarios above
/// threshold actually sit in — slowly-churning sparse graphs.
fn dense_flood_ab(n: usize, stepping: Stepping) -> (Vec<(String, f64)>, f64) {
    let p_hat = (4.0 * (n as f64).ln() / n as f64).min(0.9);
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.1);
    let mut sum = 0.0;
    for i in 0..DENSE_AB_TRIALS {
        let mut meg = DenseEdgeMeg::with_stepping(
            params,
            InitialDistribution::Stationary,
            stepping,
            BENCH_SEED + i,
        );
        for f in 0..DENSE_AB_FLOODS {
            let source = (f * n / DENSE_AB_FLOODS) as u32;
            let r = flood(&mut meg, source, 100_000);
            sum += r.rounds as f64 + r.informed.len() as f64;
        }
    }
    (
        vec![
            ("n".into(), n as f64),
            ("trials".into(), DENSE_AB_TRIALS as f64),
            ("floods".into(), DENSE_AB_FLOODS as f64),
        ],
        sum,
    )
}

/// Shared body of the sparse stepping A/B pair (single trial: at the full
/// `n = 65536` one flood already visits ~10⁶ alive edges per round).
fn sparse_flood_ab(n: usize, stepping: Stepping) -> (Vec<(String, f64)>, f64) {
    let p_hat = (3.0 * (n as f64).ln() / n as f64).min(0.9);
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
    let mut meg = SparseEdgeMeg::with_stepping(
        params,
        InitialDistribution::Stationary,
        stepping,
        BENCH_SEED,
    );
    let r = flood(&mut meg, 0, 100_000);
    (
        vec![("n".into(), n as f64), ("trials".into(), 1.0)],
        r.rounds as f64 + r.informed.len() as f64,
    )
}

/// Geometric-MEG with grid-walk mobility at `factor ×` the connectivity
/// threshold (the Theorem 3.4/3.5 regime).
fn geo_meg(n: usize, factor: f64, seed: u64) -> GeometricMeg<meg_mobility::GridWalk> {
    let radius =
        factor * spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);
    let side = (n as f64).sqrt();
    let radius = radius.min(side * 0.95);
    GeometricMeg::from_params(
        GeometricMegParams {
            n,
            move_radius: radius * 0.5,
            transmission_radius: radius,
            resolution: 1.0,
        },
        seed,
    )
}

/// One repetition of a named workload; returns its checksum.
/// `None` means the name is unknown.
fn run_once(name: &str, scale: f64) -> Option<(Vec<(String, f64)>, f64)> {
    match name {
        // The acceptance workload of the snapshot-pipeline refactor: flooding
        // on a geometric MEG at n = 4096, three sources, snapshot rebuilt
        // every round.
        "geo_flood_n4096" => {
            let n = scaled_n(4096, scale);
            let mut sum = 0.0;
            for (i, source) in [0u32, 1, 2].into_iter().enumerate() {
                let mut meg = geo_meg(n, 1.2, BENCH_SEED + i as u64);
                let r = flood(&mut meg, source % n as u32, 100_000);
                sum += r.rounds as f64 + r.informed.len() as f64;
            }
            Some((vec![("n".into(), n as f64), ("trials".into(), 3.0)], sum))
        }
        // Pure snapshot construction: advance() in a loop, no protocol on
        // top, isolating the radius-graph + snapshot-buffer hot path.
        "geo_snapshots_n4096" => {
            let n = scaled_n(4096, scale);
            let steps = 60;
            let mut meg = geo_meg(n, 1.2, BENCH_SEED);
            let mut sum = 0.0;
            for _ in 0..steps {
                sum += meg.advance().num_edges() as f64;
            }
            Some((
                vec![("n".into(), n as f64), ("steps".into(), steps as f64)],
                sum,
            ))
        }
        // Torus metric exercises the wrapped distance check.
        "geo_flood_torus_n2048" => {
            let n = scaled_n(2048, scale);
            let side = (n as f64).sqrt();
            let radius = (1.2
                * spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT))
            .min(side * 0.95);
            let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
            let walkers = meg_mobility::TorusWalkers::new(n, side, radius * 0.5, 1.0, &mut rng);
            let mut meg = GeometricMeg::new(walkers, radius, BENCH_SEED);
            let r = flood(&mut meg, 0, 100_000);
            Some((
                vec![("n".into(), n as f64)],
                r.rounds as f64 + r.informed.len() as f64,
            ))
        }
        // Sparse edge-MEG in the paper's sparse connected regime.
        "edge_sparse_flood_n16384" => {
            let n = scaled_n(16384, scale);
            let p_hat = 3.0 * (n as f64).ln() / n as f64;
            let params = EdgeMegParams::with_stationary(n, p_hat.min(0.9), 0.5);
            let mut sum = 0.0;
            for i in 0..3u64 {
                let mut meg = SparseEdgeMeg::stationary(params, BENCH_SEED + i);
                let r = flood(&mut meg, 0, 100_000);
                sum += r.rounds as f64 + r.informed.len() as f64;
            }
            Some((vec![("n".into(), n as f64), ("trials".into(), 3.0)], sum))
        }
        // Dense engine: every pair touched per step.
        "edge_dense_flood_n1024" => {
            let n = scaled_n(1024, scale);
            let p_hat = 4.0 * (n as f64).ln() / n as f64;
            let params = EdgeMegParams::with_stationary(n, p_hat.min(0.9), 0.5);
            let mut sum = 0.0;
            for i in 0..3u64 {
                let mut meg =
                    DenseEdgeMeg::new(params, InitialDistribution::Stationary, BENCH_SEED + i);
                let r = flood(&mut meg, 0, 100_000);
                sum += r.rounds as f64 + r.informed.len() as f64;
            }
            Some((vec![("n".into(), n as f64), ("trials".into(), 3.0)], sum))
        }
        // Dense snapshot rebuild without a protocol on top.
        "edge_dense_snapshots_n2048" => {
            let n = scaled_n(2048, scale);
            let p_hat = 0.02;
            let params = EdgeMegParams::with_stationary(n, p_hat, 0.3);
            let mut meg = DenseEdgeMeg::new(params, InitialDistribution::Stationary, BENCH_SEED);
            let steps = 20;
            let mut sum = 0.0;
            for _ in 0..steps {
                sum += meg.advance().num_edges() as f64;
            }
            Some((
                vec![("n".into(), n as f64), ("steps".into(), steps as f64)],
                sum,
            ))
        }
        // Push–pull consumes the snapshot differently (one random neighbor
        // per node per round), covering the neighbor-slice fast path.
        "push_pull_geo_n2048" => {
            let n = scaled_n(2048, scale);
            let mut meg = geo_meg(n, 1.5, BENCH_SEED);
            let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
            let r = push_pull_gossip(&mut meg, 0, 100_000, &mut rng);
            Some((
                vec![("n".into(), n as f64)],
                r.rounds as f64 + r.informed_count() as f64,
            ))
        }
        // PR 6 A/B pairs — per-pair reference vs geometric skip-sampled
        // transitions, equal parameters, interleave the two names to compare.
        "edge_dense_flood_n4096" => Some(dense_flood_ab(scaled_n(4096, scale), Stepping::PerPair)),
        "edge_dense_flood_fast_n4096" => {
            Some(dense_flood_ab(scaled_n(4096, scale), Stepping::Transitions))
        }
        "edge_sparse_flood_n65536" => {
            Some(sparse_flood_ab(scaled_n(65536, scale), Stepping::PerPair))
        }
        "edge_sparse_flood_fast_n65536" => Some(sparse_flood_ab(
            scaled_n(65536, scale),
            Stepping::Transitions,
        )),
        _ => None,
    }
}

/// Runs one named workload under `opts`; `None` if the name is unknown.
pub fn run_bench(name: &str, opts: &BenchOptions) -> Option<BenchResult> {
    let repetitions = opts.repetitions.max(1);
    // Warm-up: untimed, but must execute the identical workload.
    for _ in 0..opts.warmup {
        run_once(name, opts.scale)?;
    }
    let mut times_ms = Vec::with_capacity(repetitions);
    let mut params = Vec::new();
    let mut checksum = 0.0;
    for _ in 0..repetitions {
        let start = Instant::now();
        let (p, sum) = run_once(name, opts.scale)?;
        times_ms.push(start.elapsed().as_secs_f64() * 1e3);
        params = p;
        checksum = sum;
    }
    let median_ms = quantile(&times_ms, 0.5).expect("non-empty");
    let q1 = quantile(&times_ms, 0.25).expect("non-empty");
    let q3 = quantile(&times_ms, 0.75).expect("non-empty");
    let min_ms = times_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let max_ms = times_ms.iter().copied().fold(0.0f64, f64::max);
    Some(BenchResult {
        name: name.to_string(),
        params,
        repetitions,
        warmup: opts.warmup,
        median_ms,
        iqr_ms: q3 - q1,
        min_ms,
        max_ms,
        samples_ms: times_ms,
        checksum,
        counters: None,
        spans: None,
    })
}

/// [`run_bench`] plus one extra **untimed** repetition with the `meg-obs`
/// recorder installed, recording the counter deltas that repetition produced
/// (flips, RNG draws, delta patches/rebuilds, …) in
/// [`BenchResult::counters`]. The timed repetitions run with the recorder
/// off, so the reported wall times are the uninstrumented ones; the recorder
/// is uninstalled again before returning.
pub fn run_bench_with_counters(name: &str, opts: &BenchOptions) -> Option<BenchResult> {
    obs::uninstall();
    let mut result = run_bench(name, opts)?;
    obs::install();
    let before = obs::snapshot();
    let instrumented = run_once(name, opts.scale);
    let after = obs::snapshot();
    obs::uninstall();
    instrumented?;
    result.counters = Some(
        after
            .counter_deltas(&before)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    // The recorder was freshly installed above, so `after`'s span histograms
    // cover exactly the instrumented repetition.
    result.spans = Some(
        after
            .spans
            .iter()
            .filter(|s| s.count > 0)
            .copied()
            .collect(),
    );
    Some(result)
}

/// Metrics-off vs metrics-on A/B measurement of one workload — the number
/// behind the "instrumentation is free when off, cheap when on" claim and
/// the ≤ 5% overhead guard in `ci.sh`.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadResult {
    /// Workload name.
    pub name: String,
    /// Median wall time with no recorder installed, in milliseconds.
    pub off_median_ms: f64,
    /// Median wall time with the `meg-obs` recorder installed, in
    /// milliseconds.
    pub on_median_ms: f64,
    /// `on_median_ms / off_median_ms` — 1.0 means free, 1.05 is the guard.
    pub ratio: f64,
}

impl OverheadResult {
    /// Renders the measurement as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::Str(self.name.clone())),
            ("off_median_ms", Json::Num(self.off_median_ms)),
            ("on_median_ms", Json::Num(self.on_median_ms)),
            ("ratio", Json::Num(self.ratio)),
        ])
    }
}

/// Times one workload with the recorder uninstalled vs installed and reports
/// the median ratio. The two variants are **interleaved per repetition**
/// (off, on, off, on, …) so slow machine drift — thermal throttling,
/// frequency ramp-up, cache warming — cancels out of the ratio instead of
/// biasing whichever variant ran second. Both variants execute the identical
/// seeded work (the checksums are asserted equal), so the ratio isolates the
/// instrumentation cost. `None` if the name is unknown.
pub fn run_overhead(name: &str, opts: &BenchOptions) -> Option<OverheadResult> {
    let repetitions = opts.repetitions.max(1);
    obs::uninstall();
    for _ in 0..opts.warmup {
        run_once(name, opts.scale)?;
    }
    let mut off_ms = Vec::with_capacity(repetitions);
    let mut on_ms = Vec::with_capacity(repetitions);
    let mut off_sum = 0.0;
    let mut on_sum = 0.0;
    for _ in 0..repetitions {
        obs::uninstall();
        let start = Instant::now();
        let (_, sum) = run_once(name, opts.scale)?;
        off_ms.push(start.elapsed().as_secs_f64() * 1e3);
        off_sum = sum;

        obs::install();
        let start = Instant::now();
        let step = run_once(name, opts.scale);
        on_ms.push(start.elapsed().as_secs_f64() * 1e3);
        obs::uninstall();
        on_sum = step?.1;
    }
    assert_eq!(
        off_sum, on_sum,
        "metrics must not change behaviour for `{name}`"
    );
    let off_median_ms = quantile(&off_ms, 0.5).expect("non-empty");
    let on_median_ms = quantile(&on_ms, 0.5).expect("non-empty");
    Some(OverheadResult {
        name: name.to_string(),
        off_median_ms,
        on_median_ms,
        ratio: on_median_ms / off_median_ms.max(f64::MIN_POSITIVE),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: BenchOptions = BenchOptions {
        repetitions: 2,
        warmup: 1,
        scale: 0.02,
    };

    #[test]
    fn every_registered_bench_runs_and_reports_sane_statistics() {
        for name in bench_names() {
            let r = run_bench(name, &TINY).unwrap_or_else(|| panic!("bench `{name}` missing"));
            assert_eq!(r.name, name);
            assert_eq!(r.repetitions, 2);
            assert!(r.min_ms >= 0.0, "{name}");
            assert!(r.median_ms >= r.min_ms, "{name}");
            assert!(r.max_ms >= r.median_ms, "{name}");
            assert!(r.iqr_ms >= 0.0, "{name}");
            assert_eq!(r.samples_ms.len(), r.repetitions, "{name}");
            assert!(
                r.samples_ms
                    .iter()
                    .all(|&t| (r.min_ms..=r.max_ms).contains(&t)),
                "{name}: samples outside [min, max]"
            );
            assert!(r.checksum.is_finite() && r.checksum > 0.0, "{name}");
            assert!(!r.params.is_empty(), "{name}");
        }
    }

    #[test]
    fn stepping_ab_pairs_flood_the_same_population() {
        for (a, b) in [
            ("edge_dense_flood_n4096", "edge_dense_flood_fast_n4096"),
            ("edge_sparse_flood_n65536", "edge_sparse_flood_fast_n65536"),
        ] {
            let ra = run_bench(a, &TINY).unwrap();
            let rb = run_bench(b, &TINY).unwrap();
            assert_eq!(ra.params, rb.params, "{a} vs {b} must share parameters");
            // Both modes flood the full population; only the per-flood round
            // counts (single digits above threshold) may differ between the
            // two RNG schedules. The dense pair runs 3 trials × 8 sequential
            // floods, so allow ~10 rounds of drift per flood.
            assert!(
                (ra.checksum - rb.checksum).abs() < 250.0,
                "{a}={} vs {b}={}",
                ra.checksum,
                rb.checksum
            );
        }
    }

    #[test]
    fn unknown_bench_is_none() {
        assert!(run_bench("no_such_bench", &TINY).is_none());
        assert!(run_bench_with_counters("no_such_bench", &TINY).is_none());
        assert!(run_overhead("no_such_bench", &TINY).is_none());
    }

    /// One test covers both recorder-touching modes: the recorder is
    /// process-global, so splitting these into parallel-running tests would
    /// let one test's `uninstall()` race the other's instrumented repetition.
    #[test]
    fn counters_and_overhead_modes_use_the_recorder_and_restore_it() {
        let r = run_bench_with_counters("edge_dense_flood_n1024", &TINY).unwrap();
        let counters = r.counters.as_ref().expect("instrumented rep recorded");
        let get = |name: &str| {
            counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(get("edge_births") > 0, "dense flood must flip edges");
        assert!(
            get("rounds") == 0,
            "bench drives flood() directly, not trials"
        );
        let text = r.to_json().render();
        assert!(text.contains("\"counters\":{"), "{text}");
        assert!(Json::parse(&text).is_ok());
        assert!(!obs::installed(), "recorder must be off after --counters");

        let m = run_overhead("edge_dense_snapshots_n2048", &TINY).unwrap();
        assert!(m.off_median_ms >= 0.0 && m.on_median_ms >= 0.0);
        assert!(m.ratio.is_finite() && m.ratio > 0.0);
        assert!(!obs::installed(), "recorder must be off after --overhead");
        let text = m.to_json().render();
        assert!(text.contains("\"ratio\":"), "{text}");
    }

    #[test]
    fn checksums_are_deterministic_across_runs() {
        for name in ["geo_flood_n4096", "edge_sparse_flood_n16384"] {
            let a = run_bench(name, &TINY).unwrap();
            let b = run_bench(name, &TINY).unwrap();
            assert_eq!(a.checksum, b.checksum, "{name}");
        }
    }

    #[test]
    fn json_rendering_contains_every_field() {
        let r = run_bench("edge_dense_snapshots_n2048", &TINY).unwrap();
        let doc = results_to_json("test", &TINY, std::slice::from_ref(&r));
        let text = doc.render();
        for key in [
            "\"label\":\"test\"",
            "\"bench\":\"edge_dense_snapshots_n2048\"",
            "\"median_ms\":",
            "\"iqr_ms\":",
            "\"min_ms\":",
            "\"samples_ms\":[",
            "\"checksum\":",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        // And the document is parseable JSON.
        assert!(Json::parse(&text).is_ok());
    }
}
