//! # meg-engine
//!
//! The declarative scenario engine: an experiment is **data**, not a
//! hand-written binary.
//!
//! A [`Scenario`] composes any substrate (edge-MEG dense/sparse with
//! `(p̂, q)` dynamics; geometric-MEG with grid-walk, waypoint, billiard, or
//! walkers mobility; the adversarial rotating star/bridge constructions;
//! static baseline graphs), any protocol (flooding, push–pull,
//! probabilistic, parsimonious) or measurement probe (expansion profile,
//! snapshot diameter, Theorem 2.5 bound, cell occupancy), a [`Sweep`] grid
//! over parameters, trial/round budgets, and a [`Precision`] policy — fixed
//! trials per cell, or adaptive `target_stderr` mode that grows each cell's
//! trial set until its observable reaches a target standard error. The
//! engine ([`run_scenario`]) crosses them into cells, derives a
//! deterministic seed per cell (so any cell reproduces in isolation), drives
//! the trials through `meg_stats::run_trials`, records the `meg_core::spec`
//! regime classification on every [`Row`], and emits results through an
//! [`OutputFormat`] sink (ASCII table, JSON-lines, or CSV). All twelve of
//! the paper's experiments ship as [`builtin`](fn@builtin) scenarios (see
//! `docs/EXPERIMENTS.md`); `docs/ARCHITECTURE.md` documents the pipeline end
//! to end.
//!
//! The `meg-lab` binary is the CLI front-end: `meg-lab list`, `meg-lab run
//! <name|--file scenario.json>`, `meg-lab show <name>`.
//!
//! Large grids distribute across processes through the [`dist`] subsystem:
//! `meg-lab run --shard i/m --out dir/` executes one deterministic slice of
//! the cell list with durable checkpointing (`--resume` skips completed
//! cells, `--workers k` fans cells out to subprocesses), and `meg-lab merge
//! dir/` reassembles the canonical row stream byte-identically to an
//! unsharded run.
//!
//! ## Example
//!
//! ```
//! use meg_engine::prelude::*;
//!
//! // Flooding on a sparse stationary edge-MEG, sweeping the node count.
//! let scenario = Scenario {
//!     name: "doc_example".into(),
//!     description: "flooding time vs n".into(),
//!     substrates: vec![Substrate::Edge {
//!         n: 100,
//!         engine: EdgeEngine::Sparse,
//!         p_hat: PHatSpec::LogFactor(3.0),
//!         q: 0.5,
//!         init: InitKind::Stationary,
//!         stepping: SteppingKind::PerPair,
//!     }],
//!     protocols: vec![Protocol::Flooding],
//!     sweep: Sweep::over(Param::N, [60.0, 120.0]),
//!     trials: 2,
//!     round_budget: 10_000,
//!     precision: Precision::FixedTrials,
//! };
//!
//! // Scenarios are data: they round-trip through JSON …
//! let text = scenario.to_json().render();
//! assert_eq!(Scenario::parse(&text).unwrap(), scenario);
//!
//! // … and running them is deterministic in the master seed.
//! let rows = run_scenario(&scenario, 2009).unwrap();
//! assert_eq!(rows.len(), 2);
//! assert!(rows.iter().all(|r| r.completion_rate > 0.0));
//! assert_eq!(rows, run_scenario(&scenario, 2009).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bench_baseline;
pub mod builtin;
pub mod dist;
pub mod harness;
pub mod json;
pub mod metrics;
pub mod run;
pub mod scenario;
pub mod sink;

pub use builtin::{builtin, builtin_names};
pub use dist::{merge_dir, run_sharded, DistError, DistOptions, ShardSpec, ShardStrategy};
pub use json::Json;
pub use meg_obs as obs;
pub use run::{run_scenario, run_scenario_streaming, Row, TrialOutcome};
pub use scenario::{
    AdversarialKind, Axis, EdgeEngine, InitKind, MobilityKind, MoveRadiusSpec, PHatSpec, Param,
    Precision, Protocol, RadiusSpec, Scenario, ScenarioError, StaticKind, SteppingKind, Substrate,
    Sweep,
};
pub use sink::OutputFormat;

/// The most commonly used engine items.
pub mod prelude {
    pub use crate::builtin::{builtin, builtin_names};
    pub use crate::dist::{merge_dir, run_sharded, DistOptions, ShardSpec, ShardStrategy};
    pub use crate::run::{run_scenario, run_scenario_streaming, Row, TrialOutcome};
    pub use crate::scenario::{
        AdversarialKind, Axis, EdgeEngine, InitKind, MobilityKind, MoveRadiusSpec, PHatSpec, Param,
        Precision, Protocol, RadiusSpec, Scenario, StaticKind, SteppingKind, Substrate, Sweep,
    };
    pub use crate::sink::OutputFormat;
}
