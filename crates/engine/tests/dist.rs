//! Integration tests for the distributed-execution subsystem.
//!
//! * **Golden shard equivalence** — for *every* built-in scenario (scaled
//!   down for CI), a 3-way sharded run followed by a merge is byte-identical
//!   to the unsharded row stream, under both partitioning strategies.
//! * **Interrupted resume** — a run cut off after N cells and resumed
//!   re-executes zero completed cells and ends byte-identical to a clean run.
//! * **CLI end-to-end** — the actual `meg-lab` binary: shard + merge
//!   equivalence, worker subprocess pools, worker crash/restart, and
//!   limit/resume exit codes.

use meg_engine::dist::{merge_dir, run_sharded, DistOptions, ShardSpec, ShardStrategy};
use meg_engine::prelude::*;
use meg_engine::scenario::Scenario;
use meg_engine::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("meg-dist-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Built-ins shrunk to CI size: tiny node counts, 2 trials.
fn ci_sized(name: &str) -> Scenario {
    let mut s = builtin(name).expect("builtin exists").scaled(0.05);
    s.trials = 2;
    s
}

fn reference_lines(s: &Scenario, seed: u64) -> Vec<String> {
    run_scenario(s, seed)
        .unwrap()
        .iter()
        .map(|r| r.to_json().render())
        .collect()
}

#[test]
fn golden_every_builtin_shards_and_merges_byte_identically() {
    for name in builtin_names() {
        let scenario = ci_sized(name);
        let reference = reference_lines(&scenario, 2009);
        assert_eq!(reference.len(), scenario.num_cells());
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            let dir = tmp(&format!("golden-{name}-{}", strategy.id()));
            for i in 0..3 {
                let opts = DistOptions {
                    shard: ShardSpec {
                        index: i,
                        count: 3,
                        strategy,
                    },
                    out_dir: Some(dir.clone()),
                    ..DistOptions::default()
                };
                run_sharded(&scenario, 2009, &opts, |_, _| {}).unwrap();
            }
            let merged = merge_dir(&dir).unwrap();
            assert_eq!(
                merged.lines,
                reference,
                "sharded+merged `{name}` ({}) must be byte-identical to unsharded",
                strategy.id()
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn interrupted_run_resumes_without_reexecuting_cells() {
    let scenario = ci_sized("quick_smoke");
    let reference = reference_lines(&scenario, 41);
    let total = reference.len();
    let dir = tmp("interrupt");

    // Interrupt after 1 cell (limit models a kill: the checkpoint survives).
    let interrupted = run_sharded(
        &scenario,
        41,
        &DistOptions {
            out_dir: Some(dir.clone()),
            limit: Some(1),
            ..DistOptions::default()
        },
        |_, _| {},
    )
    .unwrap();
    assert!(!interrupted.complete);
    assert_eq!(interrupted.executed, 1);

    // Resume: the checkpointed cell is honored, the rest execute once.
    let resumed = run_sharded(
        &scenario,
        41,
        &DistOptions {
            out_dir: Some(dir.clone()),
            resume: true,
            ..DistOptions::default()
        },
        |_, _| {},
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.resumed, 1, "completed cell must not re-execute");
    assert_eq!(resumed.executed, total - 1);
    let lines: Vec<String> = resumed.rows.into_iter().map(|(_, l)| l).collect();
    assert_eq!(lines, reference, "resumed output must match a clean run");

    // The merged checkpoint agrees too, with no duplicate rows.
    let merged = merge_dir(&dir).unwrap();
    assert_eq!(merged.lines, reference);
    assert_eq!(merged.duplicates, 0, "no cell may have run twice");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_adaptive_eps_zero_equals_fixed_trials_sharded_and_unsharded() {
    // eps = 0 never converges, so adaptive mode must spend exactly
    // max_trials — and the rows must be byte-identical to fixed-trials mode
    // at that count, in every execution topology.
    let mut fixed = ci_sized("quick_smoke");
    fixed.trials = 3;
    let mut adaptive = fixed.clone();
    adaptive.precision = meg_engine::Precision::TargetStderr {
        eps: 0.0,
        min_trials: 2,
        max_trials: 3,
    };
    let reference = reference_lines(&fixed, 2009);

    // Unsharded adaptive == unsharded fixed.
    assert_eq!(reference_lines(&adaptive, 2009), reference);

    // Sharded adaptive (both strategies) merges byte-identically to the
    // fixed unsharded stream.
    for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
        let dir = tmp(&format!("golden-adaptive-{}", strategy.id()));
        for i in 0..2 {
            let opts = DistOptions {
                shard: ShardSpec {
                    index: i,
                    count: 2,
                    strategy,
                },
                out_dir: Some(dir.clone()),
                ..DistOptions::default()
            };
            run_sharded(&adaptive, 2009, &opts, |_, _| {}).unwrap();
        }
        assert_eq!(
            merge_dir(&dir).unwrap().lines,
            reference,
            "adaptive eps=0 sharded+merged ({}) must equal the fixed run",
            strategy.id()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// CLI end-to-end (drives the real meg-lab binary)

fn meg_lab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_meg-lab"))
}

fn run_ok(args: &[&str]) -> String {
    let out = meg_lab().args(args).output().expect("meg-lab runs");
    assert!(
        out.status.success(),
        "meg-lab {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

const CLI_SCALE: &[&str] = &["--scale", "0.25", "--trials", "2", "--seed", "2009"];

fn cli_unsharded_json() -> String {
    run_ok(&[&["run", "quick_smoke"], CLI_SCALE, &["--format", "json"]].concat())
}

fn dir_arg(dir: &Path) -> &str {
    dir.to_str().expect("utf8 temp path")
}

#[test]
fn cli_shard_merge_round_trip_is_byte_identical() {
    let reference = cli_unsharded_json();
    let dir = tmp("cli-shards");
    for shard in ["0/2", "1/2"] {
        run_ok(
            &[
                &["run", "quick_smoke"],
                CLI_SCALE,
                &["--format", "json", "--shard", shard, "--out", dir_arg(&dir)],
            ]
            .concat(),
        );
    }
    let merged = run_ok(&["merge", dir_arg(&dir)]);
    assert_eq!(merged, reference);
    // The merged stream re-renders as CSV with the canonical header.
    let csv = run_ok(&["merge", dir_arg(&dir), "--format", "csv"]);
    assert!(csv.starts_with(meg_engine::sink::CSV_HEADER));
    assert_eq!(csv.lines().count(), 1 + reference.lines().count());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_worker_pool_matches_single_process_output() {
    let reference = cli_unsharded_json();
    let pooled = run_ok(
        &[
            &["run", "quick_smoke"],
            CLI_SCALE,
            &["--format", "json", "--workers", "2"],
        ]
        .concat(),
    );
    assert_eq!(pooled, reference);
}

#[test]
fn cli_coordinator_restarts_crashing_workers() {
    let reference = cli_unsharded_json();
    let cells = reference.lines().count();
    assert!(cells >= 2, "fixture too small to exercise restarts");
    // Every worker aborts after serving one cell, so each cell costs one
    // subprocess — the run only completes if the restart path works.
    // `--verbose --metrics report` turns the fault events into narrated
    // stderr lines and counters; stdout must stay byte-identical anyway.
    let out = meg_lab()
        .args(
            [
                &["run", "quick_smoke"][..],
                CLI_SCALE,
                &[
                    "--format",
                    "json",
                    "--workers",
                    "2",
                    "--worker-fail-after",
                    "1",
                    "--verbose",
                    "--metrics",
                    "report",
                ],
            ]
            .concat(),
        )
        .output()
        .expect("meg-lab runs");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "faulted run failed: {stderr}");
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        reference,
        "rows must be byte-identical under --verbose --metrics"
    );

    // With fail-after=1 every worker thread respawns once per item after its
    // first, so total respawns land in [cells − workers, cells − 1].
    let narrated = stderr
        .lines()
        .filter(|l| l.contains("worker respawned"))
        .count();
    assert!(
        (cells - 2..=cells - 1).contains(&narrated),
        "expected {} or {} respawn lines, saw {narrated}:\n{stderr}",
        cells - 2,
        cells - 1
    );
    assert!(
        stderr.lines().any(|l| l.contains("worker died")),
        "deaths must be narrated: {stderr}"
    );

    // The metrics report's counter must agree with the narrated lines.
    assert!(stderr.contains("── metrics report"), "{stderr}");
    let counted: usize = stderr
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("worker_respawns"))
        .expect("worker_respawns counter in report")
        .trim()
        .parse()
        .expect("counter value");
    assert_eq!(
        counted, narrated,
        "counter and narration disagree:\n{stderr}"
    );
}

#[test]
fn cli_full_observability_stack_keeps_stdout_identical() {
    let reference = cli_unsharded_json();
    let cells = reference.lines().count();
    let trace_path =
        std::env::temp_dir().join(format!("meg-dist-it-{}-cli-trace.json", std::process::id()));
    // Everything at once: worker pool, metrics shipping + merged report,
    // trace journal, and progress forced on (test stderr is not a TTY).
    let out = meg_lab()
        .env("MEG_PROGRESS_FORCE", "1")
        .args(
            [
                &["run", "quick_smoke"][..],
                CLI_SCALE,
                &[
                    "--format",
                    "json",
                    "--workers",
                    "2",
                    "--metrics",
                    "report",
                    "--trace",
                    trace_path.to_str().expect("utf8 temp path"),
                    "--progress",
                ],
            ]
            .concat(),
        )
        .output()
        .expect("meg-lab runs");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "observed run failed: {stderr}");
    assert_eq!(
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        reference,
        "rows must be byte-identical under the full observability stack"
    );

    // Worker-side counters must reach the merged report: per-lane subtotal
    // lines, and a nonzero `trials` total (the coordinator itself runs no
    // trials, so a nonzero value proves shipping + merge worked).
    assert!(stderr.contains("── metrics report"), "{stderr}");
    assert!(
        stderr.contains("worker 0:") && stderr.contains("worker 1:"),
        "per-worker subtotals missing from report:\n{stderr}"
    );
    let trials: u64 = stderr
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("trials"))
        .expect("trials counter in report")
        .trim()
        .parse()
        .expect("counter value");
    assert!(
        trials > 0,
        "merged report shows zero worker-side trials:\n{stderr}"
    );

    // The progress meter drew at least one status line (forced via env).
    assert!(
        stderr.contains("cells") && stderr.contains("rows/s"),
        "progress line missing from stderr:\n{stderr}"
    );

    // The trace journal is valid trace-event JSON with one complete-phase
    // span per cell on the worker lanes.
    let doc = Json::parse(&std::fs::read_to_string(&trace_path).expect("trace file written"))
        .expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    assert_eq!(spans, cells, "one complete span per cell, got {spans}");
    std::fs::remove_file(&trace_path).unwrap();
}

#[test]
fn cli_limit_exits_3_and_resume_completes() {
    let reference = cli_unsharded_json();
    let dir = tmp("cli-resume");
    let partial = meg_lab()
        .args(
            [
                &["run", "quick_smoke"][..],
                CLI_SCALE,
                &["--format", "json", "--out", dir_arg(&dir), "--limit", "1"],
            ]
            .concat(),
        )
        .output()
        .expect("meg-lab runs");
    assert_eq!(
        partial.status.code(),
        Some(3),
        "incomplete runs must exit 3: {}",
        String::from_utf8_lossy(&partial.stderr)
    );

    let resumed = run_ok(
        &[
            &["run", "quick_smoke"],
            CLI_SCALE,
            &["--format", "json", "--resume", dir_arg(&dir)],
        ]
        .concat(),
    );
    assert_eq!(
        resumed, reference,
        "resumed CLI output must match clean run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

const CLI_ADAPTIVE: &[&str] = &[
    "--target-stderr",
    "0.75",
    "--min-trials",
    "2",
    "--max-trials",
    "8",
];

#[test]
fn cli_adaptive_worker_pool_matches_single_process_and_converges() {
    // Single-process adaptive run is the reference …
    let reference = run_ok(
        &[
            &["run", "quick_smoke"],
            CLI_SCALE,
            CLI_ADAPTIVE,
            &["--format", "json"],
        ]
        .concat(),
    );
    // … and every row either met the target or spent the whole budget.
    for line in reference.lines() {
        let row = meg_engine::Row::from_json(&meg_engine::Json::parse(line).unwrap()).unwrap();
        assert_eq!(row.requested_trials, 8);
        assert!(
            row.achieved_stderr.is_some_and(|se| se <= 0.75) || row.trials == 8,
            "row neither converged nor exhausted its budget: {line}"
        );
    }

    // The worker pool runs the batch-dispatch control loop; crashing workers
    // exercise batch retry. Both must reproduce the reference byte for byte.
    for extra in [
        &["--format", "json", "--workers", "2"][..],
        &[
            "--format",
            "json",
            "--workers",
            "2",
            "--worker-fail-after",
            "2",
        ][..],
    ] {
        let pooled = run_ok(&[&["run", "quick_smoke"], CLI_SCALE, CLI_ADAPTIVE, extra].concat());
        assert_eq!(
            pooled, reference,
            "adaptive worker pool must match the single-process run ({extra:?})"
        );
    }

    // Sharded + checkpointed + merged: still byte-identical.
    let dir = tmp("cli-adaptive-shards");
    for shard in ["0/2", "1/2"] {
        run_ok(
            &[
                &["run", "quick_smoke"],
                CLI_SCALE,
                CLI_ADAPTIVE,
                &["--format", "json", "--shard", shard, "--out", dir_arg(&dir)],
            ]
            .concat(),
        );
    }
    assert_eq!(run_ok(&["merge", dir_arg(&dir)]), reference);
    std::fs::remove_dir_all(&dir).unwrap();
}
