//! Golden pre/post-refactor row fixtures.
//!
//! The fixtures under `tests/golden/` were produced by `meg-lab run` **before
//! the allocation-free snapshot pipeline landed** (PR 4 code, `AdjacencyList`
//! snapshots), at `--scale 0.1 --seed 20260730` — fixed mode with
//! `--trials 2`, adaptive mode with `--target-stderr 0.5 --min-trials 2
//! --max-trials 4`. These tests re-run every builtin through the library path
//! the CLI uses and require the JSON-lines output to be **byte-identical**:
//! the snapshot representation, the radius-graph workspace, the CSR build,
//! and the protocol scratch-buffer reuse must all be invisible in the rows.
//!
//! If a legitimate behaviour change ever invalidates these fixtures,
//! regenerate them with:
//!
//! ```text
//! MEG_SCALE=0.1 meg-lab run <name> --trials 2 --seed 20260730 --format json
//! MEG_SCALE=0.1 meg-lab run <name> --seed 20260730 --target-stderr 0.5 \
//!     --min-trials 2 --max-trials 4 --format json
//! ```

use meg_engine::prelude::*;
use meg_engine::scenario::Precision;

const SEED: u64 = 20260730;
const SCALE: f64 = 0.1;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn rendered_rows(scenario: &Scenario) -> String {
    let rows = run_scenario(scenario, SEED).expect("scenario runs");
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().render());
        out.push('\n');
    }
    out
}

#[test]
fn every_builtin_matches_its_fixed_trials_golden_fixture() {
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.trials = 2;
        let got = rendered_rows(&scenario);
        let want = fixture(&format!("{name}.jsonl"));
        assert_eq!(
            got, want,
            "`{name}` rows differ from the pre-refactor golden output"
        );
    }
}

#[test]
fn the_transitions_stepping_run_matches_its_golden_fixture() {
    // One fixture pins the `Stepping::Transitions` fast path itself (the 26
    // fixtures above all run under the default per-pair stepping and guard
    // that the new mode changed nothing there). Regenerate with:
    //
    // ```text
    // MEG_SCALE=0.1 meg-lab run edge_vs_n --trials 2 --seed 20260730 \
    //     --stepping transitions --format json
    // ```
    use meg_engine::scenario::{SteppingKind, Substrate};
    let mut scenario = builtin("edge_vs_n")
        .expect("registry consistent")
        .scaled(SCALE);
    scenario.trials = 2;
    for sub in &mut scenario.substrates {
        if let Substrate::Edge { stepping, .. } = sub {
            *stepping = SteppingKind::Transitions;
        }
    }
    let got = rendered_rows(&scenario);
    let want = fixture("edge_vs_n.transitions.jsonl");
    assert_eq!(
        got, want,
        "transitions-stepping rows drifted from the pinned fixture"
    );
}

#[test]
fn every_builtin_matches_its_adaptive_golden_fixture() {
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.precision = Precision::TargetStderr {
            eps: 0.5,
            min_trials: 2,
            max_trials: 4,
        };
        let got = rendered_rows(&scenario);
        let want = fixture(&format!("{name}.adaptive.jsonl"));
        assert_eq!(
            got, want,
            "`{name}` adaptive rows differ from the pre-refactor golden output"
        );
    }
}
