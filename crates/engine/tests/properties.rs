//! Property tests: every randomly generated `Scenario`/`Sweep` serializes to
//! JSON and deserializes back to an equal value, the sweep grid's cell
//! enumeration is a faithful cartesian product, and `row_to_csv` escaping is
//! reversible for arbitrary (comma/quote/newline-laden) strings.

use meg_engine::json::Json;
use meg_engine::run::Row;
use meg_engine::scenario::{
    AdversarialKind, Axis, EdgeEngine, InitKind, MobilityKind, MoveRadiusSpec, PHatSpec, Param,
    Precision, Protocol, RadiusSpec, Scenario, StaticKind, SteppingKind, Substrate, Sweep,
};
use meg_engine::sink::{row_to_csv, CSV_HEADER};
use meg_stats::Summary;
use proptest::prelude::*;
use proptest::Strategy;

// --- strategies ------------------------------------------------------------

fn arb_f64() -> impl Strategy<Value = f64> {
    // A mix of scales, including awkward values (tiny, huge, negative,
    // high-precision) — everything a float axis might carry.
    (0u64..6).prop_flat_map(|kind| {
        (0.0f64..1.0).prop_map(move |u| match kind {
            0 => u,
            1 => u * 1e6,
            2 => -u * 37.5,
            3 => u * 1e-9,
            4 => (u * 100.0).round() / 8.0, // exactly representable
            _ => u * 3.0 + 0.25,
        })
    })
}

fn arb_phat() -> impl Strategy<Value = PHatSpec> {
    (proptest::bool::ANY, 0.0001f64..0.9, 0.5f64..8.0).prop_map(|(fixed, v, f)| {
        if fixed {
            PHatSpec::Fixed(v)
        } else {
            PHatSpec::LogFactor(f)
        }
    })
}

fn arb_radius() -> impl Strategy<Value = RadiusSpec> {
    (proptest::bool::ANY, 1.1f64..50.0, 0.5f64..8.0).prop_map(|(fixed, v, f)| {
        if fixed {
            RadiusSpec::Fixed(v)
        } else {
            RadiusSpec::ThresholdFactor(f)
        }
    })
}

fn arb_move_radius() -> impl Strategy<Value = MoveRadiusSpec> {
    (proptest::bool::ANY, 0.1f64..10.0, 0.05f64..2.0).prop_map(|(fixed, v, f)| {
        if fixed {
            MoveRadiusSpec::Fixed(v)
        } else {
            MoveRadiusSpec::RadiusFraction(f)
        }
    })
}

fn arb_edge_substrate() -> impl Strategy<Value = Substrate> {
    (
        2usize..5000,
        0u64..2,
        arb_phat(),
        0.01f64..=1.0,
        0u64..3,
        proptest::bool::ANY,
    )
        .prop_map(|(n, engine, p_hat, q, init, transitions)| Substrate::Edge {
            n,
            engine: if engine == 0 {
                EdgeEngine::Dense
            } else {
                EdgeEngine::Sparse
            },
            p_hat,
            q,
            init: match init {
                0 => InitKind::Stationary,
                1 => InitKind::Empty,
                _ => InitKind::Full,
            },
            stepping: if transitions {
                SteppingKind::Transitions
            } else {
                SteppingKind::PerPair
            },
        })
}

fn arb_geo_substrate() -> impl Strategy<Value = Substrate> {
    (2usize..5000, 0usize..4, arb_radius(), arb_move_radius()).prop_map(
        |(n, mobility, radius, move_radius)| Substrate::Geometric {
            n,
            mobility: MobilityKind::ALL[mobility],
            radius,
            move_radius,
        },
    )
}

fn arb_other_substrate() -> impl Strategy<Value = Substrate> {
    (4usize..5000, 0usize..4, arb_phat()).prop_map(|(n, kind, p_hat)| match kind {
        0 => Substrate::Adversarial {
            n,
            construction: AdversarialKind::RotatingStar,
        },
        1 => Substrate::Adversarial {
            n,
            construction: AdversarialKind::RotatingBridge,
        },
        2 => Substrate::Static {
            n,
            graph: StaticKind::ErdosRenyi { p_hat },
        },
        _ => Substrate::Static {
            n,
            graph: StaticKind::Grid2d,
        },
    })
}

fn arb_substrate() -> impl Strategy<Value = Substrate> {
    // Generate every family, keep one — the shim has no `prop_oneof`.
    (
        0u64..4,
        arb_edge_substrate(),
        arb_geo_substrate(),
        arb_other_substrate(),
    )
        .prop_map(|(kind, e, g, o)| match kind {
            0 | 1 => {
                if kind == 0 {
                    e
                } else {
                    g
                }
            }
            _ => o,
        })
}

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    (0u64..12, 0.0f64..=1.0, 1u64..20, 1u64..64).prop_map(|(kind, beta, k, h)| match kind {
        0 => Protocol::Flooding,
        1 => Protocol::Probabilistic { beta },
        2 => Protocol::Parsimonious { active_rounds: k },
        3 => Protocol::PushPull,
        4 => Protocol::ExpansionProbe {
            set_size: h,
            samples: k,
        },
        5 => Protocol::DiameterProbe,
        6 => Protocol::BoundProbe {
            snapshots: k,
            samples: h,
        },
        7 => Protocol::OccupancyProbe,
        8 => Protocol::Sis {
            contagion: beta,
            infection_rounds: k,
            // `h - 1` so the SIS special case (zero-round immunity) is hit.
            immunity_rounds: h - 1,
        },
        9 => Protocol::Sir {
            contagion: beta,
            infection_rounds: k,
        },
        10 => Protocol::Rumor,
        _ => Protocol::Byzantine { count: h },
    })
}

fn arb_precision() -> impl Strategy<Value = Precision> {
    (proptest::bool::ANY, 0.0f64..10.0, 1usize..16, 0usize..256).prop_map(
        |(fixed, eps, min_trials, extra)| {
            if fixed {
                Precision::FixedTrials
            } else {
                Precision::TargetStderr {
                    eps,
                    min_trials,
                    max_trials: min_trials + extra,
                }
            }
        },
    )
}

fn arb_param() -> impl Strategy<Value = Param> {
    (0usize..Param::ALL.len()).prop_map(|i| Param::ALL[i])
}

fn arb_sweep() -> impl Strategy<Value = Sweep> {
    proptest::collection::vec(
        (arb_param(), proptest::collection::vec(arb_f64(), 1usize..5)),
        0usize..4,
    )
    .prop_map(|axes| Sweep {
        axes: axes
            .into_iter()
            .map(|(param, values)| Axis { param, values })
            .collect(),
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(arb_substrate(), 1usize..4),
        proptest::collection::vec(arb_protocol(), 1usize..4),
        arb_sweep(),
        1usize..20,
        1u64..1_000_000,
        0u64..1000,
        arb_precision(),
    )
        .prop_map(
            |(substrates, protocols, sweep, trials, round_budget, tag, precision)| Scenario {
                name: format!("prop_scenario_{tag}"),
                description: format!("generated scenario #{tag} — quotes \" and \\ too"),
                substrates,
                protocols,
                sweep,
                trials,
                round_budget,
                precision,
            },
        )
}

/// Strings drawn from an alphabet rich in CSV-hostile characters: commas,
/// quotes, CR/LF, equals signs, and some multi-byte text.
fn arb_nasty_string() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 12] = ['a', 'B', '7', 'θ', ',', '"', '\n', '\r', '=', ' ', '-', '_'];
    proptest::collection::vec(0usize..ALPHABET.len(), 0usize..12)
        .prop_map(|indices| indices.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        arb_nasty_string(),
        arb_nasty_string(),
        arb_nasty_string(),
        proptest::collection::vec((arb_nasty_string(), arb_f64()), 0usize..4),
        0usize..50,
        proptest::bool::ANY,
    )
        .prop_map(
            |(scenario, protocol, regime, params, cell, completed)| Row {
                scenario,
                cell,
                family: "edge".into(),
                substrate: "edge-sparse".into(),
                protocol,
                params,
                regime,
                seed: 0x1234_5678_9abc_def0,
                trials: 4,
                requested_trials: 8,
                achieved_stderr: if completed { Some(0.125) } else { None },
                completion_rate: if completed { 0.75 } else { 0.0 },
                rounds: if completed {
                    Summary::of_counts(&[3, 5, 9])
                } else {
                    None
                },
                mean_messages: 123.5,
            },
        )
}

/// A strict RFC-4180-style record parser: quoted fields may contain commas,
/// doubled quotes, and newlines; anything after a closing quote other than a
/// comma or end-of-record is a parse error.
fn parse_csv_record(input: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut chars = input.chars().peekable();
    loop {
        let mut field = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next()? {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            break;
                        }
                    }
                    c => field.push(c),
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                if c == '"' {
                    return None; // bare quote inside an unquoted field
                }
                field.push(c);
                chars.next();
            }
        }
        fields.push(field);
        match chars.next() {
            Some(',') => continue,
            None => return Some(fields),
            Some(_) => return None,
        }
    }
}

// --- properties ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scenario_json_round_trip(scenario in arb_scenario()) {
        let compact = scenario.to_json().render();
        let back = Scenario::parse(&compact)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e} on {compact}")))?;
        prop_assert_eq!(&back, &scenario);

        let pretty = scenario.to_json().render_pretty();
        let back_pretty = Scenario::parse(&pretty)
            .map_err(|e| TestCaseError::fail(format!("pretty reparse failed: {e}")))?;
        prop_assert_eq!(&back_pretty, &scenario);
    }

    #[test]
    fn sweep_json_round_trip(sweep in arb_sweep()) {
        let text = sweep.to_json().render();
        let json = Json::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("invalid JSON: {e}")))?;
        let back = Sweep::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, sweep);
    }

    #[test]
    fn sweep_cells_enumerate_the_full_grid(sweep in arb_sweep()) {
        let expected: usize = sweep.axes.iter().map(|a| a.values.len()).product();
        prop_assert_eq!(sweep.num_cells(), expected.max(1));
        // Each cell assignment picks one value per axis, and distinct cell
        // indices give distinct assignments.
        let mut seen = std::collections::HashSet::new();
        for i in 0..sweep.num_cells() {
            let cell = sweep.cell(i);
            prop_assert_eq!(cell.len(), sweep.axes.len());
            for ((param, value), axis) in cell.iter().zip(sweep.axes.iter()) {
                prop_assert_eq!(*param, axis.param);
                prop_assert!(axis.values.iter().any(|v| v.to_bits() == value.to_bits()),
                    "cell value {} not on its axis", value);
            }
            let key: Vec<u64> = cell.iter().map(|(_, v)| v.to_bits()).collect();
            seen.insert(key);
        }
        // Distinct assignments unless an axis repeats a value.
        let has_dup_values = sweep.axes.iter().any(|a| {
            let set: std::collections::HashSet<u64> =
                a.values.iter().map(|v| v.to_bits()).collect();
            set.len() != a.values.len()
        });
        if !has_dup_values {
            prop_assert_eq!(seen.len(), sweep.num_cells());
        }
    }

    #[test]
    fn row_to_csv_escapes_arbitrary_strings_reversibly(row in arb_row()) {
        let record = row_to_csv(&row);
        let fields = parse_csv_record(&record)
            .ok_or_else(|| TestCaseError::fail(format!("unparsable record: {record:?}")))?;
        prop_assert_eq!(fields.len(), CSV_HEADER.split(',').count(),
            "field count must match the header for {:?}", record);
        // The string fields survive the escape/parse round trip verbatim.
        prop_assert_eq!(&fields[0], &row.scenario);
        prop_assert_eq!(&fields[1], &row.cell.to_string());
        prop_assert_eq!(&fields[4], &row.protocol);
        prop_assert_eq!(&fields[5], &row.params_compact());
        prop_assert_eq!(&fields[6], &row.regime);
        prop_assert_eq!(&fields[7], &row.seed.to_string());
        // And rows that carry no specials contain no quoting at all.
        if !row.scenario.contains(['"', ',', '\n', '\r'])
            && !row.protocol.contains(['"', ',', '\n', '\r'])
            && !row.regime.contains(['"', ',', '\n', '\r'])
            && !row.params_compact().contains(['"', ',', '\n', '\r'])
        {
            prop_assert!(!record.contains('"'), "gratuitous quoting in {:?}", record);
        }
    }

    #[test]
    fn rows_round_trip_through_json_for_arbitrary_strings(row in arb_row()) {
        let back = Row::from_json(&row.to_json())
            .map_err(|e| TestCaseError::fail(format!("row reparse failed: {e}")))?;
        prop_assert_eq!(&back, &row);
    }

    #[test]
    fn json_values_round_trip_through_text(xs in proptest::collection::vec(arb_f64(), 0usize..8)) {
        let v = Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
        let back = Json::parse(&v.render())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(back, v);
    }
}
