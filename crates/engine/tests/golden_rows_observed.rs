//! Determinism under observation: the golden fixtures of `golden_rows.rs`
//! re-run with the `meg-obs` recorder **installed**.
//!
//! The observability layer's hard invariant is that metrics change nothing
//! observable: clock reads sit strictly outside RNG-consuming code and all
//! metrics output goes to stderr, so the row stream must be byte-identical
//! whether or not a recorder is listening. This binary proves it against
//! every committed fixture (fixed-trials, adaptive, and the transitions-
//! stepping pin) — and then checks the counters actually moved, so a silent
//! regression that disables instrumentation cannot masquerade as passing.
//!
//! One `#[test]` on purpose: the recorder is process-global, and this file
//! is a separate test binary so its `install()` cannot leak into the
//! metrics-off runs of `golden_rows.rs`.

use meg_engine::obs;
use meg_engine::prelude::*;
use meg_engine::scenario::{Precision, SteppingKind, Substrate};

const SEED: u64 = 20260730;
const SCALE: f64 = 0.1;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn rendered_rows(scenario: &Scenario) -> String {
    let rows = run_scenario(scenario, SEED).expect("scenario runs");
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().render());
        out.push('\n');
    }
    out
}

#[test]
fn every_golden_fixture_is_byte_identical_with_the_recorder_installed() {
    obs::install();

    // Fixed-trials fixtures (the 26 per-pair builtins).
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.trials = 2;
        assert_eq!(
            rendered_rows(&scenario),
            fixture(&format!("{name}.jsonl")),
            "`{name}` rows drifted under observation"
        );
    }

    // The transitions-stepping pin.
    let mut scenario = builtin("edge_vs_n")
        .expect("registry consistent")
        .scaled(SCALE);
    scenario.trials = 2;
    for sub in &mut scenario.substrates {
        if let Substrate::Edge { stepping, .. } = sub {
            *stepping = SteppingKind::Transitions;
        }
    }
    assert_eq!(
        rendered_rows(&scenario),
        fixture("edge_vs_n.transitions.jsonl"),
        "transitions-stepping rows drifted under observation"
    );

    // Adaptive-precision fixtures.
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.precision = Precision::TargetStderr {
            eps: 0.5,
            min_trials: 2,
            max_trials: 4,
        };
        assert_eq!(
            rendered_rows(&scenario),
            fixture(&format!("{name}.adaptive.jsonl")),
            "`{name}` adaptive rows drifted under observation"
        );
    }

    // The runs above must actually have been observed — a recorder that
    // silently stopped recording would make the byte-identity checks
    // vacuous.
    let snap = obs::snapshot();
    assert!(
        snap.counter("trials") > 0,
        "no trials recorded: instrumentation is dark"
    );
    assert!(snap.counter("rounds") > 0, "no rounds recorded");
    assert!(snap.counter("rng_draws") > 0, "no RNG draws recorded");
    assert!(
        snap.counter("edge_births") > 0 && snap.counter("edge_deaths") > 0,
        "no edge flips recorded"
    );
    assert!(
        snap.counter("bucket_scan_visits") > 0,
        "no geometric bucket scans recorded"
    );
    assert!(
        snap.counter("delta_rounds") > 0,
        "no snapshot delta rounds recorded"
    );
    let report = snap.render_report();
    assert!(report.contains("trials"), "report misses trials: {report}");
    obs::uninstall();
}
