//! Determinism under observation: the golden fixtures of `golden_rows.rs`
//! re-run with the `meg-obs` recorder **installed**.
//!
//! The observability layer's hard invariant is that metrics change nothing
//! observable: clock reads sit strictly outside RNG-consuming code and all
//! metrics output goes to stderr, so the row stream must be byte-identical
//! whether or not a recorder is listening. This binary proves it against
//! every committed fixture (fixed-trials, adaptive, and the transitions-
//! stepping pin) — and then checks the counters actually moved, so a silent
//! regression that disables instrumentation cannot masquerade as passing.
//!
//! One `#[test]` on purpose: the recorder is process-global, and this file
//! is a separate test binary so its `install()` cannot leak into the
//! metrics-off runs of `golden_rows.rs`.

use meg_engine::dist::{run_sharded, DistOptions};
use meg_engine::obs;
use meg_engine::prelude::*;
use meg_engine::scenario::{Precision, SteppingKind, Substrate};
use meg_engine::Json;
use std::path::PathBuf;

const SEED: u64 = 20260730;
const SCALE: f64 = 0.1;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn rendered_rows(scenario: &Scenario) -> String {
    let rows = run_scenario(scenario, SEED).expect("scenario runs");
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().render());
        out.push('\n');
    }
    out
}

/// The full observability stack turned on at once: a 2-worker pool with
/// metrics shipping, a trace journal, and `--progress` (force-drawn — test
/// stderr is not a TTY). Returns the row stream plus the run report for the
/// worker-metrics assertions.
fn sharded_observed_rows(
    scenario: &Scenario,
    trace_path: &std::path::Path,
) -> (String, meg_engine::dist::RunReport) {
    let opts = DistOptions {
        workers: 2,
        worker_cmd: Some(PathBuf::from(env!("CARGO_BIN_EXE_meg-lab"))),
        ship_metrics: true,
        trace: Some(trace_path.to_path_buf()),
        progress: true,
        ..DistOptions::default()
    };
    let mut out = String::new();
    let report = run_sharded(scenario, SEED, &opts, |_, line| {
        out.push_str(line);
        out.push('\n');
    })
    .expect("sharded observed run succeeds");
    (out, report)
}

#[test]
fn every_golden_fixture_is_byte_identical_with_the_recorder_installed() {
    obs::install();

    // Fixed-trials fixtures (the 26 per-pair builtins).
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.trials = 2;
        assert_eq!(
            rendered_rows(&scenario),
            fixture(&format!("{name}.jsonl")),
            "`{name}` rows drifted under observation"
        );
    }

    // The transitions-stepping pin.
    let mut scenario = builtin("edge_vs_n")
        .expect("registry consistent")
        .scaled(SCALE);
    scenario.trials = 2;
    for sub in &mut scenario.substrates {
        if let Substrate::Edge { stepping, .. } = sub {
            *stepping = SteppingKind::Transitions;
        }
    }
    assert_eq!(
        rendered_rows(&scenario),
        fixture("edge_vs_n.transitions.jsonl"),
        "transitions-stepping rows drifted under observation"
    );

    // Adaptive-precision fixtures.
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.precision = Precision::TargetStderr {
            eps: 0.5,
            min_trials: 2,
            max_trials: 4,
        };
        assert_eq!(
            rendered_rows(&scenario),
            fixture(&format!("{name}.adaptive.jsonl")),
            "`{name}` adaptive rows drifted under observation"
        );
    }

    // The runs above must actually have been observed — a recorder that
    // silently stopped recording would make the byte-identity checks
    // vacuous.
    let snap = obs::snapshot();
    assert!(
        snap.counter("trials") > 0,
        "no trials recorded: instrumentation is dark"
    );
    assert!(snap.counter("rounds") > 0, "no rounds recorded");
    assert!(snap.counter("rng_draws") > 0, "no RNG draws recorded");
    assert!(
        snap.counter("edge_births") > 0 && snap.counter("edge_deaths") > 0,
        "no edge flips recorded"
    );
    assert!(
        snap.counter("bucket_scan_visits") > 0,
        "no geometric bucket scans recorded"
    );
    assert!(
        snap.counter("delta_rounds") > 0,
        "no snapshot delta rounds recorded"
    );
    let report = snap.render_report();
    assert!(report.contains("trials"), "report misses trials: {report}");

    // ——— The same fixtures once more, through the *whole* observability
    // stack at once: a 2-worker process pool with metrics shipping, a trace
    // journal, and progress forced on. Workers run with their own recorders;
    // the coordinator merges shipped deltas — and none of it may move a row
    // byte. ———
    std::env::set_var("MEG_PROGRESS_FORCE", "1");
    let trace_path = std::env::temp_dir().join(format!(
        "meg-golden-observed-trace-{}.json",
        std::process::id()
    ));

    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.trials = 2;
        let (rows, report) = sharded_observed_rows(&scenario, &trace_path);
        let expected = fixture(&format!("{name}.jsonl"));
        assert_eq!(
            rows, expected,
            "`{name}` rows drifted under workers + shipping + trace + progress"
        );

        // Worker-side counters must arrive and be nonzero once merged.
        assert_eq!(report.worker_metrics.len(), 2, "one snapshot per lane");
        let mut merged = meg_obs::MetricsSnapshot::empty();
        for lane in &report.worker_metrics {
            merged.merge(lane);
        }
        // `trials` is the one counter every builtin records (some sweeps
        // never flood, some never touch an edge chain).
        assert!(
            merged.counter("trials") > 0,
            "`{name}`: merged worker counters are zero — shipping is dark"
        );

        // The trace journal must be valid trace-event JSON with at least one
        // complete-phase span per cell (worker lanes emit one "X" per item).
        let doc = Json::parse(&std::fs::read_to_string(&trace_path).unwrap())
            .unwrap_or_else(|e| panic!("`{name}` trace is not valid JSON: {e:?}"));
        let spans = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(|events| {
                events
                    .iter()
                    .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
                    .count()
            })
            .unwrap_or(0);
        assert!(
            spans >= expected.lines().count(),
            "`{name}` trace has {spans} complete spans for {} cells",
            expected.lines().count()
        );
    }

    // Adaptive fixtures exercise the Batch protocol path (and the
    // coordinator's doubling instants) under the same full stack.
    for name in builtin_names() {
        let mut scenario = builtin(name).expect("registry consistent").scaled(SCALE);
        scenario.precision = Precision::TargetStderr {
            eps: 0.5,
            min_trials: 2,
            max_trials: 4,
        };
        let (rows, _) = sharded_observed_rows(&scenario, &trace_path);
        assert_eq!(
            rows,
            fixture(&format!("{name}.adaptive.jsonl")),
            "`{name}` adaptive rows drifted under workers + shipping + trace + progress"
        );
    }

    // And the transitions-stepping pin.
    let mut scenario = builtin("edge_vs_n")
        .expect("registry consistent")
        .scaled(SCALE);
    scenario.trials = 2;
    for sub in &mut scenario.substrates {
        if let Substrate::Edge { stepping, .. } = sub {
            *stepping = SteppingKind::Transitions;
        }
    }
    let (rows, _) = sharded_observed_rows(&scenario, &trace_path);
    assert_eq!(
        rows,
        fixture("edge_vs_n.transitions.jsonl"),
        "transitions-stepping rows drifted under workers + shipping + trace + progress"
    );

    std::fs::remove_file(&trace_path).ok();
    std::env::remove_var("MEG_PROGRESS_FORCE");
    obs::uninstall();
}
