//! Property tests for the metrics monoid and its JSON codec: `merge` is
//! associative and commutative with `MetricsSnapshot::empty()` as identity
//! (all-integer storage makes this *exact*, not approximate), and
//! `snapshot_to_json` / `snapshot_from_json` round-trip losslessly —
//! including empty and saturated histograms and values beyond 2^53, which
//! travel as decimal strings.

use meg_engine::metrics::{snapshot_from_json, snapshot_to_json};
use meg_engine::Json;
use meg_obs::{hist_bucket, MetricsSnapshot};
use proptest::prelude::*;

/// Builds a reachable snapshot from raw material: counter values, plus
/// per-gauge and per-span sample lists folded exactly the way the live
/// recorder folds them.
fn build_snapshot(
    counters: Vec<u64>,
    gauge_samples: Vec<Vec<u64>>,
    span_samples: Vec<Vec<u64>>,
) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::empty();
    for (slot, v) in s.counters.iter_mut().zip(counters) {
        slot.1 = v;
    }
    for (g, samples) in s.gauges.iter_mut().zip(gauge_samples) {
        for v in samples {
            g.count += 1;
            g.sum += v;
            g.min = if g.count == 1 { v } else { g.min.min(v) };
            g.max = g.max.max(v);
        }
    }
    for (sp, samples) in s.spans.iter_mut().zip(span_samples) {
        for ns in samples {
            sp.count += 1;
            sp.total_ns += ns;
            sp.min_ns = if sp.count == 1 { ns } else { sp.min_ns.min(ns) };
            sp.max_ns = sp.max_ns.max(ns);
            sp.hist[hist_bucket(ns)] += 1;
        }
    }
    s
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    // Bounds keep three-way merges clear of u64 overflow while still
    // crossing the 2^53 Num/Str boundary of the JSON codec.
    let counters = proptest::collection::vec(0u64..=(u64::MAX >> 2), 16);
    let samples =
        || proptest::collection::vec(proptest::collection::vec(0u64..=(u64::MAX >> 3), 0..6), 8);
    (counters, samples(), samples()).prop_map(|(c, g, s)| build_snapshot(c, g, s))
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn empty_is_the_merge_identity(a in arb_snapshot()) {
        prop_assert_eq!(merged(&a, &MetricsSnapshot::empty()), a.clone());
        prop_assert_eq!(merged(&MetricsSnapshot::empty(), &a), a);
    }

    #[test]
    fn json_round_trip_is_lossless(a in arb_snapshot()) {
        // Through the rendered text, not just the Json tree: the wire format
        // is what the worker protocol actually ships.
        let text = snapshot_to_json(&a).render();
        let back = snapshot_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn merging_round_tripped_halves_equals_merging_originals(
        a in arb_snapshot(),
        b in arb_snapshot(),
    ) {
        // The coordinator merges *decoded* snapshots; codec and monoid must
        // commute for the sweep-wide totals to be exact.
        let via_wire = merged(
            &snapshot_from_json(&snapshot_to_json(&a)).unwrap(),
            &snapshot_from_json(&snapshot_to_json(&b)).unwrap(),
        );
        prop_assert_eq!(via_wire, merged(&a, &b));
    }
}

#[test]
fn empty_and_saturated_histograms_round_trip() {
    // Identity element: renders to a (near-)empty document and comes back.
    let empty = MetricsSnapshot::empty();
    let back = snapshot_from_json(&snapshot_to_json(&empty)).unwrap();
    assert_eq!(back, empty);

    // Saturated: u64::MAX lands in the open-ended top bucket, and every
    // integer field survives the Str spelling beyond 2^53.
    let mut sat = MetricsSnapshot::empty();
    for slot in sat.counters.iter_mut() {
        slot.1 = u64::MAX;
    }
    let span = &mut sat.spans[0];
    span.count = 1;
    span.total_ns = u64::MAX;
    span.min_ns = u64::MAX;
    span.max_ns = u64::MAX;
    span.hist[hist_bucket(u64::MAX)] = 1;
    let text = snapshot_to_json(&sat).render();
    let back = snapshot_from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, sat);
    assert_eq!(
        back.spans[0].percentile_ns(0.99),
        sat.spans[0].percentile_ns(0.99)
    );
}

#[test]
fn unknown_names_are_ignored_and_malformed_values_rejected() {
    // Forward compatibility: a newer worker may ship counters this binary
    // does not know; they must not poison the merge.
    let doc = Json::parse(r#"{"counters":{"from_the_future":7}}"#).unwrap();
    assert_eq!(snapshot_from_json(&doc).unwrap(), MetricsSnapshot::empty());
    let bad = Json::parse(r#"{"counters":{"trials":-1}}"#).unwrap();
    assert!(snapshot_from_json(&bad).is_err());
}
