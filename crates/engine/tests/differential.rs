//! Differential test: state-machine protocol engine vs the pre-refactor
//! flooding loops.
//!
//! The spreading protocols were ported from hand-rolled `while` loops to the
//! [`meg_core::protocols::ProtocolMachine`] state-machine trait. The port
//! promises **byte identity**: same RNG draw order, same round accounting,
//! same rows. This test keeps a verbatim copy of the pre-refactor loops
//! (compiled only under `cfg(test)` by virtue of living in a test target)
//! and replays a randomized scenario grid through both paths — both edge
//! engines, dense `PerPair` and sub-linear `Transitions` stepping, the
//! geometric grid-walk substrate, and a static baseline, under fixed *and*
//! adaptive precision — asserting the aggregated rows come out identical
//! down to their JSON rendering.

use meg_core::evolving::{EvolvingGraph, FrozenGraph};
use meg_core::protocols::ProtocolResult;
use meg_edge::{DenseEdgeMeg, SparseEdgeMeg};
use meg_engine::run::{
    adaptive_stop, aggregate_row, cell_seed, resolve_cells, run_cell, Cell, ResolvedSubstrate,
    TrialOutcome,
};
use meg_engine::scenario::{
    EdgeEngine, InitKind, MobilityKind, MoveRadiusSpec, PHatSpec, Precision, Protocol, RadiusSpec,
    Scenario, StaticKind, SteppingKind, Substrate, Sweep,
};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_graph::{generators, visit_neighbors, Node, NodeSet};
use meg_stats::{precision_checkpoints, run_trials, run_trials_scheduled};
use proptest::prelude::*;
use proptest::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

// --- the pre-refactor loops, verbatim --------------------------------------

/// Pre-refactor probabilistic flooding (`beta = 1` is plain flooding).
fn legacy_probabilistic_flood<M, R>(
    meg: &mut M,
    source: Node,
    beta: f64,
    max_rounds: u64,
    rng: &mut R,
) -> ProtocolResult
where
    M: EvolvingGraph,
    R: Rng,
{
    let n = meg.num_nodes();
    let mut informed = NodeSet::singleton(n, source);
    let mut informed_per_round = vec![informed.len()];
    let mut messages = 0u64;
    let mut rounds = 0u64;
    let mut completed = informed.is_full();
    let mut newly: Vec<Node> = Vec::new();
    while rounds < max_rounds && !completed {
        let snapshot = meg.advance();
        newly.clear();
        for u in informed.iter() {
            if beta < 1.0 && !rng.gen_bool(beta) {
                continue;
            }
            visit_neighbors(snapshot, u, |v| {
                messages += 1;
                if !informed.contains(v) {
                    newly.push(v);
                }
            });
        }
        for &v in &newly {
            informed.insert(v);
        }
        rounds += 1;
        informed_per_round.push(informed.len());
        completed = informed.is_full();
    }
    ProtocolResult {
        completed,
        rounds,
        informed_per_round,
        messages_sent: messages,
    }
}

/// Pre-refactor parsimonious flooding.
fn legacy_parsimonious_flood<M>(
    meg: &mut M,
    source: Node,
    active_rounds: u64,
    max_rounds: u64,
) -> ProtocolResult
where
    M: EvolvingGraph,
{
    let n = meg.num_nodes();
    let mut informed = NodeSet::singleton(n, source);
    let mut remaining_active: Vec<u64> = vec![0; n];
    remaining_active[source as usize] = active_rounds;
    let mut informed_per_round = vec![informed.len()];
    let mut messages = 0u64;
    let mut rounds = 0u64;
    let mut completed = informed.is_full();
    let mut newly: Vec<Node> = Vec::new();
    while rounds < max_rounds && !completed {
        let snapshot = meg.advance();
        newly.clear();
        let mut any_active = false;
        for u in informed.iter() {
            if remaining_active[u as usize] == 0 {
                continue;
            }
            any_active = true;
            remaining_active[u as usize] -= 1;
            visit_neighbors(snapshot, u, |v| {
                messages += 1;
                if !informed.contains(v) {
                    newly.push(v);
                }
            });
        }
        for &v in &newly {
            if informed.insert(v) {
                remaining_active[v as usize] = active_rounds;
            }
        }
        rounds += 1;
        informed_per_round.push(informed.len());
        completed = informed.is_full();
        if !completed && !any_active {
            break;
        }
    }
    ProtocolResult {
        completed,
        rounds,
        informed_per_round,
        messages_sent: messages,
    }
}

/// Pre-refactor push–pull gossip.
fn legacy_push_pull_gossip<M, R>(
    meg: &mut M,
    source: Node,
    max_rounds: u64,
    rng: &mut R,
) -> ProtocolResult
where
    M: EvolvingGraph,
    R: Rng,
{
    let n = meg.num_nodes();
    let mut informed = NodeSet::singleton(n, source);
    let mut informed_per_round = vec![informed.len()];
    let mut messages = 0u64;
    let mut rounds = 0u64;
    let mut completed = informed.is_full();
    let mut newly: Vec<Node> = Vec::new();
    while rounds < max_rounds && !completed {
        let snapshot = meg.advance();
        newly.clear();
        for u in 0..n as Node {
            let slice = snapshot.neighbors(u);
            if slice.is_empty() {
                continue;
            }
            let v = slice[rng.gen_range(0..slice.len())];
            messages += 1;
            let u_informed = informed.contains(u);
            let v_informed = informed.contains(v);
            if u_informed && !v_informed {
                newly.push(v); // push
            } else if v_informed && !u_informed {
                newly.push(u); // pull
            }
        }
        for &v in &newly {
            informed.insert(v);
        }
        rounds += 1;
        informed_per_round.push(informed.len());
        completed = informed.is_full();
    }
    ProtocolResult {
        completed,
        rounds,
        informed_per_round,
        messages_sent: messages,
    }
}

// --- legacy trial execution, mirroring the engine's `execute_trial` --------

fn legacy_drive<M: EvolvingGraph>(
    meg: &mut M,
    protocol: &Protocol,
    source: Node,
    budget: u64,
    rng: &mut ChaCha8Rng,
) -> TrialOutcome {
    let r = match protocol {
        Protocol::Flooding => legacy_probabilistic_flood(meg, source, 1.0, budget, rng),
        Protocol::Probabilistic { beta } => {
            legacy_probabilistic_flood(meg, source, *beta, budget, rng)
        }
        Protocol::Parsimonious { active_rounds } => {
            legacy_parsimonious_flood(meg, source, *active_rounds, budget)
        }
        Protocol::PushPull => legacy_push_pull_gossip(meg, source, budget, rng),
        other => unreachable!("no legacy path for `{}`", other.label()),
    };
    TrialOutcome {
        completed: r.completed,
        value: r.rounds as f64,
        messages: r.messages_sent as f64,
    }
}

/// Legacy replica of the engine's trial construction: same sub-seed draw,
/// same substrate constructors, same source choice.
fn legacy_execute_trial(cell: &Cell, rng: &mut ChaCha8Rng) -> TrialOutcome {
    match &cell.substrate {
        ResolvedSubstrate::Edge {
            engine,
            params,
            init,
            stepping,
            ..
        } => {
            let sub_seed: u64 = rng.gen();
            match engine {
                EdgeEngine::Sparse => {
                    let mut meg = SparseEdgeMeg::with_stepping(*params, *init, *stepping, sub_seed);
                    legacy_drive(&mut meg, &cell.protocol, 0, cell.round_budget, rng)
                }
                EdgeEngine::Dense => {
                    let mut meg = DenseEdgeMeg::with_stepping(*params, *init, *stepping, sub_seed);
                    legacy_drive(&mut meg, &cell.protocol, 0, cell.round_budget, rng)
                }
            }
        }
        ResolvedSubstrate::Geometric {
            n,
            mobility: MobilityKind::GridWalk,
            radius,
            move_radius,
        } => {
            let sub_seed: u64 = rng.gen();
            let mut meg = GeometricMeg::from_params(
                GeometricMegParams::new(*n, *move_radius, *radius),
                sub_seed,
            );
            legacy_drive(&mut meg, &cell.protocol, 0, cell.round_budget, rng)
        }
        ResolvedSubstrate::Static { n, p_hat, .. } => {
            let graph = generators::erdos_renyi(*n, *p_hat, rng);
            let mut meg = FrozenGraph::new(graph);
            legacy_drive(&mut meg, &cell.protocol, 0, cell.round_budget, rng)
        }
        other => unreachable!("substrate {other:?} not generated by this test"),
    }
}

/// Runs the cell's trials through the legacy path under the scenario's
/// precision policy — the exact schedule `run_cell_outcomes` uses.
fn legacy_cell_outcomes(scenario: &Scenario, cell: &Cell, seed: u64) -> Vec<TrialOutcome> {
    match scenario.precision {
        Precision::FixedTrials => {
            run_trials(seed, cell.trials, |_i, rng| legacy_execute_trial(cell, rng))
        }
        Precision::TargetStderr {
            eps,
            min_trials,
            max_trials,
        } => run_trials_scheduled(
            seed,
            &precision_checkpoints(min_trials, max_trials),
            |_i, rng| legacy_execute_trial(cell, rng),
            |outcomes| adaptive_stop(eps, outcomes),
        ),
    }
}

// --- randomized scenario grid ----------------------------------------------

fn arb_spreading_protocol() -> impl Strategy<Value = Protocol> {
    (0u64..4, 0.05f64..=1.0, 1u64..4).prop_map(|(kind, beta, k)| match kind {
        0 => Protocol::Flooding,
        1 => Protocol::Probabilistic { beta },
        2 => Protocol::Parsimonious { active_rounds: k },
        _ => Protocol::PushPull,
    })
}

fn arb_substrate() -> impl Strategy<Value = Substrate> {
    (0u64..6, 8usize..40, 0.5f64..3.0, 0.2f64..0.8).prop_map(|(kind, n, factor, q)| match kind {
        // Both edge engines × both stepping modes.
        0..=3 => Substrate::Edge {
            n,
            engine: if kind < 2 {
                EdgeEngine::Sparse
            } else {
                EdgeEngine::Dense
            },
            p_hat: PHatSpec::LogFactor(factor),
            q,
            init: InitKind::Stationary,
            stepping: if kind % 2 == 0 {
                SteppingKind::PerPair
            } else {
                SteppingKind::Transitions
            },
        },
        4 => Substrate::Geometric {
            n,
            mobility: MobilityKind::GridWalk,
            radius: RadiusSpec::ThresholdFactor(factor),
            move_radius: MoveRadiusSpec::RadiusFraction(0.5),
        },
        _ => Substrate::Static {
            n,
            graph: StaticKind::ErdosRenyi {
                p_hat: PHatSpec::LogFactor(factor),
            },
        },
    })
}

fn arb_precision() -> impl Strategy<Value = Precision> {
    (proptest::bool::ANY, 0.1f64..2.0).prop_map(|(fixed, eps)| {
        if fixed {
            Precision::FixedTrials
        } else {
            Precision::TargetStderr {
                eps,
                min_trials: 2,
                max_trials: 5,
            }
        }
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        arb_substrate(),
        arb_spreading_protocol(),
        2usize..4,
        30u64..120,
        arb_precision(),
        0u64..1000,
    )
        .prop_map(
            |(substrate, protocol, trials, round_budget, precision, tag)| Scenario {
                name: format!("differential_{tag}"),
                description: "state machine vs legacy loop".into(),
                substrates: vec![substrate],
                protocols: vec![protocol],
                sweep: Sweep::none(),
                trials,
                round_budget,
                precision,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The state-machine engine and the pre-refactor loops produce
    /// byte-identical rows for every spreading protocol on every substrate
    /// family, under both precision policies.
    #[test]
    fn machine_rows_equal_legacy_rows(scenario in arb_scenario(), master in 0u64..u64::MAX) {
        let cells = resolve_cells(&scenario)
            .map_err(|e| TestCaseError::fail(format!("resolve failed: {e}")))?;
        for cell in &cells {
            let seed = cell_seed(&scenario.name, master, cell.index);
            let machine_row = run_cell(&scenario, cell, seed);
            let legacy = legacy_cell_outcomes(&scenario, cell, seed);
            let legacy_row = aggregate_row(&scenario, cell, seed, &legacy);
            prop_assert_eq!(&machine_row, &legacy_row);
            // Byte identity, not just structural equality.
            prop_assert_eq!(
                machine_row.to_json().render(),
                legacy_row.to_json().render()
            );
        }
    }
}
