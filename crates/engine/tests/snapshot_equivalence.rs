//! Property test: the flat-CSR [`SnapshotBuf`] snapshot every substrate now
//! produces is edge-set-identical (and neighbor-order-identical) to the
//! `AdjacencyList` construction it replaced.
//!
//! 200 random `(seed, params)` draws spread over all substrate families —
//! dense edge-MEG, sparse edge-MEG, geometric-MEG on the square and on the
//! torus, the adversarial constructions, and the frozen/scheduled adapters.
//! For every drawn snapshot we check, as applicable:
//!
//! * **round trip** — replaying the snapshot's edge stream into an
//!   `AdjacencyList` (the old representation) reproduces exactly the same
//!   per-node neighbor slices, so the CSR stable counting sort is
//!   behaviourally identical to per-node pushes;
//! * **simplicity** — rebuilding through the deduplicating
//!   `AdjacencyList::from_edges` keeps the edge count, i.e. the snapshot has
//!   no self-loops and no duplicate edges;
//! * **independent reference** — geometric snapshots equal the O(n²)
//!   brute-force radius graph of the very positions they were built from, and
//!   frozen/scheduled snapshots equal their source graphs including order.

use meg_core::evolving::{EvolvingGraph, FrozenGraph, ScheduledGraph};
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use meg_geometric::radius_graph::radius_graph_brute_force;
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_graph::{generators, AdjacencyList, Graph, Node, SnapshotBuf};
use meg_mobility::{Mobility, TorusWalkers};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The old-representation invariants every snapshot must satisfy.
fn assert_snapshot_matches_adjacency_semantics(buf: &SnapshotBuf, context: &str) {
    let n = buf.num_nodes();
    // Replay the staged edge stream into the legacy structure: neighbor
    // slices must agree node-for-node, in order.
    let replayed = buf.to_adjacency();
    assert_eq!(replayed.num_edges(), buf.num_edges(), "{context}");
    for u in 0..n as Node {
        assert_eq!(
            buf.neighbors(u),
            replayed.neighbors(u),
            "{context}: neighbor slice of {u}"
        );
        assert_eq!(
            Graph::degree(buf, u),
            replayed.degree(u),
            "{context}: degree of {u}"
        );
    }
    // Rebuilding through the deduplicating constructor keeps the count:
    // no duplicate edges, no self-loops.
    let dedup = AdjacencyList::from_edges(n, buf.edges());
    assert_eq!(
        dedup.num_edges(),
        buf.num_edges(),
        "{context}: snapshot is not simple"
    );
}

fn assert_same_edge_set(buf: &SnapshotBuf, reference: &AdjacencyList, context: &str) {
    assert_eq!(buf.num_nodes(), reference.num_nodes(), "{context}");
    assert_eq!(buf.num_edges(), reference.num_edges(), "{context}");
    for u in 0..buf.num_nodes() as Node {
        let mut a = buf.neighbors(u).to_vec();
        let mut b = reference.neighbors(u).to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{context}: neighbors of {u}");
    }
}

#[test]
fn snapshots_are_edge_set_identical_to_the_adjacency_construction() {
    let mut draws = 0usize;
    for seed in 0..25u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FF_EE00 + seed);

        // --- dense edge-MEG ---------------------------------------------
        {
            let n = rng.gen_range(8..80usize);
            let p_hat = rng.gen_range(0.01..0.5);
            let q = rng.gen_range(0.01..0.9);
            let params = EdgeMegParams::with_stationary(n, p_hat, q);
            let mut meg = DenseEdgeMeg::stationary(params, seed);
            for step in 0..3 {
                let alive_before = meg.alive_edges();
                let snap = meg.advance();
                assert_eq!(
                    snap.num_edges(),
                    alive_before,
                    "dense seed {seed} step {step}: snapshot != alive set"
                );
                assert_snapshot_matches_adjacency_semantics(snap, "dense");
            }
            draws += 1;
        }

        // --- sparse edge-MEG --------------------------------------------
        {
            let n = rng.gen_range(20..200usize);
            let p_hat = rng.gen_range(0.005..0.2);
            let q = rng.gen_range(0.05..0.9);
            let params = EdgeMegParams::with_stationary(n, p_hat, q);
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            for step in 0..3 {
                let alive_before = meg.alive_edges();
                let snap = meg.advance();
                assert_eq!(
                    snap.num_edges(),
                    alive_before,
                    "sparse seed {seed} step {step}: snapshot != alive set"
                );
                assert_snapshot_matches_adjacency_semantics(snap, "sparse");
            }
            draws += 1;
        }

        // --- geometric-MEG, square metric (grid walk) -------------------
        {
            let n = rng.gen_range(10..150usize);
            let radius = rng.gen_range(0.5..(n as f64).sqrt());
            let params = GeometricMegParams {
                n,
                move_radius: rng.gen_range(0.5..3.0),
                transmission_radius: radius.max(1.1),
                resolution: 1.0,
            };
            let mut meg = GeometricMeg::from_params(params, seed);
            for _ in 0..2 {
                // Positions *before* advance are what the snapshot is built
                // from (advance builds, then moves).
                let positions = meg.mobility().positions().to_vec();
                let region = meg.region();
                let snap = meg.advance();
                let brute =
                    radius_graph_brute_force(&positions, params.transmission_radius, region);
                assert_same_edge_set(snap, &brute, "geometric/square");
                assert_snapshot_matches_adjacency_semantics(snap, "geometric/square");
            }
            draws += 1;
        }

        // --- geometric-MEG, torus metric (walkers) ----------------------
        {
            let n = rng.gen_range(10..120usize);
            let side = (n as f64).sqrt().max(3.0);
            let radius = rng.gen_range(0.4..side);
            let walkers = TorusWalkers::new(n, side, rng.gen_range(0.2..2.0), 1.0, &mut rng);
            let mut meg = GeometricMeg::new(walkers, radius, seed);
            let positions = meg.mobility().positions().to_vec();
            let region = meg.region();
            let snap = meg.advance();
            let brute = radius_graph_brute_force(&positions, radius, region);
            assert_same_edge_set(snap, &brute, "geometric/torus");
            assert_snapshot_matches_adjacency_semantics(snap, "geometric/torus");
            draws += 1;
        }

        // --- adversarial constructions ----------------------------------
        {
            let n = rng.gen_range(4..40usize);
            let mut star = meg_core::adversarial::RotatingStar::new(n.max(2), seed);
            let snap = star.advance();
            assert_eq!(snap.num_edges(), n.max(2) - 1);
            assert_snapshot_matches_adjacency_semantics(snap, "rotating star");

            let even = {
                let n = n.max(4);
                n + n % 2
            };
            let mut bridge = meg_core::adversarial::RotatingBridge::new(even);
            let snap = bridge.advance();
            let half = even / 2;
            assert_eq!(snap.num_edges(), half * (half - 1) + 1);
            assert_snapshot_matches_adjacency_semantics(snap, "rotating bridge");
            draws += 2;
        }

        // --- frozen / scheduled adapters --------------------------------
        {
            let n = rng.gen_range(4..60usize);
            let graph = generators::erdos_renyi(n, rng.gen_range(0.05..0.6), &mut rng);
            let mut frozen = FrozenGraph::new(graph.clone());
            let snap = frozen.advance();
            assert_eq!(snap.num_edges(), graph.num_edges());
            for u in 0..n as Node {
                assert_eq!(
                    snap.neighbors(u),
                    graph.neighbors(u),
                    "frozen adapter must preserve neighbor order"
                );
            }

            let other = generators::cycle(n);
            let mut scheduled = ScheduledGraph::new(vec![graph.clone(), other.clone()]);
            let first = scheduled.advance();
            assert_eq!(first.num_edges(), graph.num_edges());
            let second = scheduled.advance();
            assert_eq!(second.num_edges(), other.num_edges());
            for u in 0..n as Node {
                assert_eq!(second.neighbors(u), other.neighbors(u));
            }
            draws += 2;
        }
    }
    assert_eq!(draws, 25 * 8, "expected 200 random draws");
}
