//! Statistical gates for the new protocol families, built on
//! [`meg_stats::gof`] — multi-trial distributional assertions, not
//! single-seed spot checks.
//!
//! * **SIS epidemic threshold**: below the threshold the infection goes
//!   extinct almost immediately; above it the process is endemic and runs
//!   (censored) to the round budget. The two completion-time distributions
//!   must be statistically distinguishable, and the below-threshold cells
//!   must show near-certain extinction.
//! * **SIR final-size stability**: the final-size distribution is a
//!   property of the parameters, not of the seed — two independent seed
//!   batches must be KS-indistinguishable.
//! * **Rumor dynamism-helps** (arXiv:1302.3828 regime): on a sparse
//!   sub-connectivity substrate, push-only rumor spreading completes under
//!   edge-Markovian dynamics but censors on a static graph of matched
//!   density — dynamic completion times must be stochastically smaller and
//!   KS-distinguishable from the static ones.

use meg_core::evolving::FrozenGraph;
use meg_core::protocols::{run_machine, EpidemicMachine};
use meg_engine::builtin;
use meg_engine::run::{cell_seed, resolve_cells, run_cell_range, Cell};
use meg_engine::scenario::Scenario;
use meg_graph::generators;
use meg_stats::{ks_two_sample, run_trials, Alpha};
use rand_chacha::ChaCha8Rng;

const MASTER_SEED: u64 = 20260807;

/// Resolves a builtin at fixture scale with a tighter round budget (these
/// gates measure distribution shape, not the production budget).
fn scaled_cells(scenario: &mut Scenario, budget: u64) -> Vec<Cell> {
    scenario.round_budget = budget;
    resolve_cells(scenario).expect("builtin must resolve")
}

/// Runs `trials` trials of `cell` and returns each trial's observable
/// (completion round count; the budget for censored trials) plus the
/// completed count.
fn sample_cell(scenario: &Scenario, cell: &Cell, trials: usize) -> (Vec<f64>, usize) {
    let seed = cell_seed(&scenario.name, MASTER_SEED, cell.index);
    let outcomes = run_cell_range(cell, seed, 0, trials);
    let values: Vec<f64> = outcomes.iter().map(|o| o.value).collect();
    let completed = outcomes.iter().filter(|o| o.completed).count();
    (values, completed)
}

fn find_cell<'a>(cells: &'a [Cell], label_prefix: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.protocol.label().starts_with(label_prefix))
        .unwrap_or_else(|| panic!("no cell with protocol `{label_prefix}*`"))
}

#[test]
fn sis_goes_extinct_below_the_threshold_and_endemic_above_it() {
    let mut scenario = builtin::epidemic_threshold().scaled(0.1);
    let cells = scaled_cells(&mut scenario, 200);
    let below = find_cell(&cells, "sis(c=0.02");
    let above = find_cell(&cells, "sis(c=0.5");

    let trials = 40;
    let (below_values, below_extinct) = sample_cell(&scenario, below, trials);
    let (above_values, above_extinct) = sample_cell(&scenario, above, trials);

    // Below threshold: extinction is near-certain (a binomial with
    // p ≳ 0.97 makes ≥ 36/40 overwhelmingly likely; the seed is pinned so
    // the gate is deterministic).
    assert!(
        below_extinct >= trials - 4,
        "below-threshold SIS must go extinct: {below_extinct}/{trials} extinctions"
    );
    // Above threshold: the endemic regime persists to the budget in the
    // clear majority of trials.
    assert!(
        above_extinct <= trials / 4,
        "above-threshold SIS must be endemic: {above_extinct}/{trials} extinctions"
    );
    // And the two completion-time distributions are statistically
    // different — the threshold is a real phase transition, not noise.
    let ks = ks_two_sample(&below_values, &above_values, Alpha::P01)
        .expect("both samples are non-empty");
    assert!(
        !ks.pass,
        "SIS below/above threshold distributions must differ: D={} critical={}",
        ks.statistic, ks.critical
    );
}

#[test]
fn sir_final_size_distribution_is_stable_across_seed_batches() {
    // Two independent batches of SIR runs on freshly sampled Erdős–Rényi
    // graphs: the final-size distribution depends on (n, p, contagion,
    // duration) only, so the batches must be KS-indistinguishable.
    let batch = |master: u64| -> Vec<f64> {
        run_trials(master, 60, |_i, rng: &mut ChaCha8Rng| {
            let n = 60;
            let graph = generators::erdos_renyi(n, 0.1, rng);
            let mut meg = FrozenGraph::new(graph);
            let mut machine = EpidemicMachine::new(n, 0, 0.3, 2, None);
            run_machine(&mut meg, &mut machine, 1_000, rng);
            machine.final_size() as f64
        })
    };
    let a = batch(1001);
    let b = batch(2002);
    let ks = ks_two_sample(&a, &b, Alpha::P01).expect("non-empty batches");
    assert!(
        ks.pass,
        "SIR final size must not depend on the seed batch: D={} critical={}",
        ks.statistic, ks.critical
    );
    // Sanity: the epidemic actually spreads (mean final size well past the
    // seed node) — a degenerate all-ones distribution would pass KS
    // vacuously.
    let mean = a.iter().sum::<f64>() / a.len() as f64;
    assert!(mean > 5.0, "epidemic never spread: mean final size {mean}");
}

#[test]
fn endemic_sis_rows_report_censoring_instead_of_spinning() {
    // A never-completing process must terminate at the round budget and
    // surface the truncation in its row: zero completion rate, no rounds
    // summary (there is no completion time to summarize), but real message
    // traffic — the trials did run, they just never went extinct.
    use meg_engine::run::run_cell;
    let mut scenario = builtin::epidemic_threshold().scaled(0.1);
    let cells = scaled_cells(&mut scenario, 150);
    let endemic = find_cell(&cells, "sis(c=0.5");
    let seed = cell_seed(&scenario.name, MASTER_SEED, endemic.index);
    let row = run_cell(&scenario, endemic, seed);
    assert_eq!(
        row.completion_rate, 0.0,
        "endemic SIS must censor every trial"
    );
    assert!(
        row.rounds.is_none(),
        "a fully censored cell has no completion-time summary"
    );
    assert_eq!(row.trials, endemic.trials);
    assert!(
        row.mean_messages > 0.0,
        "censored trials still ran and sent messages"
    );
}

#[test]
fn rumor_completes_faster_under_dynamics_than_on_matched_static_graphs() {
    // The dynamism-helps regime: same n, same stationary edge density —
    // the dynamic substrate completes, the static one censors at the
    // budget. Asserted over a trial population via KS, not a single seed.
    let mut scenario = builtin::rumor_dynamism().scaled(0.1);
    let cells = scaled_cells(&mut scenario, 500);
    assert_eq!(cells.len(), 2, "rumor_dynamism is a two-cell comparison");
    let dynamic = &cells[0];
    let statique = &cells[1];
    assert_eq!(dynamic.substrate_label, "edge-sparse");
    assert_eq!(statique.substrate_label, "static-erdos_renyi");

    let trials = 40;
    let (dyn_values, dyn_completed) = sample_cell(&scenario, dynamic, trials);
    let (sta_values, sta_completed) = sample_cell(&scenario, statique, trials);

    // Direction: dynamic completes more often and in fewer rounds.
    assert!(
        dyn_completed > sta_completed,
        "dynamics must help completion: dynamic {dyn_completed}/{trials} vs static {sta_completed}/{trials}"
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&dyn_values) < mean(&sta_values),
        "dynamic mean rounds {} must beat static {}",
        mean(&dyn_values),
        mean(&sta_values)
    );
    // Distributional: the gap is statistically significant at α = 0.01.
    let ks = ks_two_sample(&dyn_values, &sta_values, Alpha::P01).expect("non-empty samples");
    assert!(
        !ks.pass,
        "dynamic and static completion-time distributions must differ: D={} critical={}",
        ks.statistic, ks.critical
    );
}
