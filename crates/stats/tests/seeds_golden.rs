//! Seed-hygiene contract for the scenario engine (and every other consumer of
//! `meg_stats::seeds`): per-trial RNG streams must be pairwise distinct, and
//! the derivation must stay **stable across releases** — the golden values
//! below pin the exact bit patterns, so any change to `splitmix64`,
//! `derive_seed`, or the ChaCha8 shim that would silently re-randomise (or
//! worse, alias) published sweep cells fails this suite.

use meg_stats::seeds::{derive_seed, labeled_seed, trial_rng};
use rand::Rng;
use std::collections::HashSet;

#[test]
fn trial_streams_are_pairwise_distinct() {
    // Seeds and first draws across a grid of (master, index) pairs: no
    // collisions anywhere, so no two sweep cells can share randomness.
    let masters = [0u64, 1, 2009, u64::MAX, 0xDEAD_BEEF];
    let mut seeds = HashSet::new();
    let mut first_draws = HashSet::new();
    for &m in &masters {
        for i in 0..200u64 {
            assert!(
                seeds.insert(derive_seed(m, i)),
                "seed collision at master={m}, index={i}"
            );
            let draw: u64 = trial_rng(m, i).gen();
            assert!(
                first_draws.insert(draw),
                "first-draw collision at master={m}, index={i}"
            );
        }
    }
    assert_eq!(seeds.len(), masters.len() * 200);
}

#[test]
fn adjacent_masters_and_indices_do_not_alias() {
    // trial_rng(s, i+1) must not equal trial_rng(s+1, i) or any other nearby
    // lattice point — the mix must not be translation-invariant.
    let mut draws = HashSet::new();
    for master in 0..50u64 {
        for index in 0..50u64 {
            let draw: u64 = trial_rng(master, index).gen();
            assert!(
                draws.insert(draw),
                "aliased stream at master={master}, index={index}"
            );
        }
    }
}

#[test]
fn derive_seed_golden_values() {
    // GOLDEN: pinned at the introduction of the scenario engine. If these
    // move, every recorded experiment row's provenance silently changes —
    // bump only with an explicit compatibility note in CHANGES.md.
    assert_eq!(derive_seed(2009, 0), GOLDEN_DERIVED[0]);
    assert_eq!(derive_seed(2009, 1), GOLDEN_DERIVED[1]);
    assert_eq!(derive_seed(2009, 2), GOLDEN_DERIVED[2]);
    assert_eq!(derive_seed(2009, 3), GOLDEN_DERIVED[3]);
    assert_eq!(derive_seed(0, 0), GOLDEN_DERIVED[4]);
    assert_eq!(derive_seed(u64::MAX, u64::MAX), GOLDEN_DERIVED[5]);
}

#[test]
fn trial_rng_first_draw_golden_values() {
    // GOLDEN: first u64 drawn from the per-trial ChaCha8 streams.
    for (i, &expected) in GOLDEN_FIRST_DRAWS.iter().enumerate() {
        let got: u64 = trial_rng(2009, i as u64).gen();
        assert_eq!(
            got, expected,
            "trial_rng(2009, {i}) first draw drifted from the golden value"
        );
    }
}

#[test]
fn labeled_seed_golden_values() {
    assert_eq!(labeled_seed(2009, "edge_vs_n"), GOLDEN_LABELED[0]);
    assert_eq!(labeled_seed(2009, "geo_vs_radius"), GOLDEN_LABELED[1]);
    assert_eq!(labeled_seed(0, ""), 0, "empty label must be the identity");
}

// Captured from the implementation at the time the contract was frozen; see
// the note in `derive_seed_golden_values`.
const GOLDEN_DERIVED: [u64; 6] = [
    0xF637_7811_9B23_EEBD,
    0x74F2_4214_7248_30E1,
    0x1093_4EED_D830_E6B6,
    0x03D6_94EE_F9A8_E2D0,
    0x246E_8D98_2BB2_B96C,
    0x2FB1_B71B_567B_A868,
];
const GOLDEN_FIRST_DRAWS: [u64; 4] = [
    0x47C1_7AB8_5778_9114,
    0x8F9D_D173_D9AD_25CF,
    0xF36F_20B1_DABB_B231,
    0xACE2_F49A_623A_332C,
];
const GOLDEN_LABELED: [u64; 2] = [0x342F_11E2_121C_E7B4, 0xBDE3_4EE8_ABA6_AF27];

#[test]
#[ignore = "generator for the golden constants above; run with --ignored --nocapture"]
fn print_golden_values() {
    let derived = [
        derive_seed(2009, 0),
        derive_seed(2009, 1),
        derive_seed(2009, 2),
        derive_seed(2009, 3),
        derive_seed(0, 0),
        derive_seed(u64::MAX, u64::MAX),
    ];
    let draws: Vec<u64> = (0..4).map(|i| trial_rng(2009, i).gen()).collect();
    let labeled = [
        labeled_seed(2009, "edge_vs_n"),
        labeled_seed(2009, "geo_vs_radius"),
    ];
    println!("GOLDEN_DERIVED: {derived:#X?}");
    println!("GOLDEN_FIRST_DRAWS: {draws:#X?}");
    println!("GOLDEN_LABELED: {labeled:#X?}");
}
