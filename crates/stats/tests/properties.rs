//! Property-based tests for the statistics substrate.

use meg_stats::ci::mean_confidence_interval;
use meg_stats::fit::{linear_fit, power_law_fit, proportional_fit};
use meg_stats::histogram::Histogram;
use meg_stats::quantile::{quantile, quantiles};
use meg_stats::seeds::{derive_seed, splitmix64};
use meg_stats::{run_trials, run_trials_sequential, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn summary_is_order_invariant_and_bounded(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s1 = Summary::of(&xs).unwrap();
        xs.reverse();
        let s2 = Summary::of(&xs).unwrap();
        prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        prop_assert!((s1.variance - s2.variance).abs() < 1e-3);
        prop_assert_eq!(s1.min, s2.min);
        prop_assert_eq!(s1.max, s2.max);
        prop_assert!(s1.min <= s1.median && s1.median <= s1.max);
        prop_assert!(s1.min <= s1.mean && s1.mean <= s1.max);
        prop_assert!(s1.variance >= 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_within_range(xs in proptest::collection::vec(-1e3f64..1e3, 1..80)) {
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let values = quantiles(&xs, &qs).unwrap();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((values[0] - min).abs() < 1e-12);
        prop_assert!((values[6] - max).abs() < 1e-12);
        prop_assert_eq!(quantile(&xs, 0.5), Some(values[3]));
    }

    #[test]
    fn confidence_interval_contains_the_sample_mean(xs in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
        let s = Summary::of(&xs).unwrap();
        let ci = mean_confidence_interval(&xs, 0.95).unwrap();
        prop_assert!(ci.contains(s.mean));
        prop_assert!(ci.lower <= ci.upper);
        prop_assert!((ci.mean - s.mean).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(slope in -50.0f64..50.0, intercept in -50.0f64..50.0, n in 3usize..40) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn power_law_fit_recovers_exact_power_laws(exponent in -2.0f64..2.0, constant in 0.1f64..10.0, n in 3usize..30) {
        let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| constant * x.powf(exponent)).collect();
        let fit = power_law_fit(&xs, &ys).unwrap();
        prop_assert!((fit.exponent - exponent).abs() < 1e-6);
        prop_assert!((fit.constant - constant).abs() / constant < 1e-6);
    }

    #[test]
    fn proportional_fit_matches_linear_fit_through_origin(slope in 0.1f64..20.0, n in 3usize..30) {
        let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x).collect();
        let fit = proportional_fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-9);
        prop_assert!(fit.max_relative_deviation < 1e-9);
    }

    #[test]
    fn histogram_conserves_samples(xs in proptest::collection::vec(0.0f64..100.0, 1..200), bins in 1usize..20) {
        let h = Histogram::with_range(&xs, bins, 0.0, 100.0).unwrap();
        prop_assert_eq!(h.total() + h.outliers, xs.len());
        prop_assert_eq!(h.counts.len(), bins);
        prop_assert_eq!(h.outliers, 0, "all samples lie inside the range");
    }

    #[test]
    fn seed_derivation_is_deterministic_and_collision_resistant(master in 0u64..u64::MAX, count in 2u64..200) {
        let seeds: Vec<u64> = (0..count).map(|i| derive_seed(master, i)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        prop_assert_eq!(unique.len(), seeds.len());
        prop_assert_eq!(derive_seed(master, 0), derive_seed(master, 0));
        prop_assert_ne!(splitmix64(master), splitmix64(master.wrapping_add(1)));
    }

    #[test]
    fn parallel_and_sequential_runners_agree(seed in 0u64..u64::MAX, trials in 1usize..64) {
        use rand::Rng;
        let par = run_trials(seed, trials, |i, rng| (i, rng.gen::<u64>()));
        let seq = run_trials_sequential(seed, trials, |i, rng| (i, rng.gen::<u64>()));
        prop_assert_eq!(par, seq);
    }
}
