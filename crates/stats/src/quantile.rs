//! Order statistics.
//!
//! Flooding-time distributions are skewed (they are maxima over sources and
//! carry the "with high probability" qualifier of every bound), so quantiles —
//! not just means — are what EXPERIMENTS.md reports.

/// Returns the `q`-quantile of the sample using linear interpolation between
/// order statistics (the "type 7" estimator used by most statistics packages).
///
/// Returns `None` for an empty sample, a NaN-containing sample, or `q` outside
/// `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) || samples.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Some(quantile_sorted(&sorted, q))
}

/// Same as [`quantile`] but assumes the input is already sorted ascending.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes several quantiles at once (sorts only once).
pub fn quantiles(samples: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
        return None;
    }
    if qs.iter().any(|q| !(0.0..=1.0).contains(q)) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Some(qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect())
}

/// Median absolute deviation (MAD): `median(|x_i − median(x)|)`.
pub fn median_absolute_deviation(samples: &[f64]) -> Option<f64> {
    let med = quantile(samples, 0.5)?;
    let deviations: Vec<f64> = samples.iter().map(|&x| (x - med).abs()).collect();
    quantile(&deviations, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_small_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for q in [0.1, 0.33, 0.5, 0.9] {
            assert_eq!(quantile(&a, q), quantile(&b, q));
        }
    }

    #[test]
    fn invalid_inputs() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        assert_eq!(quantiles(&[1.0], &[0.5, 2.0]), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.01), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn batch_quantiles_match_individual() {
        let xs = [3.0, 9.0, 1.0, 7.0, 5.0];
        let qs = [0.1, 0.5, 0.9];
        let batch = quantiles(&xs, &qs).unwrap();
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(Some(batch[i]), quantile(&xs, q));
        }
    }

    #[test]
    fn mad_of_constant_sample_is_zero() {
        assert_eq!(median_absolute_deviation(&[4.0, 4.0, 4.0]), Some(0.0));
        let mad = median_absolute_deviation(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(mad, 1.0);
    }
}
