//! Goodness-of-fit tests: Pearson chi-square against expected counts and
//! the two-sample Kolmogorov–Smirnov distance.
//!
//! These back the statistical-equivalence layer of the stepping tests: the
//! skip-sampling (`Transitions`) edge dynamics must be *distributionally*
//! indistinguishable from the per-pair reference even though the two paths
//! draw different random variates, so the test suite compares empirical
//! stationary densities, flip rates, and holding-time histograms against
//! closed-form laws (chi-square) and against each other (KS).
//!
//! Everything here is deterministic — fixed-seed samples in, a reproducible
//! `pass`/`fail` out. Critical values come from closed-form approximations
//! (Wilson–Hilferty for chi-square, the asymptotic Smirnov form for KS)
//! rather than p-value integration, which keeps the decision boundary exact
//! across platforms and dependency-free.

/// Significance levels supported by the closed-form critical values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alpha {
    /// α = 0.05
    P05,
    /// α = 0.01
    P01,
    /// α = 0.001
    P001,
}

impl Alpha {
    /// The significance level as a probability.
    pub fn value(self) -> f64 {
        match self {
            Alpha::P05 => 0.05,
            Alpha::P01 => 0.01,
            Alpha::P001 => 0.001,
        }
    }

    /// Upper-tail standard-normal quantile `z_α`.
    pub fn z(self) -> f64 {
        match self {
            Alpha::P05 => 1.6449,
            Alpha::P01 => 2.3263,
            Alpha::P001 => 3.0902,
        }
    }
}

/// Outcome of a chi-square goodness-of-fit comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChiSquareTest {
    /// The Pearson statistic `Σ (O − E)² / E` over the pooled groups.
    pub statistic: f64,
    /// Degrees of freedom (pooled groups − 1).
    pub df: usize,
    /// Upper-tail critical value at the requested significance level.
    pub critical: f64,
    /// `statistic <= critical`.
    pub pass: bool,
}

/// Pearson chi-square goodness of fit of `observed` counts against
/// `expected` counts (same binning, same total up to rounding).
///
/// Adjacent bins are greedily pooled left-to-right until each group's
/// expected mass reaches `min_expected` (the classical rule of thumb is 5);
/// an under-filled trailing remainder is merged into the last group. This
/// keeps the statistic well-behaved on histograms with thin tails —
/// geometric holding-time histograms, for instance, decay exponentially and
/// would otherwise contribute near-zero denominators.
///
/// Returns `None` when the inputs are unusable: mismatched or empty slices,
/// a negative or non-finite expectation, or fewer than two pooled groups
/// (no degrees of freedom left to test).
pub fn chi_square_gof(
    observed: &[u64],
    expected: &[f64],
    min_expected: f64,
    alpha: Alpha,
) -> Option<ChiSquareTest> {
    if observed.len() != expected.len() || observed.is_empty() {
        return None;
    }
    let mut groups: Vec<(f64, f64)> = Vec::new();
    let (mut acc_o, mut acc_e) = (0.0f64, 0.0f64);
    for (&o, &e) in observed.iter().zip(expected) {
        if !e.is_finite() || e < 0.0 {
            return None;
        }
        acc_o += o as f64;
        acc_e += e;
        if acc_e >= min_expected {
            groups.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        let last = groups.last_mut()?;
        last.0 += acc_o;
        last.1 += acc_e;
    }
    if groups.len() < 2 {
        return None;
    }
    let statistic = groups.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let df = groups.len() - 1;
    let critical = chi_square_critical(df, alpha);
    Some(ChiSquareTest {
        statistic,
        df,
        critical,
        pass: statistic <= critical,
    })
}

/// Upper-tail chi-square critical value via the Wilson–Hilferty cube-root
/// normal approximation — accurate to well under 1% for `df ≥ 3`, and
/// conservative enough below that for equivalence gating.
pub fn chi_square_critical(df: usize, alpha: Alpha) -> f64 {
    assert!(df > 0, "chi-square needs at least one degree of freedom");
    let k = df as f64;
    let z = alpha.z();
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Outcome of a two-sample Kolmogorov–Smirnov comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsTest {
    /// The KS distance `sup_x |F_a(x) − F_b(x)|` between the empirical CDFs.
    pub statistic: f64,
    /// Asymptotic critical value `√(ln(2/α)/2) · √((n+m)/(nm))`.
    pub critical: f64,
    /// `statistic <= critical`.
    pub pass: bool,
}

/// Two-sample Kolmogorov–Smirnov test: are `a` and `b` plausibly draws from
/// the same distribution?
///
/// Computes the exact sup-distance between the two empirical CDFs by a
/// sorted merge walk and compares it against the asymptotic Smirnov
/// critical value. Returns `None` on an empty sample or any NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64], alpha: Alpha) -> Option<KsTest> {
    if a.is_empty() || b.is_empty() || a.iter().chain(b).any(|x| x.is_nan()) {
        return None;
    }
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n, m) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < xs.len() && j < ys.len() {
        let x = xs[i].min(ys[j]);
        while i < xs.len() && xs[i] <= x {
            i += 1;
        }
        while j < ys.len() && ys[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n - j as f64 / m).abs());
    }
    let c = ((2.0 / alpha.value()).ln() / 2.0).sqrt();
    let critical = c * ((n + m) / (n * m)).sqrt();
    Some(KsTest {
        statistic: d,
        critical,
        pass: d <= critical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_accepts_a_fair_die_and_rejects_a_loaded_one() {
        let expected = [100.0; 6];
        let fair = [95u64, 105, 98, 102, 100, 100];
        let t = chi_square_gof(&fair, &expected, 5.0, Alpha::P01).unwrap();
        assert_eq!(t.df, 5);
        assert!(t.pass, "fair counts rejected: {t:?}");
        let loaded = [160u64, 40, 100, 100, 100, 100];
        let t = chi_square_gof(&loaded, &expected, 5.0, Alpha::P01).unwrap();
        assert!(!t.pass, "loaded counts accepted: {t:?}");
    }

    #[test]
    fn chi_square_pools_thin_tail_bins() {
        // Geometric-looking expectations: the tail bins pool together.
        let expected = [64.0, 32.0, 16.0, 8.0, 4.0, 2.0, 1.0];
        let observed = [60u64, 36, 15, 9, 4, 2, 1];
        let t = chi_square_gof(&observed, &expected, 5.0, Alpha::P05).unwrap();
        // 64 | 32 | 16 | 8 | 4+2+1 → 5 groups, df 4.
        assert_eq!(t.df, 4);
        assert!(t.pass);
    }

    #[test]
    fn chi_square_critical_matches_table_values() {
        // Textbook upper-tail values: χ²(0.05, 10) = 18.307,
        // χ²(0.01, 5) = 15.086, χ²(0.001, 20) = 45.315.
        for (df, alpha, want) in [
            (10usize, Alpha::P05, 18.307),
            (5, Alpha::P01, 15.086),
            (20, Alpha::P001, 45.315),
        ] {
            let got = chi_square_critical(df, alpha);
            assert!(
                (got - want).abs() / want < 0.01,
                "df={df}: got {got}, table {want}"
            );
        }
    }

    #[test]
    fn chi_square_degenerate_inputs() {
        assert!(chi_square_gof(&[], &[], 5.0, Alpha::P05).is_none());
        assert!(chi_square_gof(&[1], &[1.0, 2.0], 5.0, Alpha::P05).is_none());
        assert!(chi_square_gof(&[1, 2], &[1.0, -2.0], 5.0, Alpha::P05).is_none());
        // Everything pools into one group: no degrees of freedom.
        assert!(chi_square_gof(&[3, 3], &[3.0, 3.0], 100.0, Alpha::P05).is_none());
    }

    #[test]
    fn ks_statistic_is_exact_on_a_hand_case() {
        // F_a steps at 1,2,3; F_b at 1.5,2.5,3.5 → sup distance 1/3.
        let t = ks_two_sample(&[1.0, 2.0, 3.0], &[1.5, 2.5, 3.5], Alpha::P05).unwrap();
        assert!((t.statistic - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ks_accepts_identical_and_rejects_shifted_samples() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64 * 0.618_034).fract()).collect();
        let same = ks_two_sample(&a, &a, Alpha::P001).unwrap();
        assert_eq!(same.statistic, 0.0);
        assert!(same.pass);
        let shifted: Vec<f64> = a.iter().map(|x| x + 0.25).collect();
        let t = ks_two_sample(&a, &shifted, Alpha::P001).unwrap();
        assert!(!t.pass, "shifted sample accepted: {t:?}");
    }

    #[test]
    fn ks_degenerate_inputs() {
        assert!(ks_two_sample(&[], &[1.0], Alpha::P05).is_none());
        assert!(ks_two_sample(&[1.0], &[f64::NAN], Alpha::P05).is_none());
    }
}
