//! Confidence intervals for the mean of a sample.
//!
//! The harness repeats every configuration across many seeds; the reported
//! numbers are means with normal-approximation confidence intervals, which is
//! adequate at the trial counts used (≥ 20) and keeps the crate free of a
//! Student-t table dependency for small samples (we simply widen with a
//! conservative factor there).

use crate::summary::Summary;

/// A two-sided confidence interval for a mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower endpoint.
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
    /// Confidence level used, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Returns `true` if the two intervals overlap.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

/// z-value of the standard normal for a two-sided interval at `level`.
///
/// Exact for the commonly used levels; interpolates crudely otherwise.
fn z_value(level: f64) -> f64 {
    match level {
        l if (l - 0.90).abs() < 1e-9 => 1.6449,
        l if (l - 0.95).abs() < 1e-9 => 1.9600,
        l if (l - 0.99).abs() < 1e-9 => 2.5758,
        l if (l - 0.999).abs() < 1e-9 => 3.2905,
        l => {
            // Rough inverse-normal approximation (Beasley–Springer constants
            // are overkill here); clamp to a sane range.
            let p = 1.0 - (1.0 - l) / 2.0;
            let t = (-2.0 * (1.0 - p).ln()).sqrt();
            (t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)).clamp(0.0, 6.0)
        }
    }
}

/// Normal-approximation confidence interval for the mean of `samples`.
///
/// For very small samples (n < 10) the z-value is inflated by 20% as a crude
/// small-sample correction. Returns `None` for empty/NaN samples or a level
/// outside `(0, 1)`.
pub fn mean_confidence_interval(samples: &[f64], level: f64) -> Option<ConfidenceInterval> {
    if !(0.0..1.0).contains(&level) || level == 0.0 {
        return None;
    }
    let s = Summary::of(samples)?;
    let mut z = z_value(level);
    if s.count < 10 {
        z *= 1.2;
    }
    let hw = z * s.standard_error();
    Some(ConfidenceInterval {
        mean: s.mean,
        lower: s.mean - hw,
        upper: s.mean + hw,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_centred_on_mean() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let ci = mean_confidence_interval(&xs, 0.95).unwrap();
        assert!((ci.mean - 50.5).abs() < 1e-12);
        assert!(ci.contains(50.5));
        assert!((ci.mean - ci.lower - ci.half_width()).abs() < 1e-12);
        assert!(ci.lower < 50.5 && ci.upper > 50.5);
    }

    #[test]
    fn zero_variance_gives_zero_width() {
        let ci = mean_confidence_interval(&[2.0; 30], 0.95).unwrap();
        assert_eq!(ci.lower, 2.0);
        assert_eq!(ci.upper, 2.0);
    }

    #[test]
    fn higher_level_is_wider() {
        let xs: Vec<f64> = (0..50).map(|x| (x % 7) as f64).collect();
        let ci90 = mean_confidence_interval(&xs, 0.90).unwrap();
        let ci99 = mean_confidence_interval(&xs, 0.99).unwrap();
        assert!(ci99.half_width() > ci90.half_width());
        assert!(ci99.overlaps(&ci90));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(mean_confidence_interval(&[], 0.95).is_none());
        assert!(mean_confidence_interval(&[1.0], 1.5).is_none());
        assert!(mean_confidence_interval(&[1.0], 0.0).is_none());
    }

    #[test]
    fn coverage_of_known_mean_is_reasonable() {
        // Deterministic LCG noise around a known mean; the 95% CI from 200
        // points should contain the true mean.
        let mut state = 12345u64;
        let mut xs = Vec::new();
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            xs.push(10.0 + (u - 0.5));
        }
        let ci = mean_confidence_interval(&xs, 0.95).unwrap();
        assert!(ci.contains(10.0), "CI {ci:?} should contain 10.0");
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 1.0,
            lower: 0.5,
            upper: 1.5,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            mean: 2.0,
            lower: 1.4,
            upper: 2.6,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            mean: 5.0,
            lower: 4.0,
            upper: 6.0,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
