//! Fixed-width histograms of f64 samples.

/// A histogram with equally sized bins over `[min, max]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub min: f64,
    /// Upper edge of the last bin.
    pub max: f64,
    /// Bin counts.
    pub counts: Vec<usize>,
    /// Number of samples that fell outside `[min, max]`.
    pub outliers: usize,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins over
    /// `[min, max]`. Values exactly equal to `max` land in the last bin.
    ///
    /// Returns `None` if `bins == 0`, `min >= max`, or either bound is not
    /// finite.
    pub fn with_range(samples: &[f64], bins: usize, min: f64, max: f64) -> Option<Histogram> {
        if bins == 0 || !(min.is_finite() && max.is_finite()) || min >= max {
            return None;
        }
        let width = (max - min) / bins as f64;
        let mut counts = vec![0usize; bins];
        let mut outliers = 0usize;
        for &x in samples {
            if x.is_nan() || x < min || x > max {
                outliers += 1;
                continue;
            }
            let mut idx = ((x - min) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        Some(Histogram {
            min,
            max,
            counts,
            outliers,
        })
    }

    /// Builds a histogram spanning the observed sample range.
    pub fn auto(samples: &[f64], bins: usize) -> Option<Histogram> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if min == max {
            // Degenerate sample: one bin holding everything.
            return Some(Histogram {
                min,
                max,
                counts: vec![samples.len()],
                outliers: 0,
            });
        }
        Self::with_range(samples, bins, min, max)
    }

    /// Total number of binned samples (excludes outliers).
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Index of the most populated bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Renders a compact ASCII bar chart (one line per bin), used by the
    /// experiment binaries for quick visual inspection.
    pub fn render_ascii(&self, width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.min + self.bin_width() * i as f64;
            let hi = lo + self.bin_width();
            let bar_len = (c * width).div_ceil(max_count);
            out.push_str(&format!(
                "[{lo:10.2}, {hi:10.2}) {:>8} {}\n",
                c,
                "#".repeat(if c == 0 { 0 } else { bar_len })
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_expected_bins() {
        let h = Histogram::with_range(&[0.1, 0.9, 1.5, 2.9, 3.0], 3, 0.0, 3.0).unwrap();
        assert_eq!(h.counts, vec![2, 1, 2]);
        assert_eq!(h.outliers, 0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_width(), 1.0);
    }

    #[test]
    fn outliers_are_counted_not_binned() {
        let h = Histogram::with_range(&[-1.0, 0.5, 10.0], 2, 0.0, 1.0).unwrap();
        assert_eq!(h.total(), 1);
        assert_eq!(h.outliers, 2);
    }

    #[test]
    fn auto_range_covers_sample() {
        let h = Histogram::auto(&[2.0, 4.0, 6.0, 8.0], 4).unwrap();
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 8.0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers, 0);
    }

    #[test]
    fn degenerate_and_invalid_inputs() {
        assert!(Histogram::with_range(&[1.0], 0, 0.0, 1.0).is_none());
        assert!(Histogram::with_range(&[1.0], 3, 2.0, 1.0).is_none());
        assert!(Histogram::auto(&[], 3).is_none());
        let constant = Histogram::auto(&[5.0, 5.0], 3).unwrap();
        assert_eq!(constant.counts, vec![2]);
    }

    #[test]
    fn mode_and_render() {
        let h = Histogram::with_range(&[0.1, 0.2, 0.3, 1.5], 2, 0.0, 2.0).unwrap();
        assert_eq!(h.mode_bin(), 0);
        let art = h.render_ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }
}
