//! Seeded Monte-Carlo trial execution.
//!
//! Every experiment in the harness is "run this closure `trials` times with
//! independent randomness and aggregate". The closure receives a trial index
//! and its own deterministic RNG, so the result set is identical whether the
//! trials run sequentially or on a rayon thread pool, and identical across
//! repeated invocations with the same master seed.

use crate::seeds::trial_rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Runs `trials` independent trials in parallel and collects their results in
/// trial order.
///
/// `f(i, rng)` must be a pure function of its arguments for the determinism
/// guarantee to hold.
pub fn run_trials<T, F>(master_seed: u64, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut ChaCha8Rng) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = trial_rng(master_seed, i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// Sequential equivalent of [`run_trials`], useful inside doctests, from
/// single-threaded contexts, and to verify scheduling independence.
pub fn run_trials_sequential<T, F>(master_seed: u64, trials: usize, mut f: F) -> Vec<T>
where
    F: FnMut(usize, &mut ChaCha8Rng) -> T,
{
    (0..trials)
        .map(|i| {
            let mut rng = trial_rng(master_seed, i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// Runs trials `start .. start + count` in parallel and collects their
/// results in trial order.
///
/// Trial `i` receives exactly the RNG stream it would receive from
/// [`run_trials`]: the seed depends only on `(master_seed, i)`, never on the
/// range boundaries. Concatenating range results therefore reproduces a
/// single [`run_trials`] call byte for byte — which is what lets the
/// distributed coordinator grow a cell's trial set in increments without
/// changing any statistic.
pub fn run_trials_range<T, F>(master_seed: u64, start: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut ChaCha8Rng) -> T + Sync,
{
    (start..start + count)
        .into_par_iter()
        .map(|i| {
            let mut rng = trial_rng(master_seed, i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// The deterministic trial-count schedule adaptive execution checks at:
/// `min_trials`, then doubling, capped at (and always ending with)
/// `max_trials`.
///
/// Both the in-process runner and the distributed coordinator consult this
/// same schedule, so an adaptive run stops after the identical number of
/// trials no matter where it executes — the invariant behind the engine's
/// "sharded adaptive output is byte-identical to unsharded" guarantee.
pub fn precision_checkpoints(min_trials: usize, max_trials: usize) -> Vec<usize> {
    let max = max_trials.max(1);
    let mut at = min_trials.clamp(1, max);
    let mut out = vec![at];
    while at < max {
        at = (at.saturating_mul(2)).min(max);
        out.push(at);
    }
    out
}

/// Runs trials in parallel batches up to each checkpoint in `checkpoints`
/// (ascending trial counts; see [`precision_checkpoints`]), stopping early
/// when `stop` returns `true` on the results collected so far. The final
/// checkpoint is a hard budget: `stop` is not consulted there.
///
/// Like [`run_trials`], trial `i`'s randomness depends only on
/// `(master_seed, i)`, so the returned prefix is byte-identical to a fixed
/// [`run_trials`] call of the same length — batching is invisible to the
/// statistics.
pub fn run_trials_scheduled<T, F, S>(
    master_seed: u64,
    checkpoints: &[usize],
    f: F,
    stop: S,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut ChaCha8Rng) -> T + Sync,
    S: Fn(&[T]) -> bool,
{
    let mut results: Vec<T> = Vec::new();
    for (k, &target) in checkpoints.iter().enumerate() {
        if target > results.len() {
            let start = results.len();
            let mut chunk = run_trials_range(master_seed, start, target - start, &f);
            results.append(&mut chunk);
        }
        let last = k + 1 == checkpoints.len();
        if !last && stop(&results) {
            break;
        }
    }
    results
}

/// Runs trials until either `max_trials` is reached or the half-width of the
/// 95% confidence interval of the mean drops below `target_half_width`
/// (checked every `batch` trials once at least `2 * batch` results exist).
/// Returns the collected f64 observations.
///
/// This adaptive mode keeps the cheap configurations cheap while spending
/// more repetitions where the variance demands it — the sample-size policy
/// the scenario engine's `Precision::TargetStderr` mode exposes end to end
/// (`meg-lab run --target-stderr`). It is a thin wrapper over
/// [`run_trials_scheduled`] with evenly spaced checkpoints, so the collected
/// prefix is always byte-identical to a fixed-size [`run_trials`] call of
/// the same length.
///
/// ```
/// use meg_stats::runner::run_until_precise;
/// use rand::Rng;
///
/// // A deterministic observable needs only the minimum two batches …
/// let cheap = run_until_precise(7, 10, 1_000, 0.5, |_, _| 42.0);
/// assert_eq!(cheap.len(), 20);
///
/// // … while an unreachable target spends the whole budget.
/// let spent = run_until_precise(7, 10, 60, 1e-12, |_, rng| rng.gen_range(0.0..100.0));
/// assert_eq!(spent.len(), 60);
/// ```
pub fn run_until_precise<F>(
    master_seed: u64,
    batch: usize,
    max_trials: usize,
    target_half_width: f64,
    f: F,
) -> Vec<f64>
where
    F: Fn(usize, &mut ChaCha8Rng) -> f64 + Sync,
{
    assert!(batch > 0, "batch must be positive");
    if max_trials == 0 {
        return Vec::new();
    }
    let checkpoints: Vec<usize> = (batch..max_trials)
        .step_by(batch)
        .chain([max_trials.max(1)])
        .collect();
    run_trials_scheduled(master_seed, &checkpoints, f, |results| {
        results.len() >= 2 * batch
            && crate::ci::mean_confidence_interval(results, 0.95)
                .is_some_and(|ci| ci.half_width() <= target_half_width)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn parallel_and_sequential_agree() {
        let par = run_trials(42, 64, |i, rng| (i, rng.gen::<u64>()));
        let seq = run_trials_sequential(42, 64, |i, rng| (i, rng.gen::<u64>()));
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_matches_sequential_across_many_chunks() {
        // Enough trials that the rayon shim splits the work across every
        // available core; each trial draws a variable amount of randomness so
        // any cross-trial stream sharing would be visible in the output.
        let f = |i: usize, rng: &mut rand_chacha::ChaCha8Rng| -> (usize, Vec<u64>) {
            let draws = 1 + i % 7;
            (i, (0..draws).map(|_| rng.gen::<u64>()).collect())
        };
        let par = run_trials(2009, 500, f);
        let seq = run_trials_sequential(2009, 500, f);
        assert_eq!(par, seq);
    }

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(0, 100, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_change_results() {
        let a = run_trials(1, 8, |_, rng| rng.gen::<u64>());
        let b = run_trials(2, 8, |_, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn adaptive_runner_stops_early_for_deterministic_outcomes() {
        let out = run_until_precise(9, 10, 1000, 0.5, |_, _| 7.0);
        assert!(
            out.len() <= 20,
            "deterministic outcome should stop after two batches, got {}",
            out.len()
        );
        assert!(out.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn adaptive_runner_respects_max_trials() {
        // High-variance observable with an unreachable precision target.
        let out = run_until_precise(9, 16, 64, 1e-9, |_, rng| rng.gen_range(0.0..100.0));
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn adaptive_runner_is_deterministic() {
        let a = run_until_precise(3, 8, 40, 1e-9, |_, rng| rng.gen_range(0.0..10.0));
        let b = run_until_precise(3, 8, 40, 1e-9, |_, rng| rng.gen_range(0.0..10.0));
        assert_eq!(a, b);
    }

    #[test]
    fn range_results_concatenate_to_a_full_run() {
        let f = |i: usize, rng: &mut rand_chacha::ChaCha8Rng| (i, rng.gen::<u64>());
        let full = run_trials(77, 30, f);
        let mut pieced = run_trials_range(77, 0, 12, f);
        pieced.extend(run_trials_range(77, 12, 5, f));
        pieced.extend(run_trials_range(77, 17, 13, f));
        assert_eq!(pieced, full);
        assert!(run_trials_range(77, 9, 0, f).is_empty());
    }

    #[test]
    fn precision_checkpoints_double_and_end_at_max() {
        assert_eq!(precision_checkpoints(4, 40), vec![4, 8, 16, 32, 40]);
        assert_eq!(precision_checkpoints(5, 5), vec![5]);
        assert_eq!(precision_checkpoints(9, 5), vec![5]); // min clamps to max
        assert_eq!(precision_checkpoints(0, 3), vec![1, 2, 3]);
        assert_eq!(precision_checkpoints(0, 0), vec![1]);
    }

    #[test]
    fn scheduled_runner_stops_at_first_satisfied_checkpoint_only() {
        // Stop rule satisfied immediately: only the first checkpoint runs.
        let out = run_trials_scheduled(1, &[4, 8, 16], |i, _| i, |_| true);
        assert_eq!(out, vec![0, 1, 2, 3]);
        // Stop rule never satisfied: the final checkpoint is a hard budget.
        let out = run_trials_scheduled(1, &[4, 8, 16], |i, _| i, |_| false);
        assert_eq!(out.len(), 16);
        // The prefix matches a fixed run of the same length (byte-identity).
        let f = |_: usize, rng: &mut rand_chacha::ChaCha8Rng| rng.gen::<u64>();
        let adaptive = run_trials_scheduled(9, &[4, 8, 16], f, |r| r.len() >= 8);
        assert_eq!(adaptive, run_trials(9, 8, f));
    }
}
