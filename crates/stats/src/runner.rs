//! Seeded Monte-Carlo trial execution.
//!
//! Every experiment in the harness is "run this closure `trials` times with
//! independent randomness and aggregate". The closure receives a trial index
//! and its own deterministic RNG, so the result set is identical whether the
//! trials run sequentially or on a rayon thread pool, and identical across
//! repeated invocations with the same master seed.

use crate::seeds::trial_rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Runs `trials` independent trials in parallel and collects their results in
/// trial order.
///
/// `f(i, rng)` must be a pure function of its arguments for the determinism
/// guarantee to hold.
pub fn run_trials<T, F>(master_seed: u64, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut ChaCha8Rng) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = trial_rng(master_seed, i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// Sequential equivalent of [`run_trials`], useful inside doctests, from
/// single-threaded contexts, and to verify scheduling independence.
pub fn run_trials_sequential<T, F>(master_seed: u64, trials: usize, mut f: F) -> Vec<T>
where
    F: FnMut(usize, &mut ChaCha8Rng) -> T,
{
    (0..trials)
        .map(|i| {
            let mut rng = trial_rng(master_seed, i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// Runs trials until either `max_trials` is reached or the half-width of the
/// 95% confidence interval of the mean drops below `target_half_width`
/// (checked every `batch` trials). Returns the collected f64 observations.
///
/// This adaptive mode keeps the cheap configurations cheap while spending more
/// repetitions where the variance demands it.
pub fn run_until_precise<F>(
    master_seed: u64,
    batch: usize,
    max_trials: usize,
    target_half_width: f64,
    f: F,
) -> Vec<f64>
where
    F: Fn(usize, &mut ChaCha8Rng) -> f64 + Sync,
{
    assert!(batch > 0, "batch must be positive");
    let mut results: Vec<f64> = Vec::new();
    while results.len() < max_trials {
        let start = results.len();
        let todo = batch.min(max_trials - start);
        let mut chunk: Vec<f64> = (start..start + todo)
            .into_par_iter()
            .map(|i| {
                let mut rng = trial_rng(master_seed, i as u64);
                f(i, &mut rng)
            })
            .collect();
        results.append(&mut chunk);
        if results.len() >= 2 * batch {
            if let Some(ci) = crate::ci::mean_confidence_interval(&results, 0.95) {
                if ci.half_width() <= target_half_width {
                    break;
                }
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn parallel_and_sequential_agree() {
        let par = run_trials(42, 64, |i, rng| (i, rng.gen::<u64>()));
        let seq = run_trials_sequential(42, 64, |i, rng| (i, rng.gen::<u64>()));
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_matches_sequential_across_many_chunks() {
        // Enough trials that the rayon shim splits the work across every
        // available core; each trial draws a variable amount of randomness so
        // any cross-trial stream sharing would be visible in the output.
        let f = |i: usize, rng: &mut rand_chacha::ChaCha8Rng| -> (usize, Vec<u64>) {
            let draws = 1 + i % 7;
            (i, (0..draws).map(|_| rng.gen::<u64>()).collect())
        };
        let par = run_trials(2009, 500, f);
        let seq = run_trials_sequential(2009, 500, f);
        assert_eq!(par, seq);
    }

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(0, 100, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_change_results() {
        let a = run_trials(1, 8, |_, rng| rng.gen::<u64>());
        let b = run_trials(2, 8, |_, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn adaptive_runner_stops_early_for_deterministic_outcomes() {
        let out = run_until_precise(9, 10, 1000, 0.5, |_, _| 7.0);
        assert!(
            out.len() <= 20,
            "deterministic outcome should stop after two batches, got {}",
            out.len()
        );
        assert!(out.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn adaptive_runner_respects_max_trials() {
        // High-variance observable with an unreachable precision target.
        let out = run_until_precise(9, 16, 64, 1e-9, |_, rng| rng.gen_range(0.0..100.0));
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn adaptive_runner_is_deterministic() {
        let a = run_until_precise(3, 8, 40, 1e-9, |_, rng| rng.gen_range(0.0..10.0));
        let b = run_until_precise(3, 8, 40, 1e-9, |_, rng| rng.gen_range(0.0..10.0));
        assert_eq!(a, b);
    }
}
