//! Experiment table rendering.
//!
//! Every experiment binary produces one or more tables: a header row plus one
//! row per parameter setting. Tables can be rendered as aligned ASCII (for the
//! terminal, and pasted into EXPERIMENTS.md) or CSV (for external plotting).

use serde::{Deserialize, Serialize};

/// A simple rectangular table of strings with a caption.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    caption: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given caption and column headers.
    pub fn new<S: Into<String>>(caption: S, header: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.header.len()
    }

    /// The caption.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Appends a row of already-formatted cells.
    ///
    /// Panics if the number of cells does not match the header.
    pub fn push_row<S: ToString>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Returns the cell at `(row, col)` if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    /// Renders the table as aligned ASCII text.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.caption.is_empty() {
            out.push_str(&format!("## {}\n", self.caption));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!(" {cell:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (caption omitted, header included).
    pub fn render_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of digits for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.push_row(&["100", "3"]);
        t.push_row(&["200", "5"]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.cell(1, 1), Some("5"));
        assert_eq!(t.cell(2, 0), None);
        assert_eq!(t.caption(), "demo");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(&["only one"]);
    }

    #[test]
    fn ascii_rendering_aligns_columns() {
        let mut t = Table::new("cap", &["param", "value"]);
        t.push_row(&["n", "1000"]);
        t.push_row(&["radius", "3"]);
        let s = t.render_ascii();
        assert!(s.starts_with("## cap\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // all body lines have equal length
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[1].len(), lines[4].len());
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("", &["name", "note"]);
        t.push_row(&["a", "plain"]);
        t.push_row(&["b", "has,comma"]);
        t.push_row(&["c", "has\"quote"]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[2], "b,\"has,comma\"");
        assert_eq!(lines[3], "c,\"has\"\"quote\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(0.0001234), "1.23e-4");
    }

    #[test]
    fn serde_derives_compile() {
        // serde_json is not a dependency; exercise the derived trait bounds
        // through generic functions so regressions in the derives are caught.
        fn assert_serializable<T: serde::Serialize>(_t: &T) {}
        fn assert_deserializable<'de, T: serde::Deserialize<'de>>() {}
        let mut t = Table::new("roundtrip", &["x"]);
        t.push_row(&["1"]);
        assert_serializable(&t);
        assert_deserializable::<Table>();
    }
}
