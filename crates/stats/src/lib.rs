//! # meg-stats
//!
//! Experiment substrate: everything the reproduction harness needs to turn raw
//! flooding-time samples into the tables reported in `EXPERIMENTS.md`.
//!
//! * [`summary`] — means, variances, medians and extreme values;
//! * [`quantile`] — order statistics on f64 samples;
//! * [`ci`] — normal-approximation confidence intervals;
//! * [`fit`] — least-squares fits, including log–log power-law fits used to
//!   check the `√n/R` and `log n / log(np̂)` scaling shapes;
//! * [`gof`] — chi-square and two-sample KS goodness-of-fit tests with
//!   deterministic closed-form critical values, backing the
//!   stepping-equivalence suite;
//! * [`histogram`] — fixed-width binning;
//! * [`table`] — ASCII and CSV rendering of experiment tables;
//! * [`runner`] — seeded, rayon-parallel Monte-Carlo trial execution;
//! * [`seeds`] — deterministic per-trial RNG stream derivation.
//!
//! ## Example
//!
//! ```
//! use meg_stats::{run_trials_sequential, Summary};
//! use rand::Rng;
//!
//! // Each trial gets its own deterministic RNG stream derived from
//! // (master seed, trial index); results are reproducible and identical
//! // under sequential or parallel scheduling.
//! let obs: Vec<f64> = run_trials_sequential(2009, 32, |_i, rng| rng.gen_range(0.0..10.0));
//! let summary = Summary::of(&obs).unwrap();
//! assert_eq!(summary.count, 32);
//! assert!(summary.min >= 0.0 && summary.max < 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod fit;
pub mod gof;
pub mod histogram;
pub mod quantile;
pub mod runner;
pub mod seeds;
pub mod summary;
pub mod table;

pub use ci::ConfidenceInterval;
pub use fit::{linear_fit, power_law_fit, LinearFit};
pub use gof::{chi_square_gof, ks_two_sample, Alpha, ChiSquareTest, KsTest};
pub use runner::{
    precision_checkpoints, run_trials, run_trials_range, run_trials_scheduled,
    run_trials_sequential, run_until_precise,
};
pub use summary::Summary;
pub use table::Table;
