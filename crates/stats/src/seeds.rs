//! Deterministic derivation of per-trial RNG streams.
//!
//! Every experiment is reproducible from a single master seed: trial `i` of
//! configuration `c` always receives the same ChaCha8 stream regardless of how
//! many threads execute the trials or in which order rayon schedules them.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer — a cheap, well-mixed 64→64-bit hash used to derive
/// independent sub-seeds from `(master, index)` pairs.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derives the sub-seed for trial `index` of the stream identified by
/// `master`.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    splitmix64(master ^ splitmix64(index.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
}

/// Builds the RNG for trial `index` under `master`.
pub fn trial_rng(master: u64, index: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(derive_seed(master, index))
}

/// Derives a sub-seed from a master seed and a textual label (e.g. an
/// experiment or scenario id), so different experiments sharing a master seed
/// still get independent streams. This is the seed behind [`labeled_rng`];
/// the scenario engine combines it with [`derive_seed`] to give every sweep
/// cell its own reproducible stream.
pub fn labeled_seed(master: u64, label: &str) -> u64 {
    let mut h = master;
    for b in label.bytes() {
        h = splitmix64(h ^ b as u64);
    }
    h
}

/// Builds an RNG from a master seed and a textual label (e.g. an experiment
/// id), so different experiments sharing a master seed still get independent
/// streams.
pub fn labeled_rng(master: u64, label: &str) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(labeled_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(splitmix64(42), splitmix64(42));
        let mut a = trial_rng(7, 3);
        let mut b = trial_rng(7, 3);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_indices_give_different_streams() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(99, i)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn different_masters_give_different_streams() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        let mut a = trial_rng(1, 0);
        let mut b = trial_rng(2, 0);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn labeled_seed_backs_labeled_rng() {
        let mut direct = ChaCha8Rng::seed_from_u64(labeled_seed(7, "scenario"));
        let mut labeled = labeled_rng(7, "scenario");
        let a: u64 = direct.gen();
        let b: u64 = labeled.gen();
        assert_eq!(a, b);
        assert_ne!(labeled_seed(7, "scenario"), labeled_seed(7, "scenari0"));
        assert_ne!(labeled_seed(7, "scenario"), labeled_seed(8, "scenario"));
    }

    #[test]
    fn labeled_streams_are_independent_and_stable() {
        let mut a1 = labeled_rng(5, "exp_geo_vs_n");
        let mut a2 = labeled_rng(5, "exp_geo_vs_n");
        let mut b = labeled_rng(5, "exp_edge_vs_n");
        let x1: u64 = a1.gen();
        let x2: u64 = a2.gen();
        let y: u64 = b.gen();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        // low-bit inputs should produce high-bit differences
        let a = splitmix64(1) ^ splitmix64(3);
        assert!(a.count_ones() > 8);
    }
}
