//! Summary statistics of a sample of f64 observations.

/// Basic summary of a non-empty sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance; 0 for a single observation.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (average of the two middle order statistics for even counts).
    pub median: f64,
}

impl Summary {
    /// Computes a summary. Returns `None` for an empty sample or one that
    /// contains a NaN.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            samples
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            count: n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Convenience: summary of a sample of unsigned integers (flooding times).
    pub fn of_counts(samples: &[u64]) -> Option<Summary> {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f64)
    }

    /// Standard error of the mean, `s/√n`.
    pub fn standard_error(&self) -> f64 {
        self.std_dev / (self.count as f64).sqrt()
    }

    /// Coefficient of variation `s/|mean|` (NaN when the mean is 0).
    pub fn coefficient_of_variation(&self) -> f64 {
        self.std_dev / self.mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_single_point() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn odd_count_median_is_middle_element() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn empty_or_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn counts_helper() {
        let s = Summary::of_counts(&[1, 2, 3, 4]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::of(&[10.0, 10.0, 10.0]).unwrap();
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }
}
