//! Least-squares fits used to check scaling shapes.
//!
//! The paper's predictions are asymptotic shapes: flooding time `~ √n/R` for
//! geometric-MEG and `~ log n / log(np̂)` for edge-MEG. The experiments check
//! them by fitting measured times against the predicted predictor on a log–log
//! or linear scale and reporting the exponent / slope and the coefficient of
//! determination `R²`.

/// Result of an ordinary least-squares fit `y ≈ slope · x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; can be negative
    /// for fits worse than the constant mean predictor).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares on `(x, y)` pairs.
///
/// Returns `None` when fewer than two points are supplied, when any value is
/// non-finite, or when all `x` are identical (the slope is then undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|&x| (x - mean_x) * (x - mean_x)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(&x, &y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = ys.iter().map(|&y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(&x, &y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Result of a power-law fit `y ≈ c · x^exponent`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent.
    pub exponent: f64,
    /// Fitted multiplicative constant `c`.
    pub constant: f64,
    /// `R²` of the underlying log–log linear fit.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.constant * x.powf(self.exponent)
    }
}

/// Fits `y ≈ c · x^a` by linear regression of `ln y` on `ln x`.
///
/// All data points must be strictly positive.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Option<PowerLawFit> {
    if xs.iter().chain(ys.iter()).any(|&v| v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let lf = linear_fit(&lx, &ly)?;
    Some(PowerLawFit {
        exponent: lf.slope,
        constant: lf.intercept.exp(),
        r_squared: lf.r_squared,
    })
}

/// Ratio-based shape check: fits `y ≈ slope · predictor` through the origin
/// and reports the slope plus the worst relative deviation of any point from
/// the fit. Used when the theory predicts proportionality to a known
/// predictor (e.g. `√n/R`) rather than a free power law.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProportionalFit {
    /// Fitted proportionality constant.
    pub slope: f64,
    /// Maximum relative deviation `|y − slope·x| / (slope·x)` over all points.
    pub max_relative_deviation: f64,
}

/// Least-squares fit through the origin `y ≈ slope · x`.
pub fn proportional_fit(xs: &[f64], ys: &[f64]) -> Option<ProportionalFit> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    let sxx: f64 = xs.iter().map(|&x| x * x).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys.iter()).map(|(&x, &y)| x * y).sum();
    let slope = sxy / sxx;
    let mut max_dev: f64 = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let pred = slope * x;
        if pred != 0.0 {
            max_dev = max_dev.max(((y - pred) / pred).abs());
        }
    }
    Some(ProportionalFit {
        slope,
        max_relative_deviation: max_dev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[f64::NAN, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn noisy_line_has_reasonable_r_squared() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 3.0 * x + 1.0 + ((x * 7.3).sin()))
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 0.05);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x.powf(0.5)).collect();
        let f = power_law_fit(&xs, &ys).unwrap();
        assert!((f.exponent - 0.5).abs() < 1e-9);
        assert!((f.constant - 2.5).abs() < 1e-9);
        assert!((f.predict(4.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_needs_positive_data() {
        assert!(power_law_fit(&[1.0, 2.0], &[0.0, 1.0]).is_none());
        assert!(power_law_fit(&[-1.0, 2.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn proportional_fit_recovers_constant() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [3.0, 6.0, 12.0];
        let f = proportional_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!(f.max_relative_deviation < 1e-12);
    }

    #[test]
    fn proportional_fit_reports_deviation() {
        let xs = [1.0, 2.0];
        let ys = [3.0, 9.0];
        let f = proportional_fit(&xs, &ys).unwrap();
        assert!(f.max_relative_deviation > 0.1);
        assert!(proportional_fit(&[0.0, 0.0], &[1.0, 1.0]).is_none());
        assert!(proportional_fit(&[], &[]).is_none());
    }
}
