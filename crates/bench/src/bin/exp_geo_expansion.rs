//! Experiment `exp_geo_expansion` — Theorem 3.2 and Claim 1.
//!
//! Thin wrapper over the engine's built-in `geo_expansion` scenario: the
//! occupancy probe measures the Claim 1 cell-partition concentration `λ`
//! of stationary geometric snapshots, and the expansion probe sweeps the
//! set size `h` through the two expansion regimes of Theorem 3.2. Honours
//! `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run
//! `meg-lab show geo_expansion` to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "geo_expansion",
        "Expected shape: λ (the `occupancy` rows) is a small constant — every cell of the\n\
         partition holds Θ(R²) nodes — and the measured worst-case expansion tracks αR²/h\n\
         for small sets and βR/√h for large ones, which is exactly the input Theorem 2.5\n\
         needs to yield the O(√n/R + log log R) flooding bound.",
    );
}
