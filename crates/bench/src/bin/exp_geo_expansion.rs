//! Experiment `exp_geo_expansion` — Theorem 3.2 and Claim 1.
//!
//! Samples stationary snapshots of the paper's geometric-MEG and measures
//! exactly the quantities the proof of Theorem 3.2 manipulates:
//!
//! 1. **Claim 1** — the occupancy of the `⌈√(5n)/R⌉ × ⌈√(5n)/R⌉` cell
//!    partition: every cell should hold `Θ(R²)` nodes, i.e. the concentration
//!    constant `λ = max(N_max/R², R²/N_min)` should be a small constant.
//! 2. **The two expansion regimes** — the worst sampled expansion ratio at set
//!    size `h` should be at least a constant fraction of `αR²/h` for
//!    `h ≤ αR²` and of `βR/√h` for larger `h`.

use meg_bench::{emit, master_seed, scaled, trials};
use meg_core::bounds::GeometricBounds;
use meg_geometric::cells::CellPartition;
use meg_geometric::snapshot::sample_paper_snapshot;
use meg_geometric::GeometricMegParams;
use meg_graph::expansion::{min_expansion_sampled, SamplingStrategy};
use meg_stats::seeds::labeled_rng;
use meg_stats::table::fmt_f64;
use meg_stats::{Summary, Table};

fn main() {
    let n = scaled(4_000);
    // Claim 1 needs R ≥ c√(log n) for a comfortably large c (every cell must
    // hold Θ(R²) ≈ Θ(log n) nodes for the Chernoff argument to bite); use a
    // radius a bit above the bare connectivity threshold so the finite-size
    // concentration is visible.
    let radius = 3.5 * (n as f64).ln().sqrt();
    let params = GeometricMegParams::new(n, radius / 2.0, radius);
    let mut rng = labeled_rng(master_seed(), "exp_geo_expansion");
    let snapshots = trials();

    // ------------------------------------------------------------- Claim 1
    let partition = CellPartition::for_paper_instance(n, radius);
    let mut lambdas = Vec::new();
    let mut kept_snapshot = None;
    for _ in 0..snapshots {
        let snap = sample_paper_snapshot(params, &mut rng);
        if let Some(lambda) = partition.occupancy_concentration(&snap.positions, radius) {
            lambdas.push(lambda);
        }
        kept_snapshot = Some(snap);
    }
    let mut claim1 = Table::new(
        format!(
            "exp_geo_expansion / Claim 1: cell occupancy concentration (n = {n}, R = {radius:.2}, {}×{} cells)",
            partition.cells_per_axis(),
            partition.cells_per_axis()
        ),
        &["snapshots", "R²", "mean λ", "max λ"],
    );
    let summary = Summary::of(&lambdas);
    claim1.push_row(&[
        snapshots.to_string(),
        fmt_f64(radius * radius),
        summary
            .as_ref()
            .map(|s| fmt_f64(s.mean))
            .unwrap_or_else(|| "∞ (empty cell)".into()),
        summary
            .as_ref()
            .map(|s| fmt_f64(s.max))
            .unwrap_or_else(|| "∞ (empty cell)".into()),
    ]);
    emit(&claim1);
    meg_bench::commentary("Expected: λ is a small constant (every cell holds Θ(R²) nodes).\n");

    // ------------------------------------------------ the two expansion regimes
    let snap = kept_snapshot.expect("at least one snapshot");
    let bounds = GeometricBounds::new(n, radius, radius / 2.0);
    let alpha = 0.5;
    let beta = 0.25;
    let crossover = bounds.expansion_crossover(alpha);

    let mut profile = Table::new(
        format!("exp_geo_expansion / Theorem 3.2: expansion profile of one stationary snapshot (αR² ≈ {crossover:.0})"),
        &[
            "h",
            "regime",
            "measured min |N(I)|/|I|",
            "theory shape",
            "measured / theory",
        ],
    );
    let mut h = 1usize;
    let samples = 30;
    while h <= n / 2 {
        let measured =
            min_expansion_sampled(&snap.graph, h, samples, SamplingStrategy::Mixed, &mut rng);
        let (regime, theory) = if (h as f64) <= crossover {
            ("small (αR²/h)", bounds.expansion_small(h, alpha))
        } else {
            ("large (βR/√h)", bounds.expansion_large(h, beta))
        };
        profile.push_row(&[
            h.to_string(),
            regime.to_string(),
            fmt_f64(measured),
            fmt_f64(theory),
            fmt_f64(measured / theory),
        ]);
        if h == n / 2 {
            break;
        }
        h = (h * 4).min(n / 2);
    }
    emit(&profile);
    meg_bench::commentary(
        "Expected shape: the measured worst-case expansion tracks αR²/h for small sets and\n\
         βR/√h for large ones (ratios of order 1), which is exactly the input Theorem 2.5\n\
         needs to yield the O(√n/R + log log R) flooding bound.",
    );
}
