//! Experiment `exp_edge_vs_density` — Theorems 4.3 and 4.4.
//!
//! Thin wrapper over the engine's built-in `edge_vs_density` scenario: fixes
//! `n` and sweeps the stationary edge probability `p̂` from just above the
//! connectivity threshold up to a dense regime via the `p_hat_factor` axis.
//! Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run
//! `meg-lab show edge_vs_density` to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "edge_vs_density",
        "Expected shape (Thm 4.3/4.4): flooding time decreases as p̂ (equivalently the\n\
         expected degree np̂) grows, every row completes, and each mean sits between the\n\
         Theorem 4.4 lower bound and a small constant times the Theorem 4.3 upper shape.",
    );
}
