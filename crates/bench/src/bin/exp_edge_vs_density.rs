//! Experiment `exp_edge_vs_density` — Theorems 4.3 and 4.4.
//!
//! Fixes `n` and sweeps the stationary edge probability `p̂` from just above
//! the connectivity threshold `c log n / n` up to a dense regime. The
//! measured flooding time must stay between the Theorem 4.4 lower bound
//! `log(n/2)/log(2np̂)` and a small constant times the Theorem 4.3 upper
//! shape `log n / log(np̂) + log log(np̂)`, and it should fall as the network
//! gets denser (larger `np̂` means fatter expansion, hence fewer rounds).

use meg_bench::{edge_flooding_summary, emit, master_seed, mean_cell, range_cell, scaled, trials};
use meg_core::evolving::InitialDistribution;
use meg_core::spec;
use meg_edge::EdgeMegParams;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let seed = master_seed();
    let n = scaled(4_000);
    let threshold = spec::edge_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);

    let mut table = Table::new(
        format!("exp_edge_vs_density: flooding time vs p̂ (n = {n}, q = 0.5)"),
        &[
            "p̂ / threshold",
            "p̂",
            "expected degree np̂",
            "regime",
            "completion",
            "mean T",
            "range",
            "upper shape",
            "lower bound",
            "T within [lower·0.99, 4·upper]?",
        ],
    );

    for factor in [1.5f64, 3.0, 6.0, 15.0, 40.0, 120.0] {
        // Cap p̂ so the implied birth rate p = q·p̂/(1−p̂) stays ≤ 1 at q = 0.5.
        let p_hat = (threshold * factor).min(0.6);
        let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
        let (summary, rate) = edge_flooding_summary(
            params,
            InitialDistribution::Stationary,
            trials(),
            seed ^ (factor * 10.0) as u64,
        );
        let bounds = params.bounds();
        let regime = spec::edge_regime(n, p_hat, spec::DEFAULT_THRESHOLD_CONSTANT);
        let sandwiched = summary
            .as_ref()
            .map(|s| s.mean >= bounds.lower() * 0.99 && s.mean <= 4.0 * bounds.upper_shape() + 4.0)
            .map(|ok| if ok { "yes" } else { "NO" }.to_string())
            .unwrap_or_else(|| "-".into());
        table.push_row(&[
            fmt_f64(factor),
            format!("{p_hat:.5}"),
            fmt_f64(n as f64 * p_hat),
            format!("{regime:?}"),
            format!("{:.0}%", rate * 100.0),
            mean_cell(&summary),
            range_cell(&summary),
            fmt_f64(bounds.upper_shape()),
            fmt_f64(bounds.lower()),
            sandwiched,
        ]);
    }
    emit(&table);

    meg_bench::commentary(
        "Expected shape: flooding time decreases as p̂ (equivalently the expected degree np̂)\n\
         grows, and every row sits between the Theorem 4.4 lower bound and a small constant\n\
         times the Theorem 4.3 upper shape — who wins never changes, only the gap narrows.",
    );
}
