//! Experiment `exp_geo_vs_radius` — Theorems 3.4 and 3.5.
//!
//! Fixes `n` and sweeps the transmission radius `R` from the connectivity
//! threshold up to nearly the side of the square. The measured flooding time
//! must always lie between the Theorem 3.5 lower bound `√n / (2(R + 2r))` and
//! a constant multiple of the Theorem 3.4 upper-bound shape `√n/R + log log R`,
//! and the crossover from "many rounds" to "a handful of rounds" happens as
//! `R` approaches `√n`.

use meg_bench::{emit, geo_flooding_summary, master_seed, mean_cell, range_cell, scaled, trials};
use meg_core::bounds::GeometricBounds;
use meg_core::spec;
use meg_geometric::GeometricMegParams;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let seed = master_seed();
    let n = scaled(3_000);
    let threshold = spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);
    let side = (n as f64).sqrt();

    let mut table = Table::new(
        format!("exp_geo_vs_radius: flooding time vs transmission radius (n = {n}, r = R/2)"),
        &[
            "R",
            "R / threshold",
            "regime",
            "completion",
            "mean T",
            "range",
            "upper shape",
            "lower bound",
            "T within [lower, 4·upper]?",
        ],
    );

    for factor in [1.0f64, 1.5, 2.0, 3.0, 5.0, 8.0] {
        let radius = (threshold * factor).min(side * 0.95);
        let move_radius = radius / 2.0;
        let params = GeometricMegParams::new(n, move_radius, radius);
        let (summary, rate) =
            geo_flooding_summary(params, trials(), seed ^ (factor * 100.0) as u64);
        let bounds = GeometricBounds::new(n, radius, move_radius);
        let regime =
            spec::geometric_regime(n, radius, move_radius, spec::DEFAULT_THRESHOLD_CONSTANT);
        let sandwiched = summary
            .as_ref()
            .map(|s| s.mean >= bounds.lower() * 0.99 && s.mean <= 4.0 * bounds.upper(1.0) + 4.0)
            .map(|ok| if ok { "yes" } else { "NO" }.to_string())
            .unwrap_or_else(|| "-".into());
        table.push_row(&[
            fmt_f64(radius),
            fmt_f64(factor),
            format!("{regime:?}"),
            format!("{:.0}%", rate * 100.0),
            mean_cell(&summary),
            range_cell(&summary),
            fmt_f64(bounds.upper_shape()),
            fmt_f64(bounds.lower()),
            sandwiched,
        ]);
    }
    emit(&table);

    println!(
        "Expected shape: mean flooding time decreases roughly like 1/R while R stays well\n\
         below √n (= {side:.0} here), and every row is sandwiched between the Theorem 3.5\n\
         lower bound and a small constant times the Theorem 3.4 upper-bound shape."
    );
}
