//! Experiment `exp_geo_vs_radius` — Theorems 3.4 and 3.5.
//!
//! Thin wrapper over the engine's built-in `geo_vs_radius` scenario: fixes
//! `n` and sweeps the transmission radius `R` from the connectivity threshold
//! up towards `√n` (with `r = R/2`). Honours `MEG_SEED`, `MEG_TRIALS`,
//! `MEG_SCALE`, `MEG_OUTPUT`; run `meg-lab show geo_vs_radius` to see the
//! scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "geo_vs_radius",
        "Expected shape (Thm 3.4/3.5): mean flooding time decreases roughly like 1/R while\n\
         R stays well below √n, every row stays in the Tight/UpperBoundOnly regimes, and\n\
         completion is 100% above the connectivity threshold.",
    );
}
