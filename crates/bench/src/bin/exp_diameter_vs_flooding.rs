//! Experiment `exp_diameter_vs_flooding` — the Introduction's separation
//! example.
//!
//! The paper opens by noting that a diameter bound for a dynamic network says
//! nothing about its flooding time: there are n-node dynamic networks whose
//! every snapshot has constant diameter while flooding needs Θ(n) rounds.
//! This experiment measures both quantities for two deterministic evolving
//! graphs:
//!
//! * the rotating star (diameter 2, flooding n−1 from the worst source) — the
//!   separation witness;
//! * the rotating bridge (two cliques joined by a moving edge, diameter 3,
//!   flooding ≤ 4) — the contrast showing that expansion, not diameter, is
//!   what buys fast flooding.
//!
//! It also evaluates the Theorem 2.5 machinery on both: the measured
//! expansion of the rotating star collapses (k ≈ 1/h), which is exactly why
//! the general bound degenerates to Θ(n) there.

use meg_bench::emit;
use meg_core::adversarial::{RotatingBridge, RotatingStar};
use meg_core::analysis::{measure_expansion_sequence, ExpansionMeasurement};
use meg_core::flooding::flood;
use meg_stats::seeds::labeled_rng;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let mut table = Table::new(
        "exp_diameter_vs_flooding: snapshot diameter vs flooding time vs Theorem 2.5 bound",
        &[
            "n",
            "evolving graph",
            "snapshot diameter",
            "worst-source flooding T",
            "predicted T",
            "measured Thm 2.5 bound",
        ],
    );

    for n in [64usize, 256, 1024] {
        // Rotating star: flooding from the worst source takes n − 1 rounds.
        let mut star = RotatingStar::new(n, 0);
        let source = star.worst_source();
        let predicted = star.predicted_worst_flooding_time();
        let diameter = star.snapshot_diameter();
        let time = flood(&mut star, source, 10 * n as u64)
            .flooding_time()
            .expect("rotating star completes");
        let mut probe = RotatingStar::new(n, 0);
        let mut rng = labeled_rng(2009, "diam-star");
        let bound =
            measure_expansion_sequence(&mut probe, ExpansionMeasurement::default(), &mut rng)
                .map(|seq| fmt_f64(seq.flooding_bound()))
                .unwrap_or_else(|_| "-".into());
        table.push_row(&[
            n.to_string(),
            "rotating star".to_string(),
            diameter.to_string(),
            time.to_string(),
            predicted.to_string(),
            bound,
        ]);

        // Rotating bridge: same constant diameter, but expansion is excellent.
        let mut bridge = RotatingBridge::new(n);
        let diameter = bridge.snapshot_diameter();
        let time = flood(&mut bridge, 1, 10 * n as u64)
            .flooding_time()
            .expect("rotating bridge completes");
        let mut probe = RotatingBridge::new(n);
        let mut rng = labeled_rng(2009, "diam-bridge");
        let bound =
            measure_expansion_sequence(&mut probe, ExpansionMeasurement::default(), &mut rng)
                .map(|seq| fmt_f64(seq.flooding_bound()))
                .unwrap_or_else(|_| "-".into());
        table.push_row(&[
            n.to_string(),
            "rotating bridge (two cliques)".to_string(),
            diameter.to_string(),
            time.to_string(),
            "≤ 4".to_string(),
            bound,
        ]);
    }
    emit(&table);

    meg_bench::commentary(
        "Expected shape: the rotating star's flooding time grows linearly in n despite its\n\
         constant diameter (and its measured Theorem 2.5 bound grows with it, because its\n\
         expansion is ~1/h), while the rotating bridge floods in a constant number of\n\
         rounds with a constant measured bound — diameter is irrelevant, expansion decides.",
    );
}
