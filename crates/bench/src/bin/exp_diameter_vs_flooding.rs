//! Experiment `exp_diameter_vs_flooding` — the Introduction's separation
//! example.
//!
//! Thin wrapper over the engine's built-in `diameter_vs_flooding` scenario:
//! runs worst-source flooding, a snapshot-diameter probe, and a Theorem 2.5
//! bound probe on the rotating star (the separation witness — constant
//! diameter, `Θ(n)` flooding) and the rotating bridge (the contrast — the
//! same constant diameter, but constant flooding thanks to good expansion).
//! Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run
//! `meg-lab show diameter_vs_flooding` to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "diameter_vs_flooding",
        "Expected shape: the rotating star's flooding time grows linearly in n despite its\n\
         constant diameter (and its measured Theorem 2.5 bound grows with it, because its\n\
         expansion is ~1/h), while the rotating bridge floods in a constant number of\n\
         rounds with a constant measured bound — diameter is irrelevant, expansion decides.",
    );
}
