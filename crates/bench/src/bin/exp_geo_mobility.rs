//! Experiment `exp_geo_mobility` — Corollary 3.6 and the Conclusions.
//!
//! Thin wrapper over the engine's built-in `geo_mobility` scenario: fixes
//! `n` and `R` and sweeps the move radius `r` (the maximum node speed) from
//! essentially zero (a static random geometric graph) to several times the
//! transmission radius. Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`,
//! `MEG_OUTPUT`; run `meg-lab show geo_mobility` to see the scenario as
//! JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "geo_mobility",
        "Expected shape: the mean flooding time is essentially flat for r/R ≤ 1 (mobility\n\
         has negligible impact — Corollary 3.6's regime) and starts to drop only once the\n\
         node speed clearly exceeds the transmission radius.",
    );
}
