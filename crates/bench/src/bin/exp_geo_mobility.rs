//! Experiment `exp_geo_mobility` — Corollary 3.6 and the Conclusions.
//!
//! Fixes `n` and `R` and sweeps the move radius `r` (the maximum node speed)
//! from essentially zero (a static random geometric graph) to several times
//! the transmission radius. The paper's headline conclusion is that, as long
//! as `r = O(R)`, mobility has an almost negligible impact: flooding time
//! stays at the static value Θ(√n/R). Only the lower bound degrades (it
//! scales with `1/(R + r)`), which is why very large speeds *can* start to
//! help — the regime later analysed in the follow-up work cited in Section 5.

use meg_bench::{emit, geo_flooding_summary, master_seed, mean_cell, range_cell, scaled, trials};
use meg_core::bounds::GeometricBounds;
use meg_core::spec;
use meg_geometric::GeometricMegParams;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let seed = master_seed();
    let n = scaled(3_000);
    let radius = 1.8 * spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);

    let mut table = Table::new(
        format!("exp_geo_mobility: flooding time vs node speed (n = {n}, R = {radius:.2})"),
        &[
            "r / R",
            "r",
            "completion",
            "mean T",
            "range",
            "static shape √n/R",
            "lower bound √n/(2(R+2r))",
        ],
    );

    let shape = GeometricBounds::new(n, radius, 0.0).theta_shape();
    // The grid resolution is 1, so a move radius below 1 freezes the walk and
    // serves as the static baseline.
    for ratio in [0.0f64, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let move_radius = if ratio == 0.0 { 0.4 } else { radius * ratio };
        let params = GeometricMegParams::new(n, move_radius, radius);
        let (summary, rate) =
            geo_flooding_summary(params, trials(), seed ^ (ratio * 1000.0) as u64);
        let bounds = GeometricBounds::new(n, radius, move_radius);
        table.push_row(&[
            fmt_f64(ratio),
            fmt_f64(move_radius),
            format!("{:.0}%", rate * 100.0),
            mean_cell(&summary),
            range_cell(&summary),
            fmt_f64(shape),
            fmt_f64(bounds.lower()),
        ]);
    }
    emit(&table);

    meg_bench::commentary(
        "Expected shape: the mean flooding time is essentially flat for r/R ≤ 1 (mobility\n\
         has negligible impact — Corollary 3.6's regime) and starts to drop only once the\n\
         node speed clearly exceeds the transmission radius.",
    );
}
