//! Experiment `exp_edge_stationary_vs_worst` — the Section 1 gap claim.
//!
//! Compares flooding on the *same* edge-MEG started (a) from the stationary
//! distribution and (b) from the empty graph — the worst-case start analysed
//! in reference \[9\]. In sparse-birth regimes (`p` tiny because `q` is tiny at
//! fixed `p̂`) the stationary start floods in a handful of rounds while the
//! empty start must wait on the order of `1/p` rounds for edges to be born at
//! all: the "exponential gap" the paper highlights.

use meg_bench::{edge_flooding_summary, emit, master_seed, mean_cell, scaled, trials};
use meg_core::bounds::EdgeBounds;
use meg_core::evolving::InitialDistribution;
use meg_core::spec;
use meg_edge::EdgeMegParams;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let seed = master_seed();
    let n = scaled(1_500);
    let p_hat = 4.0 * (n as f64).ln() / n as f64;

    let mut table = Table::new(
        format!("exp_edge_stationary_vs_worst: stationary vs empty-start flooding (n = {n}, p̂ = {p_hat:.4})"),
        &[
            "q",
            "p",
            "1/p (worst-case scale)",
            "gap condition holds?",
            "stationary mean T",
            "empty-start mean T",
            "measured gap",
        ],
    );

    for q in [0.5f64, 0.1, 0.02, 0.004] {
        let params = EdgeMegParams::with_stationary(n, p_hat, q);
        let (stationary, _) = edge_flooding_summary(
            params,
            InitialDistribution::Stationary,
            trials(),
            seed ^ (q * 1e4) as u64,
        );
        let (empty, _) = edge_flooding_summary(
            params,
            InitialDistribution::Empty,
            trials(),
            seed ^ 0xE ^ (q * 1e4) as u64,
        );
        let gap = match (&stationary, &empty) {
            (Some(s), Some(e)) if s.mean > 0.0 => fmt_f64(e.mean / s.mean),
            _ => "-".into(),
        };
        let condition = spec::exponential_gap_condition_moderate(n, params.p, params.q);
        table.push_row(&[
            fmt_f64(q),
            format!("{:.2e}", params.p),
            fmt_f64(EdgeBounds::worst_case_scale(params.p)),
            condition.to_string(),
            mean_cell(&stationary),
            mean_cell(&empty),
            gap,
        ]);
    }
    emit(&table);

    meg_bench::commentary(
        "Expected shape: the stationary column is flat (a handful of rounds, independent of\n\
         q), while the empty-start column grows like 1/p as q shrinks — the gap widens\n\
         without bound exactly in the regimes where the paper's gap conditions hold.",
    );
}
