//! Experiment `exp_edge_stationary_vs_worst` — the Section 1 gap claim.
//!
//! Thin wrapper over the engine's built-in `edge_stationary_vs_worst`
//! scenario: floods the *same* edge-MEG started (a) from the stationary
//! distribution and (b) from the empty graph — the worst-case start analysed
//! in reference \[9\] — across a sweep of death rates `q`. Honours
//! `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run
//! `meg-lab show edge_stationary_vs_worst` to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "edge_stationary_vs_worst",
        "Expected shape: the stationary (init=stationary) rows stay flat — a handful of\n\
         rounds, independent of q — while the empty-start rows grow like 1/p as q shrinks\n\
         at fixed p̂: the exponential gap the paper highlights in Section 1.",
    );
}
