//! Experiment `exp_geo_vs_n` — Theorem 3.4 / Corollary 3.6.
//!
//! Thin wrapper over the engine's built-in `geo_vs_n` scenario: sweeps the
//! node count `n` of a stationary geometric-MEG at the connectivity-threshold
//! radius and at a 2.5× denser one (both re-resolved per swept `n`, with
//! `r = R/2`), and checks that the measured flooding time scales like the
//! predicted `Θ(√n / R)`. Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`,
//! `MEG_OUTPUT`; run `meg-lab show geo_vs_n` to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "geo_vs_n",
        "Expected shape (Cor 3.6): with r = O(R), mean flooding time grows like √n/R down\n\
         each substrate column — ~√(n/log n) at the threshold radius, slower at the denser\n\
         one — and the ratio between the two columns tracks their radius ratio.",
    );
}
