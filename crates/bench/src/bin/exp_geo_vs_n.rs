//! Experiment `exp_geo_vs_n` — Theorem 3.4 / Corollary 3.6.
//!
//! Sweeps the number of nodes `n` of a stationary geometric-MEG at the
//! connectivity-threshold radius `R = 2√(log n)` (and at a denser radius
//! `R = n^{1/4}`), with move radius `r = R/2`, and checks that the measured
//! flooding time scales like the predicted `Θ(√n / R)`:
//!
//! * at `R = 2√(log n)` the predictor grows like `√(n / log n)`;
//! * at `R = n^{1/4}` it grows like `n^{1/4}`.
//!
//! The table reports the measured mean, the predictor, and their ratio (which
//! should be roughly constant down each column), plus a log–log fit of the
//! measured time against the predictor (exponent ≈ 1).

use meg_bench::{emit, geo_flooding_summary, master_seed, mean_cell, range_cell, scaled, trials};
use meg_core::bounds::GeometricBounds;
use meg_core::spec;
use meg_geometric::GeometricMegParams;
use meg_stats::fit::power_law_fit;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn run_sweep(label: &str, radius_of: impl Fn(usize) -> f64, sizes: &[usize], seed: u64) {
    let mut table = Table::new(
        format!("exp_geo_vs_n [{label}]: flooding time vs n (r = R/2)"),
        &[
            "n",
            "R",
            "regime",
            "completion",
            "mean T",
            "range",
            "√n/R",
            "T / (√n/R)",
            "lower bound",
        ],
    );
    let mut predictors = Vec::new();
    let mut means = Vec::new();
    for &n in sizes {
        let radius = radius_of(n);
        let move_radius = radius / 2.0;
        let params = GeometricMegParams::new(n, move_radius, radius);
        let (summary, rate) = geo_flooding_summary(params, trials(), seed ^ n as u64);
        let bounds = GeometricBounds::new(n, radius, move_radius);
        let predictor = bounds.theta_shape();
        let regime =
            spec::geometric_regime(n, radius, move_radius, spec::DEFAULT_THRESHOLD_CONSTANT);
        let ratio = summary
            .as_ref()
            .map(|s| s.mean / predictor)
            .map(fmt_f64)
            .unwrap_or_else(|| "-".into());
        if let Some(s) = &summary {
            predictors.push(predictor);
            means.push(s.mean);
        }
        table.push_row(&[
            n.to_string(),
            fmt_f64(radius),
            format!("{regime:?}"),
            format!("{:.0}%", rate * 100.0),
            mean_cell(&summary),
            range_cell(&summary),
            fmt_f64(predictor),
            ratio,
            fmt_f64(bounds.lower()),
        ]);
    }
    emit(&table);
    if let Some(fit) = power_law_fit(&predictors, &means) {
        meg_bench::commentary(format!(
            "log–log fit of mean flooding time against √n/R: exponent {:.3} (theory: 1), R² {:.3}\n",
            fit.exponent, fit.r_squared
        ));
    }
}

fn main() {
    let seed = master_seed();
    let sizes: Vec<usize> = [500usize, 1_000, 2_000, 4_000, 8_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();

    run_sweep(
        "R = 2√(log n), the connectivity threshold",
        |n| 2.0 * (n as f64).ln().sqrt(),
        &sizes,
        seed,
    );
    run_sweep(
        "R = n^(1/4), a denser network",
        |n| (n as f64).powf(0.25),
        &sizes,
        seed ^ 0xABCD,
    );

    meg_bench::commentary(
        "Expected shape (Corollary 3.6): with r = O(R) and R in the tight window, the\n\
         ratio T / (√n/R) stays roughly constant as n grows and the fitted exponent is ≈ 1.",
    );
}
