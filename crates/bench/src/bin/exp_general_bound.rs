//! Experiment `exp_general_bound` — Lemma 2.4 / Theorem 2.5 / Corollary 2.6.
//!
//! The general theorem says: if the stationary snapshots are
//! `(h_i, k_i)`-expanders (w.h.p.) then flooding finishes in
//! `O(Σ_i log(h_i/h_{i-1}) / log(1 + k_i))` rounds. This experiment closes the
//! loop empirically for both model families and for two static baselines:
//!
//! 1. measure an empirical expansion sequence of the evolving graph
//!    (worst sampled expansion over several snapshots, made monotone);
//! 2. evaluate the Lemma 2.4 sum on it;
//! 3. compare with the flooding time actually measured on an independent run.
//!
//! The evaluated bound must dominate the measured flooding time on every row,
//! and for the well-expanding models it should be within a small constant
//! factor (the bound is useful, not just valid).

use meg_bench::{emit, master_seed, scaled, trials};
use meg_core::analysis::{measure_expansion_sequence, ExpansionMeasurement};
use meg_core::evolving::FrozenGraph;
use meg_core::expansion::corollary_2_6;
use meg_core::flooding::flood;
use meg_edge::{EdgeMegParams, SparseEdgeMeg};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_graph::expansion::SamplingStrategy;
use meg_graph::generators;
use meg_stats::seeds::labeled_rng;
use meg_stats::table::fmt_f64;
use meg_stats::{Summary, Table};

struct Row {
    name: String,
    bound: f64,
    measured_mean: f64,
    measured_max: f64,
}

fn measure<M, F>(name: &str, mut make: F, options: ExpansionMeasurement, runs: usize) -> Row
where
    M: meg_core::evolving::EvolvingGraph,
    F: FnMut(u64) -> M,
{
    let mut rng = labeled_rng(master_seed(), name);
    let mut probe = make(0xFFFF);
    let seq = measure_expansion_sequence(&mut probe, options, &mut rng)
        .expect("expansion sequence measurable");
    let bound = seq.flooding_bound();
    let times: Vec<f64> = (0..runs)
        .filter_map(|i| {
            let mut meg = make(i as u64);
            flood(&mut meg, 0, meg_bench::ROUND_BUDGET)
                .flooding_time()
                .map(|t| t as f64)
        })
        .collect();
    let summary = Summary::of(&times).expect("at least one completed run");
    Row {
        name: name.to_string(),
        bound,
        measured_mean: summary.mean,
        measured_max: summary.max,
    }
}

fn main() {
    let seed = master_seed();
    let options = ExpansionMeasurement {
        snapshots: 4,
        samples_per_size: 25,
        strategy: SamplingStrategy::Mixed,
    };
    let runs = trials();

    let n_geo = scaled(1_500);
    let radius = 2.0 * (n_geo as f64).ln().sqrt();
    let geo_params = GeometricMegParams::new(n_geo, radius / 2.0, radius);

    let n_edge = scaled(1_500);
    let p_hat = 4.0 * (n_edge as f64).ln() / n_edge as f64;
    let edge_params = EdgeMegParams::with_stationary(n_edge, p_hat, 0.5);

    let rows = vec![
        measure(
            "geometric-MEG (stationary)",
            |i| GeometricMeg::from_params(geo_params, seed ^ i),
            options,
            runs,
        ),
        measure(
            "edge-MEG (stationary)",
            |i| SparseEdgeMeg::stationary(edge_params, seed ^ i),
            options,
            runs,
        ),
        measure(
            "static Erdős–Rényi G(n, p̂)",
            |i| {
                let mut rng = labeled_rng(seed ^ i, "static-gnp");
                FrozenGraph::new(generators::erdos_renyi(n_edge, p_hat, &mut rng))
            },
            options,
            runs,
        ),
        measure(
            "static 2-D grid (weak expander)",
            |_| FrozenGraph::new(generators::grid2d(40, 40)),
            options,
            runs,
        ),
    ];

    let mut table = Table::new(
        "exp_general_bound: measured expansion sequence → Lemma 2.4 bound vs measured flooding",
        &[
            "evolving graph",
            "evaluated bound",
            "measured mean T",
            "measured max T",
            "bound ≥ max?",
            "bound / mean",
        ],
    );
    for row in &rows {
        table.push_row(&[
            row.name.clone(),
            fmt_f64(row.bound),
            fmt_f64(row.measured_mean),
            fmt_f64(row.measured_max),
            if row.bound >= row.measured_max {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            fmt_f64(row.bound / row.measured_mean),
        ]);
    }
    emit(&table);

    // Corollary 2.6 illustration on a synthetic constant-expansion sequence.
    let n = 1_000_000usize;
    let ks = vec![2.0f64; n / 2];
    meg_bench::commentary(format!(
        "Corollary 2.6 sanity value: constant expansion k = 2 on n = 10^6 gives Σ 1/(i·log 3) ≈ {:.1} (≈ log n / log 3 = {:.1})\n",
        corollary_2_6(&ks),
        (n as f64).ln() / 3f64.ln()
    ));

    meg_bench::commentary(
        "Expected shape: the evaluated bound dominates the measured flooding time on every\n\
         row; it is within a small factor for the expander-like rows (both MEG families,\n\
         G(n,p̂)) and much looser for the 2-D grid, whose expansion genuinely is poor.",
    );
}
