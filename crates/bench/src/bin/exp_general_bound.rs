//! Experiment `exp_general_bound` — Lemma 2.4 / Theorem 2.5 / Corollary 2.6.
//!
//! Thin wrapper over the engine's built-in `general_bound` scenario: for
//! both MEG families and two static baselines (Erdős–Rényi and a 2-D grid),
//! the bound probe measures an empirical expansion sequence and evaluates
//! the Lemma 2.4 flooding bound on it, while the flooding rows measure the
//! actual flooding time on independent runs. Honours `MEG_SEED`,
//! `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run `meg-lab show general_bound`
//! to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "general_bound",
        "Expected shape: each substrate's `bound` row dominates its `flooding` row; the\n\
         ratio is a small constant for the expander-like substrates (both MEG families,\n\
         static G(n,p̂)) and much looser for the 2-D grid, whose expansion genuinely is\n\
         poor.",
    );
}
