//! Experiment `exp_edge_vs_n` — Theorem 4.3 / Corollary 4.5.
//!
//! Sweeps the number of nodes `n` of a stationary edge-MEG with stationary
//! edge probability pinned to the sparse connected regime `p̂ = 3 log n / n`,
//! for two very different death rates `q` (fast and slow link churn). The
//! measured flooding time should track the `Θ(log n / log(np̂))` shape of
//! Corollary 4.5 — in this regime `np̂ = 3 log n`, so the predictor grows like
//! `log n / log log n` — and should be essentially independent of `q`
//! (stationarity is what matters, not the churn speed).

use meg_bench::{edge_flooding_summary, emit, master_seed, mean_cell, range_cell, scaled, trials};
use meg_core::evolving::InitialDistribution;
use meg_core::spec;
use meg_edge::EdgeMegParams;
use meg_stats::fit::power_law_fit;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn run_sweep(q: f64, sizes: &[usize], seed: u64) {
    let mut table = Table::new(
        format!("exp_edge_vs_n: flooding time vs n (p̂ = 3·log n / n, q = {q})"),
        &[
            "n",
            "p̂",
            "np̂",
            "regime",
            "completion",
            "mean T",
            "range",
            "log n / log(np̂)",
            "T / shape",
            "lower bound",
        ],
    );
    let mut shapes = Vec::new();
    let mut means = Vec::new();
    for &n in sizes {
        let p_hat = 3.0 * (n as f64).ln() / n as f64;
        let params = EdgeMegParams::with_stationary(n, p_hat, q);
        let (summary, rate) = edge_flooding_summary(
            params,
            InitialDistribution::Stationary,
            trials(),
            seed ^ n as u64,
        );
        let bounds = params.bounds();
        let shape = bounds.theta_shape();
        let regime = spec::edge_regime(n, p_hat, spec::DEFAULT_THRESHOLD_CONSTANT);
        if let Some(s) = &summary {
            shapes.push(shape);
            means.push(s.mean);
        }
        table.push_row(&[
            n.to_string(),
            format!("{p_hat:.5}"),
            fmt_f64(n as f64 * p_hat),
            format!("{regime:?}"),
            format!("{:.0}%", rate * 100.0),
            mean_cell(&summary),
            range_cell(&summary),
            fmt_f64(shape),
            summary
                .as_ref()
                .map(|s| fmt_f64(s.mean / shape))
                .unwrap_or_else(|| "-".into()),
            fmt_f64(bounds.lower()),
        ]);
    }
    emit(&table);
    if let Some(fit) = power_law_fit(&shapes, &means) {
        println!(
            "log–log fit of mean flooding time against log n / log(np̂): exponent {:.3} (theory: 1), R² {:.3}\n",
            fit.exponent, fit.r_squared
        );
    }
}

fn main() {
    let seed = master_seed();
    let sizes: Vec<usize> = [1_000usize, 2_000, 4_000, 8_000, 16_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();

    run_sweep(0.5, &sizes, seed);
    run_sweep(0.02, &sizes, seed ^ 0xBEEF);

    println!(
        "Expected shape (Corollary 4.5): the ratio T / (log n / log(np̂)) stays roughly\n\
         constant as n grows, and the fast-churn and slow-churn tables agree — in the\n\
         stationary regime the churn rate q does not matter, only p̂ does."
    );
}
