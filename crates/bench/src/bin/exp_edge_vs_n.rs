//! Experiment `exp_edge_vs_n` — Theorem 4.3 / Corollary 4.5.
//!
//! Thin wrapper over the engine's built-in `edge_vs_n` scenario: sweeps `n`
//! with the stationary edge probability pinned to the sparse connected regime
//! `p̂ = 3·ln n / n`, for fast (`q = 0.5`) and slow (`q = 0.02`) link churn.
//! Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run
//! `meg-lab show edge_vs_n` to see the scenario as JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "edge_vs_n",
        "Expected shape (Corollary 4.5): mean flooding time tracks log n / log(np̂) as n\n\
         grows, and the fast-churn (q=0.5) and slow-churn (q=0.02) rows agree — in the\n\
         stationary regime the churn rate q does not matter, only p̂ does.",
    );
}
