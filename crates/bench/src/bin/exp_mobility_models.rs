//! Experiment `exp_mobility_models` — the "further mobility models" claim.
//!
//! The flooding-time comparison across the four mobility models now runs
//! through the engine's built-in `mobility_models` scenario (one geometric
//! substrate per model, identical radius and speed). This wrapper adds the
//! stationary-occupancy uniformity diagnostics the scenario rows do not
//! carry: the paper's expansion argument only needs the stationary position
//! law to be (almost) uniform, so each model's TV distance from uniform and
//! max/min cell-occupancy ratio are reported first.
//!
//! Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`, `MEG_OUTPUT`; run
//! `meg-lab show mobility_models` to see the scenario as JSON.

use meg_bench::{emit, master_seed, scaled};
use meg_engine::harness;
use meg_engine::sink::{format_from_env, OutputFormat};
use meg_mobility::grid_walk::GridWalkParams;
use meg_mobility::stationary::measure_uniformity;
use meg_mobility::{Billiard, GridWalk, RandomWaypoint, TorusWalkers};
use meg_stats::seeds::labeled_rng;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn uniformity_table(seed: u64) -> Table {
    let n = scaled(2_000);
    let side = (n as f64).sqrt();
    let radius = 2.0 * (n as f64).ln().sqrt();
    let move_radius = radius / 2.0;
    let cells = ((side / radius).floor() as usize).max(2);

    let mut table = Table::new(
        format!(
            "exp_mobility_models: stationary occupancy uniformity over {cells}×{cells} cells \
             (n = {n}, r = {move_radius:.2})"
        ),
        &[
            "model",
            "TV distance from uniform",
            "max/min cell occupancy",
        ],
    );

    // The `Mobility` trait is not object-safe (its methods are generic over
    // the RNG), so the models are enumerated explicitly instead of boxed.
    {
        let mut rng = labeled_rng(seed, "mob-grid");
        let mut probe = GridWalk::new(
            GridWalkParams {
                n,
                side,
                move_radius,
                resolution: 1.0,
            },
            &mut rng,
        );
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        table.push_row(&[
            "grid random walk (paper)".to_string(),
            fmt_f64(report.tv_distance),
            fmt_f64(report.max_min_ratio),
        ]);
    }
    {
        let mut rng = labeled_rng(seed, "mob-walkers");
        let mut probe = TorusWalkers::new(n, side, move_radius, 1.0, &mut rng);
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        table.push_row(&[
            "walkers on toroidal grid".to_string(),
            fmt_f64(report.tv_distance),
            fmt_f64(report.max_min_ratio),
        ]);
    }
    {
        let mut rng = labeled_rng(seed, "mob-waypoint");
        let mut probe = RandomWaypoint::new(n, side, move_radius / 2.0, move_radius, &mut rng);
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        table.push_row(&[
            "random waypoint on torus".to_string(),
            fmt_f64(report.tv_distance),
            fmt_f64(report.max_min_ratio),
        ]);
    }
    {
        let mut rng = labeled_rng(seed, "mob-billiard");
        let mut probe = Billiard::new(n, side, move_radius / 2.0, move_radius, 0.1, &mut rng);
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        table.push_row(&[
            "random direction / billiard".to_string(),
            fmt_f64(report.tv_distance),
            fmt_f64(report.max_min_ratio),
        ]);
    }
    table
}

fn main() {
    // Machine-readable formats get only the engine rows; the uniformity
    // diagnostics are a human-facing preamble.
    if format_from_env() == OutputFormat::Table {
        emit(&uniformity_table(master_seed()));
    }
    harness::run_builtin_experiment(
        "mobility_models",
        "Expected shape: every model keeps the TV distance small and the max/min occupancy\n\
         ratio near 1, and their flooding times all sit within a small constant factor of\n\
         the same Θ(√n/R) value — supporting the paper's claim that only the (almost)\n\
         uniform stationary distribution matters.",
    );
}
