//! Experiment `exp_mobility_models` — the "further mobility models" claim.
//!
//! The paper proves its geometric-MEG bounds for the grid random walk and
//! argues (Sections 1 and 3) that the same expansion technique applies to any
//! mobility model whose stationary position distribution is (almost) uniform:
//! the random waypoint model on a torus, the random direction model with
//! reflection (billiard), and the walkers model on a toroidal grid.
//!
//! For each model this experiment measures (a) the uniformity of the
//! stationary occupancy over the Theorem 3.2 cell partition and (b) the
//! flooding time of the induced geometric-MEG, and checks that all models
//! behave like the analysed one.

use meg_bench::{emit, flooding_summary_with, master_seed, mean_cell, range_cell, scaled, trials};
use meg_core::bounds::GeometricBounds;
use meg_geometric::GeometricMeg;
use meg_mobility::grid_walk::GridWalkParams;
use meg_mobility::stationary::measure_uniformity;
use meg_mobility::{Billiard, GridWalk, RandomWaypoint, TorusWalkers};
use meg_stats::seeds::labeled_rng;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let seed = master_seed();
    let n = scaled(2_000);
    let side = (n as f64).sqrt();
    let radius = 2.0 * (n as f64).ln().sqrt();
    let move_radius = radius / 2.0;
    let cells = ((side / radius).floor() as usize).max(2);
    let shape = GeometricBounds::new(n, radius, move_radius).theta_shape();

    println!(
        "n = {n}, side = {side:.1}, R = {radius:.2}, r = {move_radius:.2}, uniformity measured over {cells}×{cells} cells, Θ(√n/R) = {shape:.1}\n"
    );

    let mut table = Table::new(
        "exp_mobility_models: stationary uniformity and flooding time by mobility model",
        &[
            "model",
            "TV distance from uniform",
            "max/min cell occupancy",
            "completion",
            "mean T",
            "range",
            "T / (√n/R)",
        ],
    );

    // The `Mobility` trait is not object-safe (its methods are generic over
    // the RNG), so the models are enumerated explicitly instead of boxed.

    // --- grid random walk (the analysed model)
    {
        let mut rng = labeled_rng(seed, "mob-grid");
        let mut probe = GridWalk::new(
            GridWalkParams {
                n,
                side,
                move_radius,
                resolution: 1.0,
            },
            &mut rng,
        );
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        let (summary, rate) = flooding_summary_with(trials(), |i| {
            let mut rng = labeled_rng(seed ^ i as u64, "mob-grid-run");
            let walk = GridWalk::new(
                GridWalkParams {
                    n,
                    side,
                    move_radius,
                    resolution: 1.0,
                },
                &mut rng,
            );
            GeometricMeg::new(walk, radius, seed ^ i as u64)
        });
        push_model_row(
            &mut table,
            "grid random walk (paper)",
            report.tv_distance,
            report.max_min_ratio,
            &summary,
            rate,
            shape,
        );
    }

    // --- walkers on a toroidal grid
    {
        let mut rng = labeled_rng(seed, "mob-walkers");
        let mut probe = TorusWalkers::new(n, side, move_radius, 1.0, &mut rng);
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        let (summary, rate) = flooding_summary_with(trials(), |i| {
            let mut rng = labeled_rng(seed ^ i as u64, "mob-walkers-run");
            let model = TorusWalkers::new(n, side, move_radius, 1.0, &mut rng);
            GeometricMeg::new(model, radius, seed ^ i as u64)
        });
        push_model_row(
            &mut table,
            "walkers on toroidal grid",
            report.tv_distance,
            report.max_min_ratio,
            &summary,
            rate,
            shape,
        );
    }

    // --- random waypoint on a torus
    {
        let mut rng = labeled_rng(seed, "mob-waypoint");
        let mut probe = RandomWaypoint::new(n, side, move_radius / 2.0, move_radius, &mut rng);
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        let (summary, rate) = flooding_summary_with(trials(), |i| {
            let mut rng = labeled_rng(seed ^ i as u64, "mob-waypoint-run");
            let model = RandomWaypoint::new(n, side, move_radius / 2.0, move_radius, &mut rng);
            GeometricMeg::new(model, radius, seed ^ i as u64)
        });
        push_model_row(
            &mut table,
            "random waypoint on torus",
            report.tv_distance,
            report.max_min_ratio,
            &summary,
            rate,
            shape,
        );
    }

    // --- random direction with reflection (billiard)
    {
        let mut rng = labeled_rng(seed, "mob-billiard");
        let mut probe = Billiard::new(n, side, move_radius / 2.0, move_radius, 0.1, &mut rng);
        let report = measure_uniformity(&mut probe, cells, 3, &mut rng);
        let (summary, rate) = flooding_summary_with(trials(), |i| {
            let mut rng = labeled_rng(seed ^ i as u64, "mob-billiard-run");
            let model = Billiard::new(n, side, move_radius / 2.0, move_radius, 0.1, &mut rng);
            GeometricMeg::new(model, radius, seed ^ i as u64)
        });
        push_model_row(
            &mut table,
            "random direction / billiard",
            report.tv_distance,
            report.max_min_ratio,
            &summary,
            rate,
            shape,
        );
    }

    emit(&table);
    println!(
        "Expected shape: every model keeps the TV distance small and the max/min occupancy\n\
         ratio near 1, and their flooding times all sit within a small constant factor of\n\
         the same Θ(√n/R) value — supporting the paper's claim that only the (almost)\n\
         uniform stationary distribution matters."
    );
}

fn push_model_row(
    table: &mut Table,
    name: &str,
    tv: f64,
    ratio: f64,
    summary: &Option<meg_stats::Summary>,
    rate: f64,
    shape: f64,
) {
    table.push_row(&[
        name.to_string(),
        fmt_f64(tv),
        fmt_f64(ratio),
        format!("{:.0}%", rate * 100.0),
        mean_cell(summary),
        range_cell(summary),
        summary
            .as_ref()
            .map(|s| fmt_f64(s.mean / shape))
            .unwrap_or_else(|| "-".into()),
    ]);
}
