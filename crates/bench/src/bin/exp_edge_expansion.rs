//! Experiment `exp_edge_expansion` — Theorem 4.1 / Lemma 4.2.
//!
//! Samples stationary snapshots of an edge-MEG (i.e. Erdős–Rényi graphs
//! `G(n, p̂)`) and measures their node-expansion profile. Theorem 4.1 predicts
//! two regimes:
//!
//! * `h ≤ 1/p̂` — an `(h, np̂/c)`-expander: small sets expand by about the
//!   expected degree;
//! * `1/p̂ ≤ h ≤ n/2` — an `(h, n/(ch))`-expander: larger sets already see a
//!   constant fraction of the whole graph.
//!
//! The table reports the measured worst sampled expansion ratio at each set
//! size against the corresponding theoretical shape.

use meg_bench::{emit, master_seed, scaled, trials};
use meg_edge::init::sample_stationary_snapshot;
use meg_edge::EdgeMegParams;
use meg_graph::expansion::{min_expansion_sampled, SamplingStrategy};
use meg_graph::{connectivity, Graph};
use meg_stats::seeds::labeled_rng;
use meg_stats::table::fmt_f64;
use meg_stats::Table;

fn main() {
    let n = scaled(4_000);
    let p_hat = 4.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
    let bounds = params.bounds();
    let c = 4.0; // the "sufficiently large constant" of Theorem 4.1, made explicit
    let crossover = bounds.expansion_crossover();
    let mut rng = labeled_rng(master_seed(), "exp_edge_expansion");

    // Connectivity sanity check across a few snapshots.
    let mut connected = 0usize;
    let mut snapshot = None;
    for _ in 0..trials() {
        let g = sample_stationary_snapshot(params, &mut rng);
        if connectivity::is_connected(&g) {
            connected += 1;
        }
        snapshot = Some(g);
    }
    meg_bench::commentary(format!(
        "stationary snapshot G(n = {n}, p̂ = {p_hat:.5}): {connected}/{} sampled snapshots connected, average degree ≈ {:.1}\n",
        trials(),
        bounds.expected_degree()
    ));

    let g = snapshot.expect("at least one snapshot");
    let mut table = Table::new(
        format!(
            "exp_edge_expansion: expansion profile of G(n, p̂) (1/p̂ ≈ {crossover:.0}, edges = {})",
            g.num_edges()
        ),
        &[
            "h",
            "regime",
            "measured min |N(I)|/|I|",
            "theory shape",
            "measured / theory",
        ],
    );
    let samples = 30;
    let mut h = 1usize;
    while h <= n / 2 {
        let measured = min_expansion_sampled(&g, h, samples, SamplingStrategy::Mixed, &mut rng);
        let (regime, theory) = if (h as f64) <= crossover {
            ("small (np̂/c)", bounds.expansion_small(c))
        } else {
            ("large (n/(ch))", bounds.expansion_large(h, c))
        };
        table.push_row(&[
            h.to_string(),
            regime.to_string(),
            fmt_f64(measured),
            fmt_f64(theory),
            fmt_f64(measured / theory),
        ]);
        if h == n / 2 {
            break;
        }
        h = (h * 4).min(n / 2);
    }
    emit(&table);

    meg_bench::commentary(
        "Expected shape: small sets expand by about the expected degree np̂ (flat in h),\n\
         larger sets by about n/(ch) (falling like 1/h) — the two inputs Theorem 2.5 turns\n\
         into the O(log n / log(np̂) + log log(np̂)) flooding bound.",
    );
}
