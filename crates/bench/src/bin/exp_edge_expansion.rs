//! Experiment `exp_edge_expansion` — Theorem 4.1 / Lemma 4.2.
//!
//! Thin wrapper over the engine's built-in `edge_expansion` scenario:
//! samples stationary snapshots of an edge-MEG (i.e. Erdős–Rényi graphs
//! `G(n, p̂)`) and measures the worst sampled node-expansion ratio across a
//! sweep of set sizes `h`. Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`,
//! `MEG_OUTPUT`; run `meg-lab show edge_expansion` to see the scenario as
//! JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "edge_expansion",
        "Expected shape (Thm 4.1): small sets (h ≤ 1/p̂) expand by about the expected degree\n\
         np̂ (flat in h), larger sets by about n/(ch) (falling like 1/h) — the two inputs\n\
         Theorem 2.5 turns into the O(log n / log(np̂) + log log(np̂)) flooding bound.",
    );
}
