//! Experiment `exp_protocol_variants` — flooding as the baseline.
//!
//! The paper motivates flooding as the latency baseline against which
//! dissemination protocols for unknown dynamic topologies are judged. This
//! experiment runs the protocol variants implemented in
//! `meg-core::protocols` on the same stationary MEGs and reports completion
//! time and message overhead, so the trade-off the literature describes is
//! visible on both model families:
//!
//! * plain flooding — fastest, most messages;
//! * probabilistic flooding (β < 1) — fewer messages, somewhat slower;
//! * parsimonious flooding (k active rounds) — far fewer messages, can stall
//!   on dynamic graphs if k is too small;
//! * push–pull gossip — n messages per round, completion in O(log n) rounds on
//!   dense snapshots.

use meg_bench::{emit, master_seed, scaled};
use meg_core::protocols::{
    parsimonious_flood, probabilistic_flood, push_pull_gossip, ProtocolResult,
};
use meg_edge::{EdgeMegParams, SparseEdgeMeg};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_stats::seeds::labeled_rng;
use meg_stats::Table;

fn push_rows(table: &mut Table, family: &str, runs: &[(&str, ProtocolResult)]) {
    for (protocol, result) in runs {
        table.push_row(&[
            family.to_string(),
            protocol.to_string(),
            result.completed.to_string(),
            result.rounds.to_string(),
            result.messages_sent.to_string(),
            result.informed_count().to_string(),
        ]);
    }
}

fn main() {
    let seed = master_seed();
    let budget = 100_000u64;
    let mut table = Table::new(
        "exp_protocol_variants: dissemination protocols on stationary MEGs",
        &[
            "model",
            "protocol",
            "completed",
            "rounds",
            "messages",
            "informed",
        ],
    );

    // ------------------------------------------------------------- edge-MEG
    let n = scaled(2_000);
    let p_hat = 4.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.2);
    let mut rng = labeled_rng(seed, "protocols-edge");
    let runs = vec![
        (
            "flooding",
            probabilistic_flood(
                &mut SparseEdgeMeg::stationary(params, seed),
                0,
                1.0,
                budget,
                &mut rng,
            ),
        ),
        (
            "probabilistic flooding β=0.3",
            probabilistic_flood(
                &mut SparseEdgeMeg::stationary(params, seed),
                0,
                0.3,
                budget,
                &mut rng,
            ),
        ),
        (
            "parsimonious flooding k=1",
            parsimonious_flood(&mut SparseEdgeMeg::stationary(params, seed), 0, 1, budget),
        ),
        (
            "parsimonious flooding k=4",
            parsimonious_flood(&mut SparseEdgeMeg::stationary(params, seed), 0, 4, budget),
        ),
        (
            "push–pull gossip",
            push_pull_gossip(
                &mut SparseEdgeMeg::stationary(params, seed),
                0,
                budget,
                &mut rng,
            ),
        ),
    ];
    push_rows(
        &mut table,
        &format!("edge-MEG (n={n}, p̂={p_hat:.4})"),
        &runs,
    );

    // -------------------------------------------------------- geometric-MEG
    let n_geo = scaled(1_500);
    let radius = 2.0 * (n_geo as f64).ln().sqrt();
    let geo = GeometricMegParams::new(n_geo, radius / 2.0, radius);
    let mut rng = labeled_rng(seed, "protocols-geo");
    let runs = vec![
        (
            "flooding",
            probabilistic_flood(
                &mut GeometricMeg::from_params(geo, seed),
                0,
                1.0,
                budget,
                &mut rng,
            ),
        ),
        (
            "probabilistic flooding β=0.3",
            probabilistic_flood(
                &mut GeometricMeg::from_params(geo, seed),
                0,
                0.3,
                budget,
                &mut rng,
            ),
        ),
        (
            "parsimonious flooding k=1",
            parsimonious_flood(&mut GeometricMeg::from_params(geo, seed), 0, 1, budget),
        ),
        (
            "parsimonious flooding k=4",
            parsimonious_flood(&mut GeometricMeg::from_params(geo, seed), 0, 4, budget),
        ),
        (
            "push–pull gossip",
            push_pull_gossip(
                &mut GeometricMeg::from_params(geo, seed),
                0,
                budget,
                &mut rng,
            ),
        ),
    ];
    push_rows(
        &mut table,
        &format!("geometric-MEG (n={n_geo}, R={radius:.1})"),
        &runs,
    );

    emit(&table);
    println!(
        "Expected shape: plain flooding has the fewest rounds on both families (it is the\n\
         latency baseline the paper argues for); probabilistic and parsimonious variants\n\
         trade rounds — or even completion, for small k on dynamic graphs — for messages;\n\
         push–pull needs more rounds but only n messages per round."
    );
}
