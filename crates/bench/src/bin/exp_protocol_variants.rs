//! Experiment `exp_protocol_variants` — flooding as the baseline.
//!
//! Thin wrapper over the engine's built-in `protocol_variants` scenario:
//! runs flooding, probabilistic flooding (β = 0.3), parsimonious flooding
//! (k = 1 and k = 4), and push–pull gossip on one stationary edge-MEG and one
//! stationary geometric-MEG. Honours `MEG_SEED`, `MEG_TRIALS`, `MEG_SCALE`,
//! `MEG_OUTPUT`; run `meg-lab show protocol_variants` to see the scenario as
//! JSON.

fn main() {
    meg_engine::harness::run_builtin_experiment(
        "protocol_variants",
        "Expected shape: plain flooding has the fewest rounds on both families (it is the\n\
         latency baseline the paper argues for); probabilistic and parsimonious variants\n\
         trade rounds — or even completion, for small k on dynamic graphs — for messages;\n\
         push–pull needs more rounds but only ~n messages per round.",
    );
}
