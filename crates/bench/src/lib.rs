//! Shared infrastructure for the experiment binaries and Criterion benches.
//!
//! All twelve `exp_*` binaries are thin wrappers over the scenario engine's
//! built-ins (`meg_engine::harness::run_builtin_experiment`; the
//! scenario ↔ theorem map lives in `docs/EXPERIMENTS.md`). What remains
//! here is the shared substrate the Criterion benches and the wrappers'
//! human-facing extras use — seeded flooding summaries, table emission
//! through the engine sink, commentary gating — honouring the same
//! environment knobs:
//!
//! * `MEG_SEED`   — master seed (default 2009, the paper's publication year);
//! * `MEG_TRIALS` — trials per configuration (default 5);
//! * `MEG_SCALE`  — multiplies the default problem sizes (default 1.0), so a
//!   quick laptop run and a long server run use the same binaries;
//! * `MEG_CSV`    — when set, tables are also emitted as CSV after the ASCII
//!   rendering.
//!
//! ## Example
//!
//! ```
//! use meg_edge::EdgeMegParams;
//! use meg_core::evolving::InitialDistribution;
//!
//! let n = 300;
//! let p_hat = 3.0 * (n as f64).ln() / n as f64;
//! let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
//! let (summary, completion) =
//!     meg_bench::edge_flooding_summary(params, InitialDistribution::Stationary, 3, 2009);
//! assert_eq!(completion, 1.0);
//! assert!(summary.unwrap().mean >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use meg_core::evolving::{EvolvingGraph, InitialDistribution};
use meg_core::flooding::flood;
use meg_edge::{EdgeMegParams, SparseEdgeMeg};
use meg_geometric::{GeometricMeg, GeometricMegParams};
use meg_stats::{run_trials, Summary, Table};

/// Master seed used by every experiment (override with `MEG_SEED`).
pub fn master_seed() -> u64 {
    std::env::var("MEG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2009)
}

/// Number of Monte-Carlo trials per configuration (override with `MEG_TRIALS`).
pub fn trials() -> usize {
    std::env::var("MEG_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1)
}

/// Global problem-size multiplier (override with `MEG_SCALE`).
pub fn scale() -> f64 {
    std::env::var("MEG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0f64)
        .max(0.01)
}

/// Scales a nominal problem size by [`scale`].
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).round().max(4.0) as usize
}

/// Emits a table through the engine's output sink: `MEG_OUTPUT=table|json|csv`
/// selects the rendering (default: ASCII table). The legacy `MEG_CSV` knob
/// still appends a CSV rendering after the ASCII one.
pub fn emit(table: &Table) {
    let format = meg_engine::sink::format_from_env();
    print!("{}", meg_engine::sink::render_table(table, format));
    if format == meg_engine::OutputFormat::Table {
        println!();
        if std::env::var("MEG_CSV").is_ok() {
            println!("{}", table.render_csv());
        }
    }
}

/// Prints human-facing commentary (expected-shape notes, fit lines) — only
/// when the sink is the ASCII table. Machine-readable `MEG_OUTPUT=json|csv`
/// streams must stay free of prose.
pub fn commentary(text: impl std::fmt::Display) {
    if meg_engine::sink::format_from_env() == meg_engine::OutputFormat::Table {
        println!("{text}");
    }
}

/// Round budget used by flooding runs: generous enough that only genuinely
/// disconnected regimes fail to complete.
pub const ROUND_BUDGET: u64 = 2_000_000;

/// Runs `trials` independent stationary geometric-MEG flooding trials and
/// returns the summary of the completed runs together with the completion
/// rate.
pub fn geo_flooding_summary(
    params: GeometricMegParams,
    trials: usize,
    seed: u64,
) -> (Option<Summary>, f64) {
    let times = run_trials(seed, trials, |i, _rng| {
        let mut meg = GeometricMeg::from_params(params, seed ^ (i as u64).wrapping_mul(0x9E37));
        flood(&mut meg, 0, ROUND_BUDGET).flooding_time()
    });
    summarize_optional_times(&times)
}

/// Runs `trials` independent edge-MEG flooding trials (sparse engine) and
/// returns the summary of completed runs plus the completion rate.
pub fn edge_flooding_summary(
    params: EdgeMegParams,
    init: InitialDistribution,
    trials: usize,
    seed: u64,
) -> (Option<Summary>, f64) {
    let times = run_trials(seed, trials, |i, _rng| {
        let mut meg = SparseEdgeMeg::new(params, init, seed ^ (i as u64).wrapping_mul(0x5851));
        flood(&mut meg, 0, ROUND_BUDGET).flooding_time()
    });
    summarize_optional_times(&times)
}

/// Turns a vector of optional flooding times into (summary of completed runs,
/// completion rate).
pub fn summarize_optional_times(times: &[Option<u64>]) -> (Option<Summary>, f64) {
    let completed: Vec<f64> = times.iter().flatten().map(|&t| t as f64).collect();
    let rate = if times.is_empty() {
        0.0
    } else {
        completed.len() as f64 / times.len() as f64
    };
    (Summary::of(&completed), rate)
}

/// Generic helper: run `trials` flooding trials on evolving graphs produced by
/// `make` (one fresh instance per trial) and summarise.
pub fn flooding_summary_with<M, F>(trials: usize, mut make: F) -> (Option<Summary>, f64)
where
    M: EvolvingGraph,
    F: FnMut(usize) -> M,
{
    let times: Vec<Option<u64>> = (0..trials)
        .map(|i| {
            let mut meg = make(i);
            flood(&mut meg, 0, ROUND_BUDGET).flooding_time()
        })
        .collect();
    summarize_optional_times(&times)
}

/// Formats an optional summary's mean for a table cell.
pub fn mean_cell(summary: &Option<Summary>) -> String {
    match summary {
        Some(s) => format!("{:.2}", s.mean),
        None => "-".to_string(),
    }
}

/// Formats an optional summary's min–max range for a table cell.
pub fn range_cell(summary: &Option<Summary>) -> String {
    match summary {
        Some(s) => format!("{:.0}–{:.0}", s.min, s.max),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        assert!(trials() >= 1);
        assert!(scale() > 0.0);
        assert!(master_seed() > 0);
        assert!(scaled(100) >= 4);
    }

    #[test]
    fn summarize_handles_failures() {
        let (summary, rate) = summarize_optional_times(&[Some(3), None, Some(5)]);
        let s = summary.unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
        let (none_summary, zero_rate) = summarize_optional_times(&[None, None]);
        assert!(none_summary.is_none());
        assert_eq!(zero_rate, 0.0);
        assert_eq!(mean_cell(&none_summary), "-");
    }

    #[test]
    fn small_geo_and_edge_summaries_complete() {
        let geo = GeometricMegParams::new(200, 1.0, 6.0);
        let (summary, rate) = geo_flooding_summary(geo, 2, 1);
        assert!(rate > 0.0);
        assert!(summary.unwrap().mean >= 1.0);

        let edge = EdgeMegParams::with_stationary(200, 0.08, 0.5);
        let (summary, rate) = edge_flooding_summary(edge, InitialDistribution::Stationary, 2, 1);
        assert_eq!(rate, 1.0);
        assert!(summary.unwrap().mean >= 1.0);
    }

    #[test]
    fn cells_render() {
        let (summary, _) = summarize_optional_times(&[Some(2), Some(4)]);
        assert_eq!(mean_cell(&summary), "3.00");
        assert_eq!(range_cell(&summary), "2–4");
    }
}
