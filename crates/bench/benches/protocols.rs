//! Criterion bench `protocols`: flooding vs its protocol variants on the same
//! stationary edge-MEG (the workload behind `exp_protocol_variants`).

use criterion::{criterion_group, criterion_main, Criterion};
use meg_core::protocols::{parsimonious_flood, probabilistic_flood, push_pull_gossip};
use meg_edge::{EdgeMegParams, SparseEdgeMeg};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/edge_meg");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 1_000usize;
    let p_hat = 4.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.2);

    group.bench_function("flooding", |b| {
        let mut seed = 0u64;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| {
            seed += 1;
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            probabilistic_flood(&mut meg, 0, 1.0, 100_000, &mut rng).rounds
        });
    });
    group.bench_function("probabilistic_beta_0.3", |b| {
        let mut seed = 0u64;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| {
            seed += 1;
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            probabilistic_flood(&mut meg, 0, 0.3, 100_000, &mut rng).rounds
        });
    });
    group.bench_function("parsimonious_k_2", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            parsimonious_flood(&mut meg, 0, 2, 100_000).rounds
        });
    });
    group.bench_function("push_pull", |b| {
        let mut seed = 0u64;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            seed += 1;
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            push_pull_gossip(&mut meg, 0, 100_000, &mut rng).rounds
        });
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
