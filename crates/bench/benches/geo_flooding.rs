//! Criterion bench `geo_flooding`: end-to-end flooding on stationary
//! geometric-MEG (the workload behind `exp_geo_vs_n`, `exp_geo_vs_radius` and
//! `exp_geo_mobility`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meg_core::flooding::flood;
use meg_geometric::{GeometricMeg, GeometricMegParams};
use std::time::Duration;

fn bench_flooding_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo_flooding/vs_n");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[500usize, 1_000, 2_000] {
        let radius = 2.0 * (n as f64).ln().sqrt();
        let params = GeometricMegParams::new(n, radius / 2.0, radius);
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, &params| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut meg = GeometricMeg::from_params(params, seed);
                flood(&mut meg, 0, 1_000_000).rounds
            });
        });
    }
    group.finish();
}

fn bench_flooding_vs_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo_flooding/vs_radius");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 1_000usize;
    let threshold = 2.0 * (n as f64).ln().sqrt();
    for &factor in &[1.0f64, 2.0, 4.0] {
        let radius = threshold * factor;
        let params = GeometricMegParams::new(n, radius / 2.0, radius);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("Rx{factor}")),
            &params,
            |b, &params| {
                let mut seed = 100u64;
                b.iter(|| {
                    seed += 1;
                    let mut meg = GeometricMeg::from_params(params, seed);
                    flood(&mut meg, 0, 1_000_000).rounds
                });
            },
        );
    }
    group.finish();
}

fn bench_mobility_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo_flooding/vs_speed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 1_000usize;
    let radius = 2.0 * (n as f64).ln().sqrt();
    for &ratio in &[0.5f64, 2.0] {
        let params = GeometricMegParams::new(n, radius * ratio, radius);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r/R={ratio}")),
            &params,
            |b, &params| {
                let mut seed = 200u64;
                b.iter(|| {
                    seed += 1;
                    let mut meg = GeometricMeg::from_params(params, seed);
                    flood(&mut meg, 0, 1_000_000).rounds
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flooding_vs_n,
    bench_flooding_vs_radius,
    bench_mobility_speed
);
criterion_main!(benches);
