//! Criterion bench `substrates`: the per-step building blocks every
//! experiment pays for — snapshot construction (radius graph, Erdős–Rényi,
//! sparse edge-chain step), mobility steps, and node-set operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meg_core::evolving::EvolvingGraph;
use meg_edge::{EdgeMegParams, SparseEdgeMeg};
use meg_geometric::radius_graph;
use meg_graph::{generators, Graph, NodeSet};
use meg_mobility::grid_walk::{GridWalk, GridWalkParams};
use meg_mobility::space::Region;
use meg_mobility::Mobility;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_radius_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/radius_graph");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 4_000] {
        let side = (n as f64).sqrt();
        let radius = 2.0 * (n as f64).ln().sqrt();
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &positions, |b, pos| {
            b.iter(|| radius_graph(pos, radius, Region::Square { side }).num_edges());
        });
    }
    group.finish();
}

fn bench_erdos_renyi(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/erdos_renyi");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &n in &[4_000usize, 16_000] {
        let p = 3.0 * (n as f64).ln() / n as f64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            b.iter(|| generators::erdos_renyi(n, p, &mut rng).num_edges());
        });
    }
    group.finish();
}

fn bench_sparse_edge_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/sparse_edge_step");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &n in &[4_000usize, 16_000] {
        let p_hat = 3.0 * (n as f64).ln() / n as f64;
        let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, &params| {
            let mut meg = SparseEdgeMeg::stationary(params, 1);
            b.iter(|| meg.advance().num_edges());
        });
    }
    group.finish();
}

fn bench_grid_walk_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/grid_walk_step");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &n in &[4_000usize, 16_000] {
        let params = GridWalkParams::paper(n, 2.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, &params| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut walk = GridWalk::new(params, &mut rng);
            b.iter(|| {
                walk.advance(&mut rng);
                walk.positions()[0]
            });
        });
    }
    group.finish();
}

fn bench_nodeset_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/nodeset");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    let n = 100_000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let a = NodeSet::from_iter(n, (0..n as u32).filter(|_| rng.gen_bool(0.3)));
    let b = NodeSet::from_iter(n, (0..n as u32).filter(|_| rng.gen_bool(0.3)));
    group.bench_function("union_100k", |bench| {
        bench.iter(|| {
            let mut x = a.clone();
            x.union_with(&b);
            x.len()
        });
    });
    group.bench_function("iterate_100k", |bench| {
        bench.iter(|| a.iter().map(|v| v as u64).sum::<u64>());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_radius_graph,
    bench_erdos_renyi,
    bench_sparse_edge_step,
    bench_grid_walk_step,
    bench_nodeset_ops
);
criterion_main!(benches);
