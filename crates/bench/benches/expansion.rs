//! Criterion bench `expansion`: measuring expansion profiles of stationary
//! snapshots (the workload behind `exp_geo_expansion`, `exp_edge_expansion`
//! and `exp_general_bound`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meg_edge::init::sample_stationary_snapshot;
use meg_edge::EdgeMegParams;
use meg_geometric::snapshot::sample_paper_snapshot;
use meg_geometric::GeometricMegParams;
use meg_graph::expansion::{ExpansionProfile, SamplingStrategy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn bench_profile_on_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion/gnp_profile");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[500usize, 2_000] {
        let p_hat = 4.0 * (n as f64).ln() / n as f64;
        let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let g = sample_stationary_snapshot(params, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| {
                ExpansionProfile::measure(g, 10, SamplingStrategy::Mixed, &mut rng)
                    .points
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_profile_on_geometric(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion/geometric_profile");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[500usize, 2_000] {
        let radius = 2.0 * (n as f64).ln().sqrt();
        let params = GeometricMegParams::new(n, radius / 2.0, radius);
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let snap = sample_paper_snapshot(params, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &snap.graph, |b, g| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| {
                ExpansionProfile::measure(g, 10, SamplingStrategy::Mixed, &mut rng)
                    .points
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile_on_gnp, bench_profile_on_geometric);
criterion_main!(benches);
