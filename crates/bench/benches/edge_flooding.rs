//! Criterion bench `edge_flooding`: end-to-end flooding on stationary and
//! worst-case-start edge-MEG (the workload behind `exp_edge_vs_n`,
//! `exp_edge_vs_density` and `exp_edge_stationary_vs_worst`), plus the
//! dense-vs-sparse engine comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meg_core::evolving::InitialDistribution;
use meg_core::flooding::flood;
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use std::time::Duration;

fn bench_flooding_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_flooding/vs_n");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[1_000usize, 4_000, 16_000] {
        let p_hat = 3.0 * (n as f64).ln() / n as f64;
        let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, &params| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut meg = SparseEdgeMeg::stationary(params, seed);
                flood(&mut meg, 0, 1_000_000).rounds
            });
        });
    }
    group.finish();
}

fn bench_flooding_vs_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_flooding/vs_density");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 2_000usize;
    let threshold = (n as f64).ln() / n as f64;
    for &factor in &[3.0f64, 10.0, 40.0] {
        let params = EdgeMegParams::with_stationary(n, threshold * factor, 0.5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("phat_x{factor}")),
            &params,
            |b, &params| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut meg = SparseEdgeMeg::stationary(params, seed);
                    flood(&mut meg, 0, 1_000_000).rounds
                });
            },
        );
    }
    group.finish();
}

fn bench_stationary_vs_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_flooding/stationary_vs_worst");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let n = 1_000usize;
    let p_hat = 4.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.05);
    for (label, init) in [
        ("stationary", InitialDistribution::Stationary),
        ("empty_start", InitialDistribution::Empty),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &init, |b, &init| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut meg = SparseEdgeMeg::new(params, init, seed);
                flood(&mut meg, 0, 1_000_000).rounds
            });
        });
    }
    group.finish();
}

fn bench_dense_vs_sparse_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_flooding/engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 600usize;
    let p_hat = 4.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
    group.bench_function("dense", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut meg = DenseEdgeMeg::stationary(params, seed);
            flood(&mut meg, 0, 1_000_000).rounds
        });
    });
    group.bench_function("sparse", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            flood(&mut meg, 0, 1_000_000).rounds
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flooding_vs_n,
    bench_flooding_vs_density,
    bench_stationary_vs_worst_case,
    bench_dense_vs_sparse_engine
);
criterion_main!(benches);
