//! Dense finite Markov chain with an explicit row-stochastic transition matrix.
//!
//! This is the brute-force reference implementation: it is used to validate
//! the closed-form two-state chain and the support-graph random walk on small
//! instances, and to compute stationary laws and mixing diagnostics for
//! arbitrary user-supplied chains.

use rand::Rng;

/// Errors produced when constructing or using a [`DenseChain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The matrix is empty or not square.
    BadShape,
    /// A row does not sum to 1 (within tolerance) or has a negative entry.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
    },
    /// Power iteration failed to converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::BadShape => write!(f, "transition matrix must be square and non-empty"),
            ChainError::NotStochastic { row } => {
                write!(f, "row {row} is not a probability distribution")
            }
            ChainError::NoConvergence => write!(f, "power iteration did not converge"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A finite Markov chain over states `0 .. n` with a dense transition matrix.
#[derive(Clone, Debug)]
pub struct DenseChain {
    rows: Vec<Vec<f64>>,
}

impl DenseChain {
    /// Builds a chain from a row-stochastic matrix.
    ///
    /// Each row must be a probability distribution (non-negative entries
    /// summing to 1 within `1e-9`).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, ChainError> {
        let n = rows.len();
        if n == 0 || rows.iter().any(|r| r.len() != n) {
            return Err(ChainError::BadShape);
        }
        for (i, row) in rows.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&x| x < -1e-12) || (sum - 1.0).abs() > 1e-9 {
                return Err(ChainError::NotStochastic { row: i });
            }
        }
        Ok(DenseChain { rows })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Transition probability `P(i → j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// One step of distribution evolution: returns `mu · P`.
    pub fn step_distribution(&self, mu: &[f64]) -> Vec<f64> {
        let n = self.num_states();
        assert_eq!(mu.len(), n, "distribution has wrong length");
        let mut out = vec![0.0; n];
        for (i, &mass) in mu.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (j, &p) in self.rows[i].iter().enumerate() {
                out[j] += mass * p;
            }
        }
        out
    }

    /// Samples the next state from state `i`.
    pub fn sample_next<R: Rng>(&self, i: usize, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (j, &p) in self.rows[i].iter().enumerate() {
            if u < p {
                return j;
            }
            u -= p;
        }
        // Floating-point slack: fall back to the last state with positive mass.
        self.rows[i]
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("stochastic row has positive mass")
    }

    /// Simulates a trajectory of `steps` transitions starting from `start`,
    /// returning every visited state (length `steps + 1`).
    pub fn trajectory<R: Rng>(&self, start: usize, steps: usize, rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(steps + 1);
        let mut state = start;
        out.push(state);
        for _ in 0..steps {
            state = self.sample_next(state, rng);
            out.push(state);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn two_state() -> DenseChain {
        DenseChain::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            DenseChain::from_rows(vec![]).unwrap_err(),
            ChainError::BadShape
        );
        assert_eq!(
            DenseChain::from_rows(vec![vec![1.0, 0.0]]).unwrap_err(),
            ChainError::BadShape
        );
        assert_eq!(
            DenseChain::from_rows(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap_err(),
            ChainError::NotStochastic { row: 0 }
        );
        assert_eq!(
            DenseChain::from_rows(vec![vec![1.5, -0.5], vec![0.5, 0.5]]).unwrap_err(),
            ChainError::NotStochastic { row: 0 }
        );
        assert!(DenseChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).is_ok());
    }

    #[test]
    fn step_distribution_preserves_mass() {
        let c = two_state();
        let mu = vec![0.25, 0.75];
        let nu = c.step_distribution(&mu);
        assert!((nu.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((nu[0] - (0.25 * 0.9 + 0.75 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_transition_probabilities() {
        let c = two_state();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let trials = 20_000;
        let mut to_one = 0usize;
        for _ in 0..trials {
            if c.sample_next(0, &mut rng) == 1 {
                to_one += 1;
            }
        }
        let freq = to_one as f64 / trials as f64;
        assert!((freq - 0.1).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn trajectory_has_expected_length_and_valid_states() {
        let c = two_state();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let traj = c.trajectory(1, 50, &mut rng);
        assert_eq!(traj.len(), 51);
        assert_eq!(traj[0], 1);
        assert!(traj.iter().all(|&s| s < 2));
    }

    #[test]
    fn deterministic_chain_cycles() {
        let c = DenseChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let traj = c.trajectory(0, 4, &mut rng);
        assert_eq!(traj, vec![0, 1, 0, 1, 0]);
    }
}
