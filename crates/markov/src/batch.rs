//! Batched Bernoulli draws and word-at-a-time two-state stepping.
//!
//! The dense edge-MEG steps `n(n−1)/2` independent copies of the two-state
//! chain every round, one `gen_bool` per pair. The shim's `gen_bool(p)` is
//! `(next_u64() >> 11) as f64 · 2⁻⁵³ < p`: one 53-bit uniform compared
//! against `p` in floating point. Because `x · 2⁻⁵³` is *exact* for every
//! integer `x < 2⁵³` (scaling by a power of two only shifts the exponent),
//! the accept test can be rewritten as an all-integer compare
//!
//! ```text
//! unit_f64(x) < p   ⟺   (x >> 11) < ⌈p · 2⁵³⌉
//! ```
//!
//! with a threshold precomputed once per probability ([`gen_bool_threshold`]).
//! The helpers here batch that compare over the 64 chain states packed into a
//! machine word, consuming **exactly one `next_u64` per state in ascending
//! bit order** — the same draw schedule as a scalar `gen_bool`/`step` loop,
//! so accept decisions (and therefore trajectories) are bit-identical.
//!
//! `⌈p · 2⁵³⌉` itself is exact: `p · 2⁵³` is an exact f64 for `p ∈ [0, 1]`
//! (power-of-two scaling again; subnormal `p` becomes normal), `ceil` is
//! exact, and the result is at most `2⁵³`, well inside `u64`.

use crate::TwoStateChain;
use rand::RngCore;

/// Integer accept threshold for `gen_bool(p)`: `⌈p · 2⁵³⌉`.
///
/// A 53-bit uniform draw `x = next_u64() >> 11` is accepted by the shim's
/// `gen_bool(p)` **iff** `x < gen_bool_threshold(p)`. Panics unless
/// `p ∈ [0, 1]`, matching `gen_bool`.
#[inline]
pub fn gen_bool_threshold(p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "gen_bool_threshold: p = {p} out of range"
    );
    (p * (1u64 << 53) as f64).ceil() as u64
}

/// Draws `nbits` Bernoulli variables against a precomputed integer
/// `threshold` and packs the outcomes into the low `nbits` of a word
/// (bit `i` ← draw `i`); bits `nbits..64` are zero.
///
/// Consumes exactly `nbits` calls to `next_u64`, in bit order — the same
/// schedule as `nbits` scalar `gen_bool` calls with the probability that
/// produced `threshold` (see [`gen_bool_threshold`]).
#[inline]
pub fn bernoulli_word<R: RngCore + ?Sized>(threshold: u64, nbits: u32, rng: &mut R) -> u64 {
    debug_assert!(nbits <= 64);
    let mut word = 0u64;
    for i in 0..nbits {
        let x = rng.next_u64() >> 11;
        word |= ((x < threshold) as u64) << i;
    }
    word
}

/// Word-at-a-time stepper for a [`TwoStateChain`]: precomputed integer
/// thresholds for the birth (`p`, from state 0) and death (`q`, from state 1)
/// draws. Built by [`TwoStateChain::word_stepper`].
///
/// The branch in the scalar step — `if state { !gen_bool(q) } else
/// { gen_bool(p) }` — collapses to `next = (x < threshold[state]) ^ state`:
/// from state 0 the draw against `p` *sets* the bit, from state 1 the draw
/// against `q` *clears* it (a death), which is exactly the XOR of the accept
/// bit with the current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WordStepper {
    t_birth: u64,
    t_death: u64,
}

impl WordStepper {
    /// Steps the `nbits` chain states packed in the low bits of `states`
    /// (bit `i` = state of chain `i`), returning the packed next states.
    /// Bits `nbits..64` of both input and output are zero.
    ///
    /// Consumes exactly one `next_u64` per chain in ascending bit order —
    /// the identical draw schedule, with bit-identical accept decisions, as
    /// `nbits` scalar [`TwoStateChain::step`] calls.
    #[inline]
    pub fn step_word<R: RngCore + ?Sized>(&self, states: u64, nbits: u32, rng: &mut R) -> u64 {
        debug_assert!(nbits <= 64);
        debug_assert!(nbits == 64 || states >> nbits == 0, "tail bits must be 0");
        let mut next = 0u64;
        for i in 0..nbits {
            let state = (states >> i) & 1;
            // Branchless select: threshold[0] = t_birth, threshold[1] = t_death.
            let thr = self.t_birth ^ ((self.t_birth ^ self.t_death) & state.wrapping_neg());
            let x = rng.next_u64() >> 11;
            next |= (((x < thr) as u64) ^ state) << i;
        }
        next
    }
}

impl TwoStateChain {
    /// Precomputes the integer-threshold [`WordStepper`] for this chain.
    pub fn word_stepper(&self) -> WordStepper {
        WordStepper {
            t_birth: gen_bool_threshold(self.birth_rate()),
            t_death: gen_bool_threshold(self.death_rate()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Probabilities that stress the threshold conversion: extremes, exact
    /// dyadics, values needing rounding, and a subnormal.
    const PROBS: &[f64] = &[
        0.0,
        1.0,
        0.5,
        0.25,
        1.0 / 3.0,
        0.1,
        0.9,
        1e-9,
        1.0 - 1e-12,
        f64::MIN_POSITIVE,
        2.2e-308, // subnormal after scaling concerns: still exact ·2⁵³
    ];

    #[test]
    fn threshold_compare_equals_gen_bool() {
        // The integer compare must replicate gen_bool draw-for-draw: run the
        // same RNG stream through both forms and demand identical accepts.
        for &p in PROBS {
            let t = gen_bool_threshold(p);
            let mut a = StdRng::seed_from_u64(0xB00B5);
            let mut b = a.clone();
            for _ in 0..2_000 {
                let via_float = a.gen_bool(p);
                let via_int = (b.next_u64() >> 11) < t;
                assert_eq!(via_float, via_int, "p = {p}");
            }
        }
    }

    #[test]
    fn threshold_extremes() {
        assert_eq!(gen_bool_threshold(0.0), 0);
        assert_eq!(gen_bool_threshold(1.0), 1u64 << 53);
        // 0.5 · 2⁵³ is exact.
        assert_eq!(gen_bool_threshold(0.5), 1u64 << 52);
    }

    #[test]
    #[should_panic]
    fn threshold_rejects_out_of_range() {
        gen_bool_threshold(1.5);
    }

    #[test]
    fn bernoulli_word_matches_scalar_gen_bool() {
        for &p in PROBS {
            let t = gen_bool_threshold(p);
            for nbits in [64u32, 63, 33, 1, 0] {
                let mut a = StdRng::seed_from_u64(7 + nbits as u64);
                let mut b = a.clone();
                let word = bernoulli_word(t, nbits, &mut a);
                for i in 0..nbits {
                    assert_eq!((word >> i) & 1 == 1, b.gen_bool(p), "p = {p}, bit {i}");
                }
                if nbits < 64 {
                    assert_eq!(word >> nbits, 0, "tail bits must stay zero");
                }
                // Both consumed the same number of draws.
                assert_eq!(a.next_u64(), b.next_u64(), "RNG cursor drifted");
            }
        }
    }

    #[test]
    fn step_word_matches_scalar_step() {
        // Word stepping must agree with 64 scalar chain.step calls on the
        // same stream, for every (p, q) corner including frozen and flipping
        // chains, across several word patterns and tail widths.
        let rates = [
            (0.2, 0.3),
            (0.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (1.0, 0.0),
            (0.013, 0.4),
        ];
        for &(p, q) in &rates {
            let chain = TwoStateChain::new(p, q);
            let stepper = chain.word_stepper();
            for (pat_i, &pattern) in [0u64, u64::MAX, 0xDEAD_BEEF_F00D_5EED].iter().enumerate() {
                for nbits in [64u32, 64, 17] {
                    let states = if nbits == 64 {
                        pattern
                    } else {
                        pattern & ((1u64 << nbits) - 1)
                    };
                    let seed = 91 + pat_i as u64;
                    let mut a = StdRng::seed_from_u64(seed);
                    let mut b = a.clone();
                    let mut next = stepper.step_word(states, nbits, &mut a);
                    for i in 0..nbits {
                        let expect = chain.step((states >> i) & 1 == 1, &mut b);
                        assert_eq!(
                            (next >> i) & 1 == 1,
                            expect,
                            "p={p} q={q} bit {i} of {nbits}"
                        );
                    }
                    if nbits < 64 {
                        assert_eq!(next >> nbits, 0, "tail bits must stay zero");
                    }
                    // Probe the cursors on clones so the streams stay aligned
                    // for the second round below.
                    assert_eq!(
                        a.clone().next_u64(),
                        b.next_u64(),
                        "RNG cursor drifted after round 1"
                    );
                    // A second step from the evolved word keeps agreeing with
                    // a scalar two-round replay from the original seed.
                    next = stepper.step_word(next, nbits, &mut a);
                    let mut c = StdRng::seed_from_u64(seed);
                    let mut s = states;
                    for _round in 0..2 {
                        let mut out = 0u64;
                        for i in 0..nbits {
                            out |= (chain.step((s >> i) & 1 == 1, &mut c) as u64) << i;
                        }
                        s = out;
                    }
                    assert_eq!(next, s, "two-round word trajectory diverged");
                    assert_eq!(a.next_u64(), c.next_u64(), "RNG cursor drifted");
                }
            }
        }
    }

    #[test]
    fn frozen_and_deterministic_chains() {
        let mut rng = StdRng::seed_from_u64(3);
        // p = q = 0: nothing ever changes.
        let frozen = TwoStateChain::new(0.0, 0.0).word_stepper();
        assert_eq!(frozen.step_word(0b1010, 4, &mut rng), 0b1010);
        // p = q = 1: every bit flips... no — from 0 always born, from 1 always
        // dies, i.e. the word inverts within the low nbits.
        let flip = TwoStateChain::new(1.0, 1.0).word_stepper();
        assert_eq!(flip.step_word(0b1010, 4, &mut rng), 0b0101);
        // p = 1, q = 0: absorbs at all-ones.
        let born = TwoStateChain::new(1.0, 0.0).word_stepper();
        assert_eq!(born.step_word(0b0010, 4, &mut rng), 0b1111);
    }
}
