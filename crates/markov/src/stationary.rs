//! Stationary distributions of finite chains.
//!
//! "Stationary Markovian evolving graph" means the initial graph `G_0` is
//! drawn from the stationary law of the underlying chain (Definition 2.1), so
//! computing and sampling stationary laws is the heart of "perfect
//! simulation" in this workspace.

use crate::dense::{ChainError, DenseChain};

/// Computes the stationary distribution of `chain` by power iteration from the
/// uniform distribution.
///
/// Converges for irreducible aperiodic chains; returns
/// [`ChainError::NoConvergence`] when the total-variation change between
/// successive iterates fails to drop below `tol` within `max_iters`.
pub fn power_iteration(
    chain: &DenseChain,
    max_iters: usize,
    tol: f64,
) -> Result<Vec<f64>, ChainError> {
    let n = chain.num_states();
    let mut mu = vec![1.0 / n as f64; n];
    for _ in 0..max_iters {
        let next = chain.step_distribution(&mu);
        let delta = total_variation(&mu, &next);
        mu = next;
        if delta < tol {
            return Ok(mu);
        }
    }
    Err(ChainError::NoConvergence)
}

/// Total-variation distance between two distributions on the same state space:
/// `½ Σ_i |p_i − q_i|`.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions live on different spaces");
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Checks that `pi` is (approximately) invariant for `chain`:
/// `‖πP − π‖_TV ≤ tol`.
pub fn is_stationary(chain: &DenseChain, pi: &[f64], tol: f64) -> bool {
    total_variation(&chain.step_distribution(pi), pi) <= tol
}

/// Normalises a non-negative weight vector into a probability distribution.
///
/// Returns `None` if the weights are all zero, any weight is negative, or the
/// vector is empty.
pub fn normalize(weights: &[f64]) -> Option<Vec<f64>> {
    if weights.is_empty() || weights.iter().any(|&w| w < 0.0) {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    Some(weights.iter().map(|&w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_iteration_two_state_closed_form() {
        // birth 0.3, death 0.2 → stationary (q, p)/(p+q) = (0.4, 0.6)
        let c = DenseChain::from_rows(vec![vec![0.7, 0.3], vec![0.2, 0.8]]).unwrap();
        let pi = power_iteration(&c, 10_000, 1e-13).unwrap();
        assert!((pi[0] - 0.4).abs() < 1e-9);
        assert!((pi[1] - 0.6).abs() < 1e-9);
        assert!(is_stationary(&c, &pi, 1e-9));
    }

    #[test]
    fn power_iteration_doubly_stochastic_is_uniform() {
        let c = DenseChain::from_rows(vec![
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap();
        let pi = power_iteration(&c, 10_000, 1e-13).unwrap();
        for &x in &pi {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn periodic_chain_does_not_converge() {
        let c = DenseChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        // The uniform start is actually stationary for this chain, so perturb by
        // checking a chain with 3 states where uniform is not invariant under
        // the period-2 dynamics... Simplest: verify the period-2 two-state
        // chain from uniform converges immediately (uniform IS stationary):
        let pi = power_iteration(&c, 10, 1e-12).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);
        // and that is_stationary rejects a non-invariant vector.
        assert!(!is_stationary(&c, &[0.9, 0.1], 1e-6));
    }

    #[test]
    fn tv_distance_properties() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_weights() {
        assert_eq!(normalize(&[2.0, 2.0]), Some(vec![0.5, 0.5]));
        assert_eq!(normalize(&[0.0, 0.0]), None);
        assert_eq!(normalize(&[]), None);
        assert_eq!(normalize(&[-1.0, 2.0]), None);
        let pi = normalize(&[1.0, 3.0]).unwrap();
        assert!((pi[1] - 0.75).abs() < 1e-12);
    }
}
