//! Random walks on a support graph.
//!
//! In the geometric-MEG model every node performs an independent random walk
//! on the *move graph* `M_{n,r,ε}`: from position `x` it jumps to a position
//! chosen uniformly from `Γ(x) = {y : d(x,y) ≤ r}` (which contains `x` itself,
//! so the walk is lazy). The stationary law is `π(x) ∝ |Γ(x)|` — proportional
//! to the closed neighborhood size.
//!
//! This module implements the same walk over an arbitrary support
//! [`Graph`], in both the lazy (self-move allowed) and
//! non-lazy variants, together with exact stationary laws and stationary
//! sampling. `meg-mobility` specialises it to the grid geometry without going
//! through an explicit graph (the grid is too large to materialise for big
//! `n`), and the small-instance tests here are what validate that
//! specialisation.

use meg_graph::{Graph, Node};
use rand::Rng;

/// A random walk over the vertices of a support graph.
#[derive(Clone, Debug)]
pub struct SupportWalk<'a, G: Graph> {
    graph: &'a G,
    lazy: bool,
}

impl<'a, G: Graph> SupportWalk<'a, G> {
    /// A lazy walk: from `x` the next position is uniform over `{x} ∪ N(x)`
    /// (the paper's move rule, since `Γ(x)` contains `x`).
    pub fn lazy(graph: &'a G) -> Self {
        SupportWalk { graph, lazy: true }
    }

    /// A non-lazy walk: the next position is uniform over `N(x)`; staying put
    /// is impossible unless `x` is isolated.
    pub fn non_lazy(graph: &'a G) -> Self {
        SupportWalk { graph, lazy: false }
    }

    /// Whether the walk may stay in place.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// The size of the candidate set from `x` (`|Γ(x)|` in the paper's
    /// notation for the lazy walk).
    pub fn candidate_count(&self, x: Node) -> usize {
        self.graph.degree(x) + usize::from(self.lazy)
    }

    /// Samples the next position from `x`.
    pub fn step<R: Rng>(&self, x: Node, rng: &mut R) -> Node {
        let total = self.candidate_count(x);
        if total == 0 {
            return x; // isolated node in a non-lazy walk has nowhere to go
        }
        let idx = rng.gen_range(0..total);
        if self.lazy && idx == total - 1 {
            return x;
        }
        // Pick the idx-th neighbor.
        let mut i = 0usize;
        let mut chosen = x;
        self.graph.for_each_neighbor(x, &mut |v| {
            if i == idx {
                chosen = v;
            }
            i += 1;
        });
        chosen
    }

    /// Exact stationary distribution: `π(x) ∝ candidate_count(x)`.
    ///
    /// (For a connected non-bipartite support graph this is the unique
    /// stationary law; for the lazy walk aperiodicity is automatic.)
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let n = self.graph.num_nodes();
        let weights: Vec<f64> = (0..n as Node)
            .map(|x| self.candidate_count(x) as f64)
            .collect();
        crate::stationary::normalize(&weights).unwrap_or_else(|| vec![1.0 / n.max(1) as f64; n])
    }

    /// Samples a position from the stationary distribution.
    pub fn sample_stationary<R: Rng>(&self, rng: &mut R) -> Node {
        let pi = self.stationary_distribution();
        sample_from_distribution(&pi, rng)
    }

    /// Simulates `steps` transitions from `start`, returning the final position.
    pub fn walk<R: Rng>(&self, start: Node, steps: usize, rng: &mut R) -> Node {
        let mut pos = start;
        for _ in 0..steps {
            pos = self.step(pos, rng);
        }
        pos
    }

    /// Builds the dense transition matrix of the walk (small graphs only), for
    /// cross-validation against [`crate::DenseChain`].
    pub fn to_dense_chain(&self) -> crate::DenseChain {
        let n = self.graph.num_nodes();
        let mut rows = vec![vec![0.0; n]; n];
        for x in 0..n as Node {
            let total = self.candidate_count(x);
            if total == 0 {
                rows[x as usize][x as usize] = 1.0;
                continue;
            }
            let p = 1.0 / total as f64;
            if self.lazy {
                rows[x as usize][x as usize] += p;
            }
            self.graph.for_each_neighbor(x, &mut |v| {
                rows[x as usize][v as usize] += p;
            });
        }
        crate::DenseChain::from_rows(rows).expect("walk matrix is stochastic")
    }
}

/// Samples an index from an explicit probability distribution.
pub fn sample_from_distribution<R: Rng>(pi: &[f64], rng: &mut R) -> Node {
    let mut u: f64 = rng.gen();
    for (i, &p) in pi.iter().enumerate() {
        if u < p {
            return i as Node;
        }
        u -= p;
    }
    (pi.len() - 1) as Node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary;
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stationary_of_lazy_walk_is_proportional_to_closed_degree() {
        let g = generators::star(3); // center degree 3, leaves degree 1
        let w = SupportWalk::lazy(&g);
        let pi = w.stationary_distribution();
        // weights: center 4, each leaf 2 → total 10
        assert!((pi[0] - 0.4).abs() < 1e-12);
        for &pi_leaf in &pi[1..4] {
            assert!((pi_leaf - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_matches_power_iteration() {
        // The lazy walk is aperiodic on any support; the non-lazy walk needs a
        // non-bipartite support (odd cycle) for power iteration to converge.
        let grid = generators::grid2d(3, 3);
        let odd_cycle = generators::cycle(5);
        let lazy = SupportWalk::lazy(&grid);
        let non_lazy = SupportWalk::non_lazy(&odd_cycle);
        for walk in [&lazy, &non_lazy] {
            let chain = walk.to_dense_chain();
            let pi_power = stationary::power_iteration(&chain, 100_000, 1e-13).unwrap();
            let pi_exact = walk.stationary_distribution();
            assert!(
                stationary::total_variation(&pi_power, &pi_exact) < 1e-6,
                "lazy={}",
                walk.is_lazy()
            );
        }
    }

    #[test]
    fn empirical_occupancy_approaches_stationary() {
        let g = generators::cycle(5);
        let w = SupportWalk::lazy(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut counts = [0usize; 5];
        let mut pos: Node = 0;
        let steps = 60_000;
        for _ in 0..steps {
            pos = w.step(pos, &mut rng);
            counts[pos as usize] += 1;
        }
        let emp: Vec<f64> = counts.iter().map(|&c| c as f64 / steps as f64).collect();
        let pi = w.stationary_distribution();
        assert!(stationary::total_variation(&emp, &pi) < 0.02);
    }

    #[test]
    fn non_lazy_step_never_stays_unless_isolated() {
        let g = generators::cycle(6);
        let w = SupportWalk::non_lazy(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            assert_ne!(w.step(2, &mut rng), 2);
        }
        let isolated = meg_graph::AdjacencyList::new(3);
        let wi = SupportWalk::non_lazy(&isolated);
        assert_eq!(wi.step(1, &mut rng), 1);
    }

    #[test]
    fn lazy_step_stays_with_positive_probability() {
        let g = generators::path(2);
        let w = SupportWalk::lazy(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut stayed = 0;
        for _ in 0..1000 {
            if w.step(0, &mut rng) == 0 {
                stayed += 1;
            }
        }
        // Probability 1/2 of staying.
        assert!(stayed > 350 && stayed < 650, "stayed {stayed}");
    }

    #[test]
    fn stationary_sampling_is_unbiased() {
        let g = generators::star(4);
        let w = SupportWalk::lazy(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trials = 30_000;
        let mut center = 0usize;
        for _ in 0..trials {
            if w.sample_stationary(&mut rng) == 0 {
                center += 1;
            }
        }
        let freq = center as f64 / trials as f64;
        let expect = 5.0 / 13.0; // center weight 5, leaves 2 each → total 13
        assert!((freq - expect).abs() < 0.02, "freq {freq} vs {expect}");
    }
}
