//! Mixing diagnostics.
//!
//! Stationarity tells us how to *start* an evolving graph; mixing tells us how
//! quickly a chain started elsewhere forgets its start. The "exponential gap"
//! experiments (stationary vs worst-case start of an edge-MEG) are exactly a
//! statement about slow mixing of the per-edge chain relative to the flooding
//! horizon, so these diagnostics are reported alongside those experiments.

use crate::dense::DenseChain;
use crate::stationary::{power_iteration, total_variation};

/// Result of a mixing-time estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct MixingEstimate {
    /// Smallest `t` with worst-case TV distance ≤ `eps`, if found within the
    /// horizon.
    pub mixing_time: Option<usize>,
    /// Worst-case TV distance to stationarity at the horizon (or at the mixing
    /// time if it was found).
    pub final_distance: f64,
}

/// Estimates the `eps`-mixing time of `chain` by evolving the point-mass
/// distributions of every starting state up to `horizon` steps.
///
/// Exact (no sampling), cost `O(horizon · n²)`; intended for the small chains
/// used in tests and for the two-state edge chain.
pub fn mixing_time(chain: &DenseChain, eps: f64, horizon: usize) -> MixingEstimate {
    let n = chain.num_states();
    let pi = match power_iteration(chain, 100_000, 1e-13) {
        Ok(pi) => pi,
        Err(_) => {
            return MixingEstimate {
                mixing_time: None,
                final_distance: f64::NAN,
            }
        }
    };
    let mut dists: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            let mut d = vec![0.0; n];
            d[s] = 1.0;
            d
        })
        .collect();
    let mut worst = dists
        .iter()
        .map(|d| total_variation(d, &pi))
        .fold(0.0, f64::max);
    if worst <= eps {
        return MixingEstimate {
            mixing_time: Some(0),
            final_distance: worst,
        };
    }
    for t in 1..=horizon {
        for d in dists.iter_mut() {
            *d = chain.step_distribution(d);
        }
        worst = dists
            .iter()
            .map(|d| total_variation(d, &pi))
            .fold(0.0, f64::max);
        if worst <= eps {
            return MixingEstimate {
                mixing_time: Some(t),
                final_distance: worst,
            };
        }
    }
    MixingEstimate {
        mixing_time: None,
        final_distance: worst,
    }
}

/// Closed-form `eps`-mixing time of the two-state chain with birth `p`, death
/// `q`.
///
/// From start state `x` the TV distance to stationarity after `t` steps is
/// exactly `π_{1−x} · |λ|^t` with `λ = 1 − p − q`, so the worst-case distance
/// is `max(π_0, π_1) · |λ|^t` and the mixing time is the smallest `t` making
/// that ≤ `eps`.
///
/// Returns `None` when the chain does not mix (`p + q ∈ {0, 2}` gives
/// `|λ| = 1`).
pub fn two_state_mixing_time(p: f64, q: f64, eps: f64) -> Option<usize> {
    let lambda = (1.0 - p - q).abs();
    if lambda >= 1.0 {
        return None;
    }
    let s = p + q;
    let pi_max = (p / s).max(q / s);
    if pi_max <= eps {
        return Some(0);
    }
    if lambda == 0.0 {
        return Some(1);
    }
    let t = ((eps / pi_max).ln() / lambda.ln()).ceil();
    Some(t.max(0.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoStateChain;

    fn dense_two_state(p: f64, q: f64) -> DenseChain {
        DenseChain::from_rows(vec![vec![1.0 - p, p], vec![q, 1.0 - q]]).unwrap()
    }

    #[test]
    fn fast_chain_mixes_quickly() {
        let c = dense_two_state(0.5, 0.5);
        let m = mixing_time(&c, 1e-6, 100);
        assert_eq!(m.mixing_time, Some(1));
    }

    #[test]
    fn slow_chain_mixes_slowly() {
        let c = dense_two_state(0.01, 0.01);
        let m = mixing_time(&c, 0.01, 10_000);
        let t = m.mixing_time.expect("should mix within horizon");
        assert!(
            t > 100,
            "two-state chain with p=q=0.01 needs many steps, got {t}"
        );
        // closed form agrees within one step of rounding
        let closed = two_state_mixing_time(0.01, 0.01, 0.01).unwrap();
        assert!(
            (t as i64 - closed as i64).abs() <= 1,
            "numeric {t} vs closed {closed}"
        );
    }

    #[test]
    fn non_mixing_chain_reports_failure() {
        let c = DenseChain::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let m = mixing_time(&c, 0.01, 50);
        assert_eq!(m.mixing_time, None);
        assert!(m.final_distance > 0.4);
        assert_eq!(two_state_mixing_time(1.0, 1.0, 0.01), None);
        assert_eq!(two_state_mixing_time(0.0, 0.0, 0.01), None);
    }

    #[test]
    fn closed_form_is_monotone_in_eps() {
        let loose = two_state_mixing_time(0.05, 0.02, 0.1).unwrap();
        let tight = two_state_mixing_time(0.05, 0.02, 0.001).unwrap();
        assert!(tight >= loose);
    }

    #[test]
    fn chain_second_eigenvalue_governs_decay() {
        let chain = TwoStateChain::new(0.3, 0.4);
        let lambda = chain.second_eigenvalue();
        // After t steps the deviation from stationarity shrinks by λ^t; verify
        // via the closed-form multi-step transition probability.
        let phat = chain.stationary_edge_probability();
        let dev0 = (chain.prob_present_after(true, 0) - phat).abs();
        let dev3 = (chain.prob_present_after(true, 3) - phat).abs();
        assert!((dev3 - dev0 * lambda.abs().powi(3)).abs() < 1e-12);
    }
}
