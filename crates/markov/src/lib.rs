//! # meg-markov
//!
//! Finite Markov-chain substrate for the `meg` workspace.
//!
//! Markovian evolving graphs are driven by Markov chains in two places:
//!
//! * **edge-MEG** — every potential edge follows the two-state birth/death
//!   chain of Section 4 ([`TwoStateChain`]);
//! * **geometric-MEG** — every node performs a random walk on the *move
//!   graph* `M_{n,r,ε}` of Section 3 ([`walk::SupportWalk`]), whose stationary
//!   law `π(x) ∝ |Γ(x)|` is what makes "stationary start" meaningful.
//!
//! The crate also provides a dense general-purpose chain ([`DenseChain`]) with
//! stationary-distribution computation and mixing diagnostics, used for
//! verifying the special-purpose implementations against brute force.
//!
//! ## Example
//!
//! ```
//! use meg_markov::TwoStateChain;
//!
//! // Birth rate p = 0.2, death rate q = 0.3 → stationary edge probability
//! // p̂ = p/(p+q) = 0.4.
//! let chain = TwoStateChain::new(0.2, 0.3);
//! let (pi_absent, pi_present) = chain.stationary();
//! assert!((pi_present - 0.4).abs() < 1e-12);
//! assert!((pi_absent + pi_present - 1.0).abs() < 1e-12);
//!
//! // Multi-step transition probabilities converge to the stationary law.
//! let p100 = chain.prob_present_after(false, 100);
//! assert!((p100 - pi_present).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dense;
pub mod mixing;
pub mod stationary;
pub mod two_state;
pub mod walk;

pub use batch::{bernoulli_word, gen_bool_threshold, WordStepper};
pub use dense::DenseChain;
pub use two_state::TwoStateChain;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_matches_dense_power_iteration() {
        // The closed-form stationary law of the 2-state chain must agree with
        // generic power iteration on its transition matrix.
        let chain = TwoStateChain::new(0.3, 0.2);
        let dense = DenseChain::from_rows(vec![vec![0.7, 0.3], vec![0.2, 0.8]]).unwrap();
        let pi = stationary::power_iteration(&dense, 10_000, 1e-12).unwrap();
        let (pi0, pi1) = chain.stationary();
        assert!((pi[0] - pi0).abs() < 1e-9);
        assert!((pi[1] - pi1).abs() < 1e-9);
    }
}
