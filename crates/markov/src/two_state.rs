//! The two-state birth/death chain driving every edge of an edge-MEG
//! (Section 4 of the paper).
//!
//! State `0` = "edge absent", state `1` = "edge present". The transition
//! matrix is
//!
//! ```text
//!          to 0      to 1
//! from 0   1 − p       p        (birth rate p)
//! from 1     q       1 − q      (death rate q)
//! ```
//!
//! For `0 < p, q < 1` the chain is irreducible and aperiodic with the unique
//! stationary law `π = (q/(p+q), p/(p+q))`; the stationary edge probability
//! `p̂ = p/(p+q)` is the quantity all of the paper's edge-MEG bounds are
//! phrased in.

use rand::Rng;

/// A two-state Markov chain with birth rate `p` and death rate `q`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoStateChain {
    p: f64,
    q: f64,
}

impl TwoStateChain {
    /// Creates the chain. Panics unless `p, q ∈ [0, 1]`.
    pub fn new(p: f64, q: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "birth rate p={p} outside [0,1]");
        assert!((0.0..=1.0).contains(&q), "death rate q={q} outside [0,1]");
        TwoStateChain { p, q }
    }

    /// The time-independent special case `q = 1 − p`, i.e. the state at time
    /// `t+1` is `1` with probability `p` regardless of the state at time `t`
    /// (the dynamic random graphs of \[10\] / \[5\]).
    pub fn time_independent(p: f64) -> Self {
        Self::new(p, 1.0 - p)
    }

    /// Birth rate `p`.
    pub fn birth_rate(&self) -> f64 {
        self.p
    }

    /// Death rate `q`.
    pub fn death_rate(&self) -> f64 {
        self.q
    }

    /// Stationary distribution `(π_0, π_1) = (q, p)/(p + q)`.
    ///
    /// When `p = q = 0` every distribution is stationary; this returns the
    /// conventional `(0.5, 0.5)` in that degenerate case.
    pub fn stationary(&self) -> (f64, f64) {
        let s = self.p + self.q;
        if s == 0.0 {
            (0.5, 0.5)
        } else {
            (self.q / s, self.p / s)
        }
    }

    /// Stationary edge probability `p̂ = p/(p+q)`.
    pub fn stationary_edge_probability(&self) -> f64 {
        self.stationary().1
    }

    /// Expected return time to state 1 (`1/π_1`), i.e. the mean time between
    /// consecutive appearances of the edge in the stationary regime. Returns
    /// `f64::INFINITY` when `p = 0`.
    pub fn mean_recurrence_time_present(&self) -> f64 {
        let p1 = self.stationary_edge_probability();
        if p1 == 0.0 {
            f64::INFINITY
        } else {
            1.0 / p1
        }
    }

    /// One-step transition probability from `state` to state `1`.
    pub fn prob_present_next(&self, state: bool) -> f64 {
        if state {
            1.0 - self.q
        } else {
            self.p
        }
    }

    /// `t`-step transition probability of being in state `1` starting from
    /// `state`, by the standard closed form
    /// `P^t(x, 1) = p̂ + (1{x=1} − p̂)(1 − p − q)^t`.
    pub fn prob_present_after(&self, state: bool, t: u32) -> f64 {
        let phat = self.stationary_edge_probability();
        let lambda = 1.0 - self.p - self.q;
        let x1 = if state { 1.0 } else { 0.0 };
        phat + (x1 - phat) * lambda.powi(t as i32)
    }

    /// Samples the next state given the current one.
    #[inline]
    pub fn step<R: Rng>(&self, state: bool, rng: &mut R) -> bool {
        if state {
            !rng.gen_bool(self.q)
        } else {
            rng.gen_bool(self.p)
        }
    }

    /// Samples a state from the stationary distribution.
    #[inline]
    pub fn sample_stationary<R: Rng>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.stationary_edge_probability())
    }

    /// Relaxation parameter `λ = 1 − p − q`; `|λ|` governs how fast the chain
    /// forgets its initial state.
    pub fn second_eigenvalue(&self) -> f64 {
        1.0 - self.p - self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stationary_closed_form() {
        let c = TwoStateChain::new(0.1, 0.3);
        let (pi0, pi1) = c.stationary();
        assert!((pi0 - 0.75).abs() < 1e-12);
        assert!((pi1 - 0.25).abs() < 1e-12);
        assert!((c.stationary_edge_probability() - 0.25).abs() < 1e-12);
        assert!((c.mean_recurrence_time_present() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_chains() {
        let frozen = TwoStateChain::new(0.0, 0.0);
        assert_eq!(frozen.stationary(), (0.5, 0.5));
        let never = TwoStateChain::new(0.0, 0.5);
        assert_eq!(never.stationary_edge_probability(), 0.0);
        assert_eq!(never.mean_recurrence_time_present(), f64::INFINITY);
        let always = TwoStateChain::new(0.5, 0.0);
        assert_eq!(always.stationary_edge_probability(), 1.0);
    }

    #[test]
    fn time_independent_case() {
        let c = TwoStateChain::time_independent(0.3);
        assert!((c.stationary_edge_probability() - 0.3).abs() < 1e-12);
        assert_eq!(c.second_eigenvalue(), 0.0);
        // Next state does not depend on the current one.
        assert!((c.prob_present_next(true) - 0.3).abs() < 1e-12);
        assert!((c.prob_present_next(false) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn multi_step_probability_converges_to_stationary() {
        let c = TwoStateChain::new(0.2, 0.1);
        let phat = c.stationary_edge_probability();
        assert!((c.prob_present_after(true, 0) - 1.0).abs() < 1e-12);
        assert!((c.prob_present_after(false, 0) - 0.0).abs() < 1e-12);
        assert!((c.prob_present_after(true, 1) - 0.9).abs() < 1e-12);
        assert!((c.prob_present_after(false, 1) - 0.2).abs() < 1e-12);
        assert!((c.prob_present_after(true, 500) - phat).abs() < 1e-9);
        assert!((c.prob_present_after(false, 500) - phat).abs() < 1e-9);
    }

    #[test]
    fn stationarity_is_preserved_by_simulation() {
        // Start from the stationary law, run many independent chains one step,
        // and check the fraction in state 1 is still ≈ p̂.
        let c = TwoStateChain::new(0.05, 0.15);
        let phat = c.stationary_edge_probability();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let trials = 40_000;
        let mut present = 0usize;
        for _ in 0..trials {
            let s0 = c.sample_stationary(&mut rng);
            let s1 = c.step(s0, &mut rng);
            if s1 {
                present += 1;
            }
        }
        let freq = present as f64 / trials as f64;
        assert!((freq - phat).abs() < 0.01, "freq {freq} vs p̂ {phat}");
    }

    #[test]
    #[should_panic]
    fn invalid_rate_panics() {
        TwoStateChain::new(1.5, 0.1);
    }
}
