//! Property-based tests for the Markov-chain substrate.

use meg_graph::generators;
use meg_markov::dense::DenseChain;
use meg_markov::mixing::two_state_mixing_time;
use meg_markov::stationary::{is_stationary, normalize, power_iteration, total_variation};
use meg_markov::walk::SupportWalk;
use meg_markov::TwoStateChain;
use proptest::prelude::*;

/// Strategy producing a random row-stochastic matrix of size 2..=6 with
/// strictly positive entries (so the chain is irreducible and aperiodic).
fn stochastic_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, n), n).prop_map(|rows| {
            rows.into_iter()
                .map(|row| {
                    let sum: f64 = row.iter().sum();
                    row.into_iter().map(|x| x / sum).collect()
                })
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn power_iteration_finds_an_invariant_distribution(rows in stochastic_matrix()) {
        let chain = DenseChain::from_rows(rows).unwrap();
        let pi = power_iteration(&chain, 200_000, 1e-12).unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(pi.iter().all(|&x| x >= -1e-12));
        prop_assert!(is_stationary(&chain, &pi, 1e-8));
    }

    #[test]
    fn distribution_evolution_preserves_mass(rows in stochastic_matrix(), start in 0usize..6) {
        let chain = DenseChain::from_rows(rows).unwrap();
        let n = chain.num_states();
        let mut mu = vec![0.0; n];
        mu[start % n] = 1.0;
        for _ in 0..10 {
            mu = chain.step_distribution(&mu);
            prop_assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(mu.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn two_state_stationary_is_invariant(p in 0.0f64..=1.0, q in 0.0f64..=1.0) {
        let chain = TwoStateChain::new(p, q);
        let (pi0, pi1) = chain.stationary();
        prop_assert!((pi0 + pi1 - 1.0).abs() < 1e-12);
        // invariance: pi1 = pi0 * p + pi1 * (1 - q) whenever p + q > 0
        if p + q > 0.0 {
            prop_assert!((pi1 - (pi0 * p + pi1 * (1.0 - q))).abs() < 1e-12);
        }
        // multi-step probabilities converge toward pi1 monotonically in TV
        let d1 = (chain.prob_present_after(true, 1) - pi1).abs();
        let d5 = (chain.prob_present_after(true, 5) - pi1).abs();
        prop_assert!(d5 <= d1 + 1e-12);
    }

    #[test]
    fn two_state_mixing_time_decreases_with_faster_chains(scale in 1.0f64..20.0) {
        let slow = two_state_mixing_time(0.01, 0.01, 0.01);
        let fast = two_state_mixing_time((0.01 * scale).min(1.0), (0.01 * scale).min(1.0), 0.01);
        if let (Some(slow), Some(fast)) = (slow, fast) {
            prop_assert!(fast <= slow);
        }
    }

    #[test]
    fn total_variation_is_a_metric_on_simplex(a in proptest::collection::vec(0.01f64..1.0, 4), b in proptest::collection::vec(0.01f64..1.0, 4)) {
        let p = normalize(&a).unwrap();
        let q = normalize(&b).unwrap();
        let d = total_variation(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        prop_assert!((total_variation(&p, &p)).abs() < 1e-12);
        prop_assert!((total_variation(&p, &q) - total_variation(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn support_walk_stationary_law_is_invariant_under_the_dense_chain(nodes in 3usize..9, lazy in proptest::bool::ANY) {
        // Use a cycle (connected, regular) so both lazy and non-lazy walks are
        // well-defined; the exact stationary law must be invariant for the
        // walk's transition matrix even when power iteration would not
        // converge (bipartite non-lazy case).
        let g = generators::cycle(nodes);
        let walk = if lazy { SupportWalk::lazy(&g) } else { SupportWalk::non_lazy(&g) };
        let chain = walk.to_dense_chain();
        let pi = walk.stationary_distribution();
        prop_assert!(is_stationary(&chain, &pi, 1e-9));
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn support_walk_steps_stay_on_neighbors(nodes in 3usize..12, steps in 1usize..30, seed in 0u64..100) {
        use meg_graph::Graph;
        use rand::SeedableRng;
        let g = generators::cycle(nodes);
        let walk = SupportWalk::lazy(&g);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut pos = 0u32;
        for _ in 0..steps {
            let next = walk.step(pos, &mut rng);
            prop_assert!(next == pos || g.has_edge(pos, next));
            pos = next;
        }
        prop_assert!((pos as usize) < nodes);
    }
}
