//! Property-based tests for the mobility models: nodes stay in their region,
//! never exceed their speed budget, and keep roughly uniform occupancy.

use meg_mobility::grid_walk::GridWalkParams;
use meg_mobility::space::{reflect_coord, torus_delta, wrap, Region};
use meg_mobility::stationary::{cell_occupancy, tv_from_uniform};
use meg_mobility::traits::max_displacement;
use meg_mobility::{Billiard, GridWalk, Mobility, RandomWaypoint, TorusWalkers};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wrap_and_reflect_stay_in_range(x in -50.0f64..100.0, side in 1.0f64..50.0) {
        let w = wrap(x, side);
        prop_assert!((0.0..side).contains(&w) || (w - 0.0).abs() < 1e-12);
        if x >= -side && x <= 2.0 * side {
            let r = reflect_coord(x, side);
            prop_assert!((0.0..=side).contains(&r));
        }
    }

    #[test]
    fn torus_distance_is_at_most_half_diagonal(ax in 0.0f64..10.0, ay in 0.0f64..10.0, bx in 0.0f64..10.0, by in 0.0f64..10.0) {
        let t = Region::Torus { side: 10.0 };
        let d = t.distance((ax, ay), (bx, by));
        let max = (2.0f64 * 25.0).sqrt(); // half-side in each coordinate
        prop_assert!(d <= max + 1e-9);
        prop_assert!(d >= 0.0);
        // torus distance never exceeds the square distance
        let sq = Region::Square { side: 10.0 };
        prop_assert!(d <= sq.distance((ax, ay), (bx, by)) + 1e-9);
        // delta is antisymmetric
        prop_assert!((torus_delta(ax, bx, 10.0) + torus_delta(bx, ax, 10.0)).abs() < 1e-9);
    }

    #[test]
    fn grid_walk_respects_region_and_speed(
        n in 5usize..60,
        side in 5.0f64..25.0,
        move_radius in 0.5f64..4.0,
        seed in 0u64..100,
        steps in 1usize..8,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut walk = GridWalk::new(
            GridWalkParams { n, side, move_radius, resolution: 1.0f64.min(side / 2.0) },
            &mut rng,
        );
        for _ in 0..steps {
            let before = walk.positions().to_vec();
            walk.advance(&mut rng);
            prop_assert!(max_displacement(&before, &walk) <= move_radius + 1e-9);
            for &p in walk.positions() {
                prop_assert!(walk.region().contains(p));
            }
        }
    }

    #[test]
    fn torus_walkers_respect_region_and_speed(
        n in 5usize..60,
        side in 5.0f64..25.0,
        move_radius in 0.5f64..4.0,
        seed in 0u64..100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut walkers = TorusWalkers::new(n, side, move_radius, 1.0, &mut rng);
        for _ in 0..5 {
            let before = walkers.positions().to_vec();
            walkers.advance(&mut rng);
            prop_assert!(max_displacement(&before, &walkers) <= move_radius + 1e-9);
        }
    }

    #[test]
    fn waypoint_and_billiard_respect_region_and_speed(
        n in 5usize..50,
        side in 5.0f64..25.0,
        vmax in 0.5f64..3.0,
        seed in 0u64..100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut waypoint = RandomWaypoint::new(n, side, vmax / 2.0, vmax, &mut rng);
        let mut billiard = Billiard::new(n, side, vmax / 2.0, vmax, 0.1, &mut rng);
        for _ in 0..5 {
            let before = waypoint.positions().to_vec();
            waypoint.advance(&mut rng);
            prop_assert!(max_displacement(&before, &waypoint) <= vmax + 1e-9);
            for &p in waypoint.positions() {
                prop_assert!(p.0 >= 0.0 && p.0 <= side && p.1 >= 0.0 && p.1 <= side);
            }
            let before = billiard.positions().to_vec();
            billiard.advance(&mut rng);
            prop_assert!(max_displacement(&before, &billiard) <= vmax + 1e-9);
            for &p in billiard.positions() {
                prop_assert!(billiard.region().contains(p));
            }
        }
    }

    #[test]
    fn stationary_occupancy_counts_every_node(n in 10usize..500, cells in 1usize..6, seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let side = 20.0;
        let walkers = TorusWalkers::new(n, side, 1.0, 1.0, &mut rng);
        let counts = cell_occupancy(walkers.positions(), side, cells);
        prop_assert_eq!(counts.len(), cells * cells);
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        prop_assert!(tv_from_uniform(&counts) <= 1.0);
    }
}
