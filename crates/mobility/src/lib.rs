//! # meg-mobility
//!
//! Node-mobility models for geometric Markovian evolving graphs.
//!
//! The paper analyses the discrete random-walk model (nodes walk on the grid
//! `L_{n,ε}` inside a `√n × √n` square, Section 3) and notes that its
//! expansion argument only needs the stationary distribution of node positions
//! to be (almost) uniform — so it extends to the random waypoint model on a
//! torus, the random-direction/billiard model, and the walkers model on a
//! toroidal grid. This crate implements all of them behind one trait:
//!
//! * [`GridWalk`] — the paper's model (reflecting square,
//!   stationary law `π(x) ∝ |Γ(x)|`);
//! * [`TorusWalkers`] — the walkers model on a toroidal
//!   grid (uniform stationary law);
//! * [`RandomWaypoint`] — waypoint mobility on a
//!   torus (uniform stationary law in the zero-pause regime);
//! * [`Billiard`] — random direction with reflection
//!   (uniform stationary law).
//!
//! [`stationary`] provides the occupancy-uniformity diagnostics the
//! `exp_mobility_models` experiment reports.
//!
//! ## Example
//!
//! ```
//! use meg_mobility::{grid_walk::GridWalkParams, GridWalk, Mobility};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(2009);
//! // 100 stations on a 10×10 square, move radius 2, unit grid resolution
//! // (the paper's model, started from its stationary distribution).
//! let params = GridWalkParams { n: 100, side: 10.0, move_radius: 2.0, resolution: 1.0 };
//! let mut walk = GridWalk::new(params, &mut rng);
//! assert_eq!(walk.num_nodes(), 100);
//!
//! let before = walk.positions().to_vec();
//! walk.advance(&mut rng);
//! let moved = meg_mobility::traits::max_displacement(&before, &walk);
//! assert!(moved <= walk.max_step_distance() + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billiard;
pub mod grid_walk;
pub mod space;
pub mod stationary;
pub mod traits;
pub mod walkers;
pub mod waypoint;

pub use billiard::Billiard;
pub use grid_walk::GridWalk;
pub use space::{Point, Region};
pub use traits::Mobility;
pub use walkers::TorusWalkers;
pub use waypoint::RandomWaypoint;
