//! The paper's mobility model (Section 3): independent random walks on the
//! grid `L_{side,ε}` inside a square with solid walls.
//!
//! A node at grid point `x` moves, in one time step, to a grid point chosen
//! uniformly at random from `Γ(x) = {y : d(x, y) ≤ r}` — note `x ∈ Γ(x)`, so
//! the walk is lazy. Because border points have smaller `Γ`, the stationary
//! law is not exactly uniform but `π(x) ∝ |Γ(x)|`, which is uniform up to a
//! constant factor (the fact Claim 1 of the paper leans on).

use crate::space::{Point, Region};
use crate::traits::Mobility;
use rand::Rng;

/// Parameters of a [`GridWalk`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridWalkParams {
    /// Number of nodes.
    pub n: usize,
    /// Side length of the square region.
    pub side: f64,
    /// Move radius `r` (maximum node speed). Must be positive.
    pub move_radius: f64,
    /// Grid resolution `ε` (must satisfy `0 < ε ≤ side`).
    pub resolution: f64,
}

impl GridWalkParams {
    /// The paper's canonical setting: density 1, i.e. a `√n × √n` square.
    pub fn paper(n: usize, move_radius: f64, resolution: f64) -> Self {
        GridWalkParams {
            n,
            side: (n as f64).sqrt(),
            move_radius,
            resolution,
        }
    }
}

/// Independent lazy random walks of `n` nodes on the grid `L_{side,ε}`.
#[derive(Clone, Debug)]
pub struct GridWalk {
    params: GridWalkParams,
    /// Grid points per axis (indices `0 ..= pts_per_axis - 1`).
    pts_per_axis: i64,
    /// Half-width of the move window in grid units: `⌊r/ε⌋`.
    dr: i64,
    /// `col_span[dx + dr]` = maximal `|dy|` allowed at horizontal offset `dx`.
    col_span: Vec<i64>,
    /// Integer grid coordinates of every node.
    coords: Vec<(i64, i64)>,
    /// Cached continuous positions (kept in sync with `coords`).
    positions: Vec<Point>,
}

impl GridWalk {
    /// Creates the model and draws the initial positions from the stationary
    /// distribution (perfect simulation).
    pub fn new<R: Rng>(params: GridWalkParams, rng: &mut R) -> Self {
        assert!(params.n > 0, "need at least one node");
        assert!(params.side > 0.0, "side must be positive");
        assert!(params.move_radius > 0.0, "move radius must be positive");
        assert!(
            params.resolution > 0.0 && params.resolution <= params.side,
            "resolution must lie in (0, side]"
        );
        let pts_per_axis = (params.side / params.resolution).floor() as i64 + 1;
        let dr = (params.move_radius / params.resolution).floor() as i64;
        let mut col_span = Vec::with_capacity((2 * dr + 1) as usize);
        let r2 = params.move_radius * params.move_radius;
        for dx in -dr..=dr {
            let x = dx as f64 * params.resolution;
            let remaining = (r2 - x * x).max(0.0).sqrt();
            col_span.push((remaining / params.resolution).floor() as i64);
        }
        let mut walk = GridWalk {
            params,
            pts_per_axis,
            dr,
            col_span,
            coords: vec![(0, 0); params.n],
            positions: vec![(0.0, 0.0); params.n],
        };
        walk.sample_stationary(rng);
        walk
    }

    /// The model parameters.
    pub fn params(&self) -> GridWalkParams {
        self.params
    }

    /// Number of grid points per axis.
    pub fn points_per_axis(&self) -> usize {
        self.pts_per_axis as usize
    }

    /// Total number of grid points `|L_{side,ε}|`.
    pub fn num_grid_points(&self) -> usize {
        (self.pts_per_axis * self.pts_per_axis) as usize
    }

    /// `|Γ(x)|` for the grid point with integer coordinates `(i, j)`:
    /// the number of grid points (including `(i, j)` itself) within distance
    /// `r`, clipped to the region.
    pub fn neighborhood_size(&self, i: i64, j: i64) -> u64 {
        debug_assert!(self.in_range(i, j), "grid point ({i},{j}) out of range");
        let mut total = 0u64;
        for (idx, &span) in self.col_span.iter().enumerate() {
            let dx = idx as i64 - self.dr;
            let x = i + dx;
            if x < 0 || x >= self.pts_per_axis {
                continue;
            }
            let lo = (j - span).max(0);
            let hi = (j + span).min(self.pts_per_axis - 1);
            if hi >= lo {
                total += (hi - lo + 1) as u64;
            }
        }
        total
    }

    /// `|Γ(x)|` for an unconstrained interior point — the maximum over the
    /// grid, used for rejection sampling of the stationary law.
    pub fn max_neighborhood_size(&self) -> u64 {
        self.col_span.iter().map(|&s| (2 * s + 1) as u64).sum()
    }

    /// Integer grid coordinates of every node.
    pub fn coords(&self) -> &[(i64, i64)] {
        &self.coords
    }

    fn in_range(&self, i: i64, j: i64) -> bool {
        (0..self.pts_per_axis).contains(&i) && (0..self.pts_per_axis).contains(&j)
    }

    fn sync_position(&mut self, node: usize) {
        let (i, j) = self.coords[node];
        self.positions[node] = (
            i as f64 * self.params.resolution,
            j as f64 * self.params.resolution,
        );
    }

    /// Moves a single node one step (uniform choice over `Γ(x)`).
    fn step_node<R: Rng>(&mut self, node: usize, rng: &mut R) {
        let (i, j) = self.coords[node];
        let total = self.neighborhood_size(i, j);
        debug_assert!(total >= 1);
        let mut pick = rng.gen_range(0..total);
        for (idx, &span) in self.col_span.iter().enumerate() {
            let dx = idx as i64 - self.dr;
            let x = i + dx;
            if x < 0 || x >= self.pts_per_axis {
                continue;
            }
            let lo = (j - span).max(0);
            let hi = (j + span).min(self.pts_per_axis - 1);
            if hi < lo {
                continue;
            }
            let count = (hi - lo + 1) as u64;
            if pick < count {
                self.coords[node] = (x, lo + pick as i64);
                self.sync_position(node);
                return;
            }
            pick -= count;
        }
        unreachable!("pick index exceeded |Γ(x)|");
    }

    /// Draws one grid point from the stationary law `π(x) ∝ |Γ(x)|` by
    /// rejection sampling against the uniform proposal.
    fn sample_stationary_point<R: Rng>(&self, rng: &mut R) -> (i64, i64) {
        let max = self.max_neighborhood_size();
        loop {
            let i = rng.gen_range(0..self.pts_per_axis);
            let j = rng.gen_range(0..self.pts_per_axis);
            let accept = self.neighborhood_size(i, j) as f64 / max as f64;
            if rng.gen_bool(accept) {
                return (i, j);
            }
        }
    }
}

impl Mobility for GridWalk {
    fn num_nodes(&self) -> usize {
        self.params.n
    }

    fn region(&self) -> Region {
        Region::Square {
            side: self.params.side,
        }
    }

    fn positions(&self) -> &[Point] {
        &self.positions
    }

    fn advance<R: Rng>(&mut self, rng: &mut R) {
        for node in 0..self.params.n {
            self.step_node(node, rng);
        }
    }

    fn sample_stationary<R: Rng>(&mut self, rng: &mut R) {
        for node in 0..self.params.n {
            self.coords[node] = self.sample_stationary_point(rng);
            self.sync_position(node);
        }
    }

    fn max_step_distance(&self) -> f64 {
        self.params.move_radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::max_displacement;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_walk(seed: u64) -> GridWalk {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        GridWalk::new(
            GridWalkParams {
                n: 50,
                side: 10.0,
                move_radius: 1.5,
                resolution: 1.0,
            },
            &mut rng,
        )
    }

    #[test]
    fn grid_dimensions() {
        let w = small_walk(0);
        assert_eq!(w.points_per_axis(), 11);
        assert_eq!(w.num_grid_points(), 121);
        assert_eq!(w.num_nodes(), 50);
        assert_eq!(w.max_step_distance(), 1.5);
        assert!(!w.region().is_torus());
    }

    #[test]
    fn neighborhood_sizes_match_brute_force() {
        let w = small_walk(1);
        let eps = 1.0;
        let r2 = 1.5f64 * 1.5;
        for &(i, j) in &[(0i64, 0i64), (0, 5), (5, 5), (10, 10), (1, 9)] {
            let mut brute = 0u64;
            for x in 0..11i64 {
                for y in 0..11i64 {
                    let dx = (x - i) as f64 * eps;
                    let dy = (y - j) as f64 * eps;
                    if dx * dx + dy * dy <= r2 {
                        brute += 1;
                    }
                }
            }
            assert_eq!(w.neighborhood_size(i, j), brute, "at ({i},{j})");
        }
        // interior point matches the declared maximum
        assert_eq!(w.neighborhood_size(5, 5), w.max_neighborhood_size());
        // corner point has roughly a quarter of the interior neighborhood
        assert!(w.neighborhood_size(0, 0) < w.max_neighborhood_size());
    }

    #[test]
    fn steps_never_exceed_move_radius_or_leave_region() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut w = small_walk(2);
        for _ in 0..50 {
            let before = w.positions().to_vec();
            w.advance(&mut rng);
            let disp = max_displacement(&before, &w);
            assert!(disp <= w.max_step_distance() + 1e-9, "displacement {disp}");
            for &p in w.positions() {
                assert!(w.region().contains(p), "position {p:?} escaped the region");
            }
        }
    }

    #[test]
    fn laziness_nodes_can_stay_put() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut w = small_walk(3);
        let mut stayed = 0usize;
        let mut moved = 0usize;
        for _ in 0..20 {
            let before = w.coords().to_vec();
            w.advance(&mut rng);
            for (a, b) in before.iter().zip(w.coords().iter()) {
                if a == b {
                    stayed += 1;
                } else {
                    moved += 1;
                }
            }
        }
        assert!(stayed > 0, "a lazy walk must sometimes stay");
        assert!(moved > 0, "and must sometimes move");
    }

    #[test]
    fn stationary_occupancy_is_proportional_to_neighborhood_size() {
        // Single node, many stationary redraws: the empirical probability of a
        // corner cell vs an interior cell should reflect |Γ(corner)|/|Γ(interior)|.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let w = GridWalk::new(
            GridWalkParams {
                n: 1,
                side: 4.0,
                move_radius: 1.0,
                resolution: 1.0,
            },
            &mut rng,
        );
        let total_weight: f64 = (0..5)
            .flat_map(|i| (0..5).map(move |j| (i, j)))
            .map(|(i, j)| w.neighborhood_size(i, j) as f64)
            .sum();
        let p_corner = w.neighborhood_size(0, 0) as f64 / total_weight;
        let p_center = w.neighborhood_size(2, 2) as f64 / total_weight;
        let trials = 60_000usize;
        let mut at_corner = 0usize;
        let mut at_center = 0usize;
        let mut model = w;
        for _ in 0..trials {
            model.sample_stationary(&mut rng);
            match model.coords()[0] {
                (0, 0) => at_corner += 1,
                (2, 2) => at_center += 1,
                _ => {}
            }
        }
        let f_corner = at_corner as f64 / trials as f64;
        let f_center = at_center as f64 / trials as f64;
        assert!(
            (f_corner - p_corner).abs() < 0.01,
            "corner {f_corner} vs {p_corner}"
        );
        assert!(
            (f_center - p_center).abs() < 0.01,
            "center {f_center} vs {p_center}"
        );
    }

    #[test]
    fn stationarity_is_preserved_by_one_step() {
        // Chi-squared-style check: start stationary, advance once, and verify
        // the border-vs-interior occupancy ratio stays close to stationary.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let params = GridWalkParams {
            n: 2_000,
            side: 20.0,
            move_radius: 2.0,
            resolution: 1.0,
        };
        let mut w = GridWalk::new(params, &mut rng);
        let is_border = |&(i, j): &(i64, i64)| i == 0 || j == 0 || i == 20 || j == 20;
        // Expected stationary border mass.
        let mut border_weight = 0.0;
        let mut total_weight = 0.0;
        for i in 0..21i64 {
            for j in 0..21i64 {
                let wgt = w.neighborhood_size(i, j) as f64;
                total_weight += wgt;
                if is_border(&(i, j)) {
                    border_weight += wgt;
                }
            }
        }
        let expected = border_weight / total_weight;
        w.advance(&mut rng);
        w.advance(&mut rng);
        let observed = w.coords().iter().filter(|c| is_border(c)).count() as f64 / params.n as f64;
        assert!(
            (observed - expected).abs() < 0.04,
            "border occupancy {observed} vs stationary {expected}"
        );
    }

    #[test]
    fn paper_params_use_unit_density() {
        let p = GridWalkParams::paper(400, 1.0, 0.5);
        assert_eq!(p.side, 20.0);
        assert_eq!(p.n, 400);
    }

    #[test]
    #[should_panic]
    fn zero_move_radius_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        GridWalk::new(
            GridWalkParams {
                n: 1,
                side: 5.0,
                move_radius: 0.0,
                resolution: 1.0,
            },
            &mut rng,
        );
    }
}
