//! Random waypoint mobility on a torus ([19, 20, 25, 28] in the paper).
//!
//! Each node repeatedly picks a uniformly random destination and a speed in
//! `[v_min, v_max]`, then travels toward the destination along the shortest
//! toroidal path at that speed; on arrival it immediately picks a new
//! destination (zero pause time). On a torus with zero pause the stationary
//! distribution of positions is uniform — this is precisely why the paper
//! lists the model among those its expansion technique covers (unlike the
//! waypoint model on a *square*, whose stationary law concentrates in the
//! centre).

use crate::space::{wrap, Point, Region};
use crate::traits::Mobility;
use rand::Rng;

/// Random waypoint mobility on a flat torus.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    n: usize,
    side: f64,
    v_min: f64,
    v_max: f64,
    positions: Vec<Point>,
    destinations: Vec<Point>,
    speeds: Vec<f64>,
}

impl RandomWaypoint {
    /// Creates the model with stationary initial state. Speeds are drawn
    /// uniformly from `[v_min, v_max]` (`0 < v_min ≤ v_max`).
    pub fn new<R: Rng>(n: usize, side: f64, v_min: f64, v_max: f64, rng: &mut R) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(side > 0.0, "side must be positive");
        assert!(
            v_min > 0.0 && v_min <= v_max,
            "need 0 < v_min ≤ v_max (got {v_min}, {v_max})"
        );
        let mut model = RandomWaypoint {
            n,
            side,
            v_min,
            v_max,
            positions: vec![(0.0, 0.0); n],
            destinations: vec![(0.0, 0.0); n],
            speeds: vec![v_min; n],
        };
        model.sample_stationary(rng);
        model
    }

    /// Current destination of every node.
    pub fn destinations(&self) -> &[Point] {
        &self.destinations
    }

    /// Current speed of every node.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    fn pick_leg<R: Rng>(&mut self, node: usize, rng: &mut R) {
        self.destinations[node] = (rng.gen_range(0.0..self.side), rng.gen_range(0.0..self.side));
        self.speeds[node] = if self.v_min == self.v_max {
            self.v_min
        } else {
            rng.gen_range(self.v_min..self.v_max)
        };
    }
}

impl Mobility for RandomWaypoint {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn region(&self) -> Region {
        Region::Torus { side: self.side }
    }

    fn positions(&self) -> &[Point] {
        &self.positions
    }

    fn advance<R: Rng>(&mut self, rng: &mut R) {
        let region = self.region();
        for node in 0..self.n {
            let mut budget = self.speeds[node];
            // A node may reach its waypoint mid-step and start a new leg with
            // the remaining travel budget.
            let mut guard = 0;
            while budget > 1e-12 && guard < 16 {
                guard += 1;
                let pos = self.positions[node];
                let dest = self.destinations[node];
                let dist = region.distance(pos, dest);
                if dist <= budget {
                    self.positions[node] = dest;
                    budget -= dist;
                    self.pick_leg(node, rng);
                } else {
                    let dx = crate::space::torus_delta(dest.0, pos.0, self.side);
                    let dy = crate::space::torus_delta(dest.1, pos.1, self.side);
                    let scale = budget / dist;
                    self.positions[node] = (
                        wrap(pos.0 + dx * scale, self.side),
                        wrap(pos.1 + dy * scale, self.side),
                    );
                    budget = 0.0;
                }
            }
        }
    }

    fn sample_stationary<R: Rng>(&mut self, rng: &mut R) {
        // On the torus with zero pause time the stationary position law is
        // uniform, and the leg state refreshes quickly; drawing position and
        // destination uniformly (speed uniform) is the standard perfect-
        // simulation initialisation for this variant.
        for node in 0..self.n {
            self.positions[node] = (rng.gen_range(0.0..self.side), rng.gen_range(0.0..self.side));
            self.pick_leg(node, rng);
        }
    }

    fn max_step_distance(&self) -> f64 {
        self.v_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::max_displacement;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_accessors() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = RandomWaypoint::new(25, 10.0, 0.5, 2.0, &mut rng);
        assert_eq!(m.num_nodes(), 25);
        assert_eq!(m.destinations().len(), 25);
        assert_eq!(m.speeds().len(), 25);
        assert!(m.speeds().iter().all(|&v| (0.5..=2.0).contains(&v)));
        assert_eq!(m.max_step_distance(), 2.0);
        assert!(m.region().is_torus());
    }

    #[test]
    fn displacement_bounded_by_speed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = RandomWaypoint::new(60, 12.0, 0.2, 1.5, &mut rng);
        for _ in 0..40 {
            let before = m.positions().to_vec();
            m.advance(&mut rng);
            // A node that reaches a waypoint mid-step may change direction, so
            // its net displacement can only be smaller than its speed budget.
            assert!(max_displacement(&before, &m) <= 1.5 + 1e-9);
            for &p in m.positions() {
                assert!(p.0 >= 0.0 && p.0 < 12.0 && p.1 >= 0.0 && p.1 < 12.0);
            }
        }
    }

    #[test]
    fn nodes_make_progress_toward_destination() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut m = RandomWaypoint::new(1, 100.0, 1.0, 1.0, &mut rng);
        let region = m.region();
        let before_dist = region.distance(m.positions()[0], m.destinations()[0]);
        if before_dist > 2.0 {
            let dest = m.destinations()[0];
            m.advance(&mut rng);
            let after_dist = region.distance(m.positions()[0], dest);
            assert!(after_dist < before_dist);
            assert!((before_dist - after_dist - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn long_run_occupancy_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut m = RandomWaypoint::new(400, 10.0, 0.5, 1.5, &mut rng);
        let mut left = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            m.advance(&mut rng);
            left += m.positions().iter().filter(|p| p.0 < 5.0).count();
            total += m.num_nodes();
        }
        let frac = left as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "left-half occupancy {frac}");
    }

    #[test]
    fn fixed_speed_model_allows_vmin_equals_vmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = RandomWaypoint::new(5, 10.0, 1.0, 1.0, &mut rng);
        assert!(m.speeds().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        RandomWaypoint::new(5, 10.0, 0.0, 1.0, &mut rng);
    }
}
