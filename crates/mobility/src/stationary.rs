//! Uniformity diagnostics for stationary position distributions.
//!
//! The paper's Theorem 3.2 only uses one property of the mobility model: the
//! stationary distribution of node positions is (almost) uniform, so cell
//! occupancies concentrate (Claim 1). These diagnostics quantify how uniform a
//! model's empirical occupancy actually is, and are reported by the
//! `exp_mobility_models` experiment for every model in this crate.

use crate::space::Point;
use crate::traits::Mobility;
use rand::Rng;

/// Cell-occupancy counts of a set of positions over a `cells × cells` grid
/// covering the `[0, side]²` region.
pub fn cell_occupancy(positions: &[Point], side: f64, cells: usize) -> Vec<usize> {
    assert!(cells > 0, "need at least one cell per axis");
    assert!(side > 0.0, "side must be positive");
    let mut counts = vec![0usize; cells * cells];
    let w = side / cells as f64;
    for &(x, y) in positions {
        let cx = ((x / w) as usize).min(cells - 1);
        let cy = ((y / w) as usize).min(cells - 1);
        counts[cy * cells + cx] += 1;
    }
    counts
}

/// Pearson chi-squared statistic of the occupancy counts against the uniform
/// expectation. Under uniformity its expected value is about the number of
/// cells minus one.
pub fn chi_squared_uniform(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Total-variation distance between the empirical occupancy distribution and
/// the uniform distribution over cells.
pub fn tv_from_uniform(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let uniform = 1.0 / counts.len() as f64;
    0.5 * counts
        .iter()
        .map(|&c| (c as f64 / total as f64 - uniform).abs())
        .sum::<f64>()
}

/// Ratio between the largest and smallest cell occupancy (`∞` if some cell is
/// empty). Claim 1 of the paper asserts this ratio is bounded by a constant
/// `λ²` w.h.p. when cells have side ~`R ≥ c√(log n)`.
pub fn max_min_ratio(counts: &[usize]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    let min = counts.iter().copied().min().unwrap_or(0) as f64;
    if min == 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Summary of a uniformity measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformityReport {
    /// Number of cells per axis used for the measurement.
    pub cells_per_axis: usize,
    /// Chi-squared statistic against uniformity.
    pub chi_squared: f64,
    /// Total-variation distance from the uniform cell distribution.
    pub tv_distance: f64,
    /// Max/min cell-occupancy ratio.
    pub max_min_ratio: f64,
}

/// Runs `steps` mobility steps (after a stationary redraw) while accumulating
/// cell occupancy, then reports the uniformity statistics.
pub fn measure_uniformity<M: Mobility, R: Rng>(
    model: &mut M,
    cells_per_axis: usize,
    steps: usize,
    rng: &mut R,
) -> UniformityReport {
    model.sample_stationary(rng);
    let side = model.region().side();
    let mut counts = vec![0usize; cells_per_axis * cells_per_axis];
    for _ in 0..steps.max(1) {
        model.advance(rng);
        for (acc, c) in
            counts
                .iter_mut()
                .zip(cell_occupancy(model.positions(), side, cells_per_axis))
        {
            *acc += c;
        }
    }
    UniformityReport {
        cells_per_axis,
        chi_squared: chi_squared_uniform(&counts),
        tv_distance: tv_from_uniform(&counts),
        max_min_ratio: max_min_ratio(&counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid_walk::GridWalkParams;
    use crate::{Billiard, GridWalk, RandomWaypoint, TorusWalkers};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn occupancy_counts_positions_correctly() {
        let pos = [(0.1, 0.1), (0.9, 0.9), (0.95, 0.05), (0.4, 0.6)];
        let counts = cell_occupancy(&pos, 1.0, 2);
        // cells: [ (0,0)=lower-left, (1,0)=lower-right, (0,1)=upper-left, (1,1) ]
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert_eq!(counts[0], 1); // (0.1, 0.1)
        assert_eq!(counts[1], 1); // (0.95, 0.05)
        assert_eq!(counts[2], 1); // (0.4, 0.6)
        assert_eq!(counts[3], 1); // (0.9, 0.9)
    }

    #[test]
    fn perfectly_uniform_counts_have_zero_statistics() {
        let counts = vec![10usize; 16];
        assert_eq!(chi_squared_uniform(&counts), 0.0);
        assert_eq!(tv_from_uniform(&counts), 0.0);
        assert_eq!(max_min_ratio(&counts), 1.0);
    }

    #[test]
    fn concentrated_counts_have_large_statistics() {
        let mut counts = vec![0usize; 4];
        counts[0] = 100;
        assert!(chi_squared_uniform(&counts) > 100.0);
        assert!((tv_from_uniform(&counts) - 0.75).abs() < 1e-12);
        assert_eq!(max_min_ratio(&counts), f64::INFINITY);
    }

    #[test]
    fn empty_input_is_harmless() {
        assert_eq!(chi_squared_uniform(&[]), 0.0);
        assert_eq!(tv_from_uniform(&[]), 0.0);
        assert_eq!(cell_occupancy(&[], 1.0, 3).iter().sum::<usize>(), 0);
    }

    #[test]
    fn all_models_are_roughly_uniform_at_coarse_cell_scale() {
        // 3×3 cells, many nodes: every model the paper lists should have a
        // bounded max/min occupancy ratio and small TV distance.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 2_000usize;
        let side = 30.0;

        let mut grid = GridWalk::new(
            GridWalkParams {
                n,
                side,
                move_radius: 2.0,
                resolution: 1.0,
            },
            &mut rng,
        );
        let mut walkers = TorusWalkers::new(n, side, 2.0, 1.0, &mut rng);
        let mut waypoint = RandomWaypoint::new(n, side, 1.0, 3.0, &mut rng);
        let mut billiard = Billiard::new(n, side, 1.0, 3.0, 0.1, &mut rng);

        let reports = [
            ("grid", measure_uniformity(&mut grid, 3, 5, &mut rng)),
            ("walkers", measure_uniformity(&mut walkers, 3, 5, &mut rng)),
            (
                "waypoint",
                measure_uniformity(&mut waypoint, 3, 5, &mut rng),
            ),
            (
                "billiard",
                measure_uniformity(&mut billiard, 3, 5, &mut rng),
            ),
        ];
        for (name, report) in reports {
            assert!(
                report.tv_distance < 0.08,
                "{name}: TV distance {} too large",
                report.tv_distance
            );
            assert!(
                report.max_min_ratio < 1.6,
                "{name}: max/min ratio {} too large",
                report.max_min_ratio
            );
            assert_eq!(report.cells_per_axis, 3);
        }
    }
}
