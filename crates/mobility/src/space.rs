//! Geometry of the support region: a square (reflecting / clamping walls) or a
//! torus (wrap-around), with the distance functions the radius-graph
//! construction needs.

/// A point of the plane.
pub type Point = (f64, f64);

/// The region nodes move in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Region {
    /// An axis-aligned square `[0, side] × [0, side]` with solid walls.
    Square {
        /// Side length.
        side: f64,
    },
    /// A flat torus of the given side (opposite edges identified).
    Torus {
        /// Side length.
        side: f64,
    },
}

impl Region {
    /// Side length of the region.
    pub fn side(&self) -> f64 {
        match *self {
            Region::Square { side } | Region::Torus { side } => side,
        }
    }

    /// Area of the region.
    pub fn area(&self) -> f64 {
        let s = self.side();
        s * s
    }

    /// Returns `true` for the toroidal topology.
    pub fn is_torus(&self) -> bool {
        matches!(self, Region::Torus { .. })
    }

    /// Euclidean distance between two points, accounting for wrap-around on
    /// the torus.
    pub fn distance(&self, a: Point, b: Point) -> f64 {
        self.distance_squared(a, b).sqrt()
    }

    /// Squared distance (cheaper when only comparisons are needed).
    pub fn distance_squared(&self, a: Point, b: Point) -> f64 {
        match *self {
            Region::Square { .. } => {
                let dx = a.0 - b.0;
                let dy = a.1 - b.1;
                dx * dx + dy * dy
            }
            Region::Torus { side } => {
                let dx = torus_delta(a.0, b.0, side);
                let dy = torus_delta(a.1, b.1, side);
                dx * dx + dy * dy
            }
        }
    }

    /// Clamps (square) or wraps (torus) a point back into the region.
    pub fn normalize(&self, p: Point) -> Point {
        match *self {
            Region::Square { side } => (p.0.clamp(0.0, side), p.1.clamp(0.0, side)),
            Region::Torus { side } => (wrap(p.0, side), wrap(p.1, side)),
        }
    }

    /// Reflects a point off the walls of a square region (no-op coordinates
    /// already inside). On a torus this simply wraps.
    pub fn reflect(&self, p: Point) -> Point {
        match *self {
            Region::Square { side } => (reflect_coord(p.0, side), reflect_coord(p.1, side)),
            Region::Torus { side } => (wrap(p.0, side), wrap(p.1, side)),
        }
    }

    /// Returns `true` if the point lies inside the region (always true for a
    /// torus after wrapping).
    pub fn contains(&self, p: Point) -> bool {
        match *self {
            Region::Square { side } => (0.0..=side).contains(&p.0) && (0.0..=side).contains(&p.1),
            Region::Torus { .. } => true,
        }
    }
}

/// Signed minimal displacement from `b` to `a` on a circle of circumference
/// `side`.
pub fn torus_delta(a: f64, b: f64, side: f64) -> f64 {
    let mut d = a - b;
    if d > side / 2.0 {
        d -= side;
    } else if d < -side / 2.0 {
        d += side;
    }
    d
}

/// Wraps a coordinate into `[0, side)`.
pub fn wrap(x: f64, side: f64) -> f64 {
    let mut y = x % side;
    if y < 0.0 {
        y += side;
    }
    y
}

/// Reflects a coordinate into `[0, side]` (handles displacements up to one
/// full period beyond either wall, which covers any sane speed).
pub fn reflect_coord(x: f64, side: f64) -> f64 {
    let mut y = x;
    if y < 0.0 {
        y = -y;
    }
    if y > side {
        y = 2.0 * side - y;
    }
    y.clamp(0.0, side)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_distance_is_euclidean() {
        let r = Region::Square { side: 10.0 };
        assert_eq!(r.distance((0.0, 0.0), (3.0, 4.0)), 5.0);
        assert_eq!(r.distance_squared((1.0, 1.0), (1.0, 1.0)), 0.0);
        assert_eq!(r.side(), 10.0);
        assert_eq!(r.area(), 100.0);
        assert!(!r.is_torus());
    }

    #[test]
    fn torus_distance_wraps_around() {
        let t = Region::Torus { side: 10.0 };
        // points near opposite edges are actually close
        assert!((t.distance((0.5, 0.0), (9.5, 0.0)) - 1.0).abs() < 1e-12);
        assert!((t.distance((0.0, 0.5), (0.0, 9.5)) - 1.0).abs() < 1e-12);
        // but the "interior" distance is unchanged
        assert_eq!(t.distance((2.0, 2.0), (5.0, 6.0)), 5.0);
        assert!(t.is_torus());
    }

    #[test]
    fn normalization() {
        let sq = Region::Square { side: 4.0 };
        assert_eq!(sq.normalize((-1.0, 5.0)), (0.0, 4.0));
        assert!(sq.contains(sq.normalize((-1.0, 5.0))));
        let t = Region::Torus { side: 4.0 };
        assert_eq!(t.normalize((-1.0, 5.0)), (3.0, 1.0));
        assert_eq!(t.normalize((4.0, 0.0)), (0.0, 0.0));
    }

    #[test]
    fn reflection() {
        let sq = Region::Square { side: 4.0 };
        assert_eq!(sq.reflect((-1.0, 2.0)), (1.0, 2.0));
        assert_eq!(sq.reflect((5.0, 2.0)), (3.0, 2.0));
        assert_eq!(sq.reflect((2.0, 2.0)), (2.0, 2.0));
        assert_eq!(reflect_coord(4.0, 4.0), 4.0);
        assert_eq!(reflect_coord(0.0, 4.0), 0.0);
    }

    #[test]
    fn wrap_and_delta_helpers() {
        assert_eq!(wrap(11.0, 10.0), 1.0);
        assert_eq!(wrap(-1.0, 10.0), 9.0);
        assert_eq!(wrap(10.0, 10.0), 0.0);
        assert_eq!(torus_delta(1.0, 9.0, 10.0), 2.0);
        assert_eq!(torus_delta(9.0, 1.0, 10.0), -2.0);
        assert_eq!(torus_delta(3.0, 1.0, 10.0), 2.0);
    }

    #[test]
    fn contains_checks_square_bounds() {
        let sq = Region::Square { side: 2.0 };
        assert!(sq.contains((0.0, 2.0)));
        assert!(!sq.contains((2.1, 1.0)));
        let t = Region::Torus { side: 2.0 };
        assert!(t.contains((100.0, -3.0)));
    }
}
