//! Random direction with reflection — the "billiard" model ([3, 25, 28] in the
//! paper).
//!
//! Each node carries a heading and a speed; at every step it advances along
//! its heading and reflects off the walls of the square like a billiard ball.
//! With probability `turn_probability` per step it redraws a fresh uniform
//! heading (and speed), which keeps the model ergodic. The stationary
//! distribution of positions is uniform over the square, which is the property
//! the paper's expansion argument needs.

use crate::space::{Point, Region};
use crate::traits::Mobility;
use rand::Rng;

/// Random-direction mobility with billiard reflection in a square.
#[derive(Clone, Debug)]
pub struct Billiard {
    n: usize,
    side: f64,
    speed_min: f64,
    speed_max: f64,
    turn_probability: f64,
    positions: Vec<Point>,
    /// Velocity vector of each node (already scaled by its speed).
    velocities: Vec<(f64, f64)>,
}

impl Billiard {
    /// Creates the model with stationary initial state.
    ///
    /// `turn_probability` is the per-step probability of redrawing the
    /// heading; `0` gives straight billiard trajectories forever.
    pub fn new<R: Rng>(
        n: usize,
        side: f64,
        speed_min: f64,
        speed_max: f64,
        turn_probability: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(side > 0.0, "side must be positive");
        assert!(
            speed_min > 0.0 && speed_min <= speed_max,
            "need 0 < speed_min ≤ speed_max"
        );
        assert!(
            (0.0..=1.0).contains(&turn_probability),
            "turn probability must lie in [0, 1]"
        );
        let mut model = Billiard {
            n,
            side,
            speed_min,
            speed_max,
            turn_probability,
            positions: vec![(0.0, 0.0); n],
            velocities: vec![(0.0, 0.0); n],
        };
        model.sample_stationary(rng);
        model
    }

    /// Current velocity vectors.
    pub fn velocities(&self) -> &[(f64, f64)] {
        &self.velocities
    }

    fn random_velocity<R: Rng>(&self, rng: &mut R) -> (f64, f64) {
        let speed = if self.speed_min == self.speed_max {
            self.speed_min
        } else {
            rng.gen_range(self.speed_min..self.speed_max)
        };
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        (speed * angle.cos(), speed * angle.sin())
    }
}

impl Mobility for Billiard {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn region(&self) -> Region {
        Region::Square { side: self.side }
    }

    fn positions(&self) -> &[Point] {
        &self.positions
    }

    fn advance<R: Rng>(&mut self, rng: &mut R) {
        for node in 0..self.n {
            if self.turn_probability > 0.0 && rng.gen_bool(self.turn_probability) {
                self.velocities[node] = self.random_velocity(rng);
            }
            let (x, y) = self.positions[node];
            let (vx, vy) = self.velocities[node];
            let mut nx = x + vx;
            let mut ny = y + vy;
            let mut nvx = vx;
            let mut nvy = vy;
            if nx < 0.0 || nx > self.side {
                nvx = -nvx;
                nx = crate::space::reflect_coord(nx, self.side);
            }
            if ny < 0.0 || ny > self.side {
                nvy = -nvy;
                ny = crate::space::reflect_coord(ny, self.side);
            }
            self.positions[node] = (nx, ny);
            self.velocities[node] = (nvx, nvy);
        }
    }

    fn sample_stationary<R: Rng>(&mut self, rng: &mut R) {
        for node in 0..self.n {
            self.positions[node] = (rng.gen_range(0.0..self.side), rng.gen_range(0.0..self.side));
            self.velocities[node] = self.random_velocity(rng);
        }
    }

    fn max_step_distance(&self) -> f64 {
        self.speed_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::max_displacement;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = Billiard::new(20, 10.0, 0.5, 1.5, 0.1, &mut rng);
        assert_eq!(m.num_nodes(), 20);
        assert_eq!(m.velocities().len(), 20);
        assert_eq!(m.max_step_distance(), 1.5);
        for &(vx, vy) in m.velocities() {
            let speed = (vx * vx + vy * vy).sqrt();
            assert!((0.5..=1.5 + 1e-9).contains(&speed), "speed {speed}");
        }
    }

    #[test]
    fn nodes_stay_inside_and_respect_speed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = Billiard::new(50, 8.0, 0.3, 1.2, 0.05, &mut rng);
        for _ in 0..100 {
            let before = m.positions().to_vec();
            m.advance(&mut rng);
            // Reflection can shorten the net displacement but never lengthen it
            // beyond the speed budget.
            assert!(max_displacement(&before, &m) <= 1.2 + 1e-9);
            for &p in m.positions() {
                assert!(m.region().contains(p), "escaped: {p:?}");
            }
        }
    }

    #[test]
    fn straight_mover_reflects_off_walls() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut m = Billiard::new(1, 4.0, 1.0, 1.0, 0.0, &mut rng);
        // Force a known state: heading straight right from near the right wall.
        m.positions[0] = (3.5, 2.0);
        m.velocities[0] = (1.0, 0.0);
        m.advance(&mut rng);
        assert!((m.positions()[0].0 - 3.5).abs() < 1e-12);
        assert_eq!(m.velocities()[0], (-1.0, 0.0));
        m.advance(&mut rng);
        assert!((m.positions()[0].0 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn long_run_occupancy_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut m = Billiard::new(500, 10.0, 0.4, 1.0, 0.2, &mut rng);
        let mut lower_left = 0usize;
        let mut total = 0usize;
        for _ in 0..40 {
            m.advance(&mut rng);
            lower_left += m
                .positions()
                .iter()
                .filter(|p| p.0 < 5.0 && p.1 < 5.0)
                .count();
            total += m.num_nodes();
        }
        let frac = lower_left as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "quadrant occupancy {frac}");
    }

    #[test]
    #[should_panic]
    fn invalid_turn_probability_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        Billiard::new(5, 10.0, 1.0, 1.0, 1.5, &mut rng);
    }
}
