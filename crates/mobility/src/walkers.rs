//! The walkers model on a toroidal grid (\[14\] in the paper): identical to the
//! square-grid random walk but with wrap-around boundaries, so every grid
//! point has the same neighborhood size and the stationary law is exactly
//! uniform.

use crate::space::{Point, Region};
use crate::traits::Mobility;
use rand::Rng;

/// Independent lazy random walks on a toroidal grid.
#[derive(Clone, Debug)]
pub struct TorusWalkers {
    n: usize,
    side: f64,
    resolution: f64,
    move_radius: f64,
    pts_per_axis: i64,
    /// Precomputed admissible offsets `(di, dj)` with `‖(di·ε, dj·ε)‖ ≤ r`.
    offsets: Vec<(i64, i64)>,
    coords: Vec<(i64, i64)>,
    positions: Vec<Point>,
}

impl TorusWalkers {
    /// Creates the model with stationary (uniform) initial positions.
    pub fn new<R: Rng>(
        n: usize,
        side: f64,
        move_radius: f64,
        resolution: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(
            side > 0.0 && move_radius > 0.0,
            "side and move radius must be positive"
        );
        assert!(
            resolution > 0.0 && resolution <= side,
            "resolution must lie in (0, side]"
        );
        let pts_per_axis = (side / resolution).floor() as i64;
        assert!(
            pts_per_axis >= 1,
            "grid must contain at least one point per axis"
        );
        // The toroidal grid wraps after `pts_per_axis` points, so its effective
        // circumference is `pts_per_axis · ε`; use that as the region side so
        // that distances (and hence speed guarantees) are measured on the grid
        // the nodes actually live on.
        let side = pts_per_axis as f64 * resolution;
        let dr = (move_radius / resolution).floor() as i64;
        let r2 = move_radius * move_radius;
        let mut offsets = Vec::new();
        for di in -dr..=dr {
            for dj in -dr..=dr {
                let dx = di as f64 * resolution;
                let dy = dj as f64 * resolution;
                if dx * dx + dy * dy <= r2 {
                    offsets.push((di, dj));
                }
            }
        }
        let mut model = TorusWalkers {
            n,
            side,
            resolution,
            move_radius,
            pts_per_axis,
            offsets,
            coords: vec![(0, 0); n],
            positions: vec![(0.0, 0.0); n],
        };
        model.sample_stationary(rng);
        model
    }

    /// Number of grid points per axis.
    pub fn points_per_axis(&self) -> usize {
        self.pts_per_axis as usize
    }

    /// Neighborhood size `|Γ(x)|`, identical for every grid point on a torus.
    pub fn neighborhood_size(&self) -> usize {
        self.offsets.len()
    }

    /// Integer grid coordinates of every node.
    pub fn coords(&self) -> &[(i64, i64)] {
        &self.coords
    }

    fn sync_position(&mut self, node: usize) {
        let (i, j) = self.coords[node];
        self.positions[node] = (i as f64 * self.resolution, j as f64 * self.resolution);
    }
}

impl Mobility for TorusWalkers {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn region(&self) -> Region {
        Region::Torus { side: self.side }
    }

    fn positions(&self) -> &[Point] {
        &self.positions
    }

    fn advance<R: Rng>(&mut self, rng: &mut R) {
        let m = self.pts_per_axis;
        for node in 0..self.n {
            let (i, j) = self.coords[node];
            let (di, dj) = self.offsets[rng.gen_range(0..self.offsets.len())];
            self.coords[node] = ((i + di).rem_euclid(m), (j + dj).rem_euclid(m));
            self.sync_position(node);
        }
    }

    fn sample_stationary<R: Rng>(&mut self, rng: &mut R) {
        let m = self.pts_per_axis;
        for node in 0..self.n {
            self.coords[node] = (rng.gen_range(0..m), rng.gen_range(0..m));
            self.sync_position(node);
        }
    }

    fn max_step_distance(&self) -> f64 {
        self.move_radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::max_displacement;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_neighborhood() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = TorusWalkers::new(30, 10.0, 1.0, 1.0, &mut rng);
        assert_eq!(w.points_per_axis(), 10);
        assert_eq!(w.num_nodes(), 30);
        // offsets within distance 1 on a unit grid: center + 4 axis neighbors
        assert_eq!(w.neighborhood_size(), 5);
        assert!(w.region().is_torus());
    }

    #[test]
    fn steps_respect_move_radius_with_wraparound_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut w = TorusWalkers::new(40, 12.0, 2.5, 1.0, &mut rng);
        for _ in 0..30 {
            let before = w.positions().to_vec();
            w.advance(&mut rng);
            assert!(max_displacement(&before, &w) <= 2.5 + 1e-9);
        }
    }

    #[test]
    fn stationary_distribution_is_uniform() {
        // Occupancy of a fixed grid point over many redraws ≈ 1/m².
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut w = TorusWalkers::new(1, 5.0, 1.0, 1.0, &mut rng);
        let trials = 50_000usize;
        let mut hits = 0usize;
        for _ in 0..trials {
            w.sample_stationary(&mut rng);
            if w.coords()[0] == (2, 3) {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 1.0 / 25.0).abs() < 0.006, "freq {freq}");
    }

    #[test]
    fn uniformity_is_preserved_by_steps() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut w = TorusWalkers::new(5_000, 10.0, 1.5, 1.0, &mut rng);
        for _ in 0..3 {
            w.advance(&mut rng);
        }
        // Count nodes in the left half; expect ≈ 1/2.
        let left = w.coords().iter().filter(|&&(i, _)| i < 5).count();
        let frac = left as f64 / 5_000.0;
        assert!((frac - 0.5).abs() < 0.03, "left-half fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn invalid_resolution_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        TorusWalkers::new(1, 5.0, 1.0, 10.0, &mut rng);
    }
}
