//! The [`Mobility`] trait shared by every node-mobility model.

use crate::space::{Point, Region};
use rand::Rng;

/// A model of `n` nodes moving in a planar region in discrete time.
///
/// The contract mirrors the Markov chain `P(n, r, ε)` of Section 3 of the
/// paper: `advance` performs one synchronous move of all nodes,
/// `sample_stationary` re-draws all positions (and any hidden per-node state
/// such as a waypoint or a heading) from the model's stationary distribution,
/// which is what "stationary geometric-MEG" means.
pub trait Mobility {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// The region nodes move in.
    fn region(&self) -> Region;

    /// Current positions of all nodes (length `num_nodes`).
    fn positions(&self) -> &[Point];

    /// Moves every node one time step.
    fn advance<R: Rng>(&mut self, rng: &mut R);

    /// Re-draws every node's state from the stationary distribution of the
    /// mobility chain ("perfect simulation" start).
    fn sample_stationary<R: Rng>(&mut self, rng: &mut R);

    /// Maximum distance a node can travel in one time step (the move radius
    /// `r`, i.e. the maximum node speed).
    fn max_step_distance(&self) -> f64;
}

/// Verifies that one `advance` call moved no node farther than the declared
/// [`Mobility::max_step_distance`] (plus a small tolerance). Returns the
/// largest displacement observed. Intended for tests of new models.
pub fn max_displacement<M: Mobility>(before: &[Point], model: &M) -> f64 {
    let region = model.region();
    before
        .iter()
        .zip(model.positions().iter())
        .map(|(&a, &b)| region.distance(a, b))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A trivial model used to exercise the helper: nodes never move.
    struct Frozen {
        positions: Vec<Point>,
        region: Region,
    }

    impl Mobility for Frozen {
        fn num_nodes(&self) -> usize {
            self.positions.len()
        }
        fn region(&self) -> Region {
            self.region
        }
        fn positions(&self) -> &[Point] {
            &self.positions
        }
        fn advance<R: Rng>(&mut self, _rng: &mut R) {}
        fn sample_stationary<R: Rng>(&mut self, rng: &mut R) {
            let side = self.region.side();
            for p in self.positions.iter_mut() {
                *p = (rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            }
        }
        fn max_step_distance(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn frozen_model_has_zero_displacement() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut m = Frozen {
            positions: vec![(0.0, 0.0), (1.0, 1.0)],
            region: Region::Square { side: 4.0 },
        };
        m.sample_stationary(&mut rng);
        let before = m.positions().to_vec();
        m.advance(&mut rng);
        assert_eq!(max_displacement(&before, &m), 0.0);
        assert_eq!(m.num_nodes(), 2);
        assert!(before.iter().all(|p| m.region().contains(*p)));
    }
}
