//! The evolving-graph abstraction.
//!
//! Definition 2.1 (and its generalisation, Definition 3.1) of the paper: an
//! evolving graph is a sequence of random graphs `{G_t : t ∈ ℕ}` over a fixed
//! node set, obtained as a function of an underlying Markov chain. A
//! *stationary* Markovian evolving graph starts the chain from its stationary
//! distribution, so every snapshot has the same marginal law.
//!
//! The [`EvolvingGraph`] trait captures exactly what the flooding process
//! needs: the number of nodes and the ability to produce the snapshot of the
//! next time step. Every model owns a reusable
//! [`SnapshotBuf`] — a flat CSR buffer — and
//! [`advance`](EvolvingGraph::advance) **fills it in place** instead of
//! rebuilding a per-node allocation structure, so stepping the graph performs
//! no heap allocation once the buffer capacities have warmed up (the
//! workspace's hot-path invariant; see `docs/ARCHITECTURE.md`). Model crates
//! (`meg-geometric`, `meg-edge`) implement the trait; [`FrozenGraph`] adapts
//! any static graph so that static flooding (= BFS) is a special case handled
//! by the same engine.

use meg_graph::{AdjacencyList, Graph, SnapshotBuf};

/// How the underlying Markov chain is initialised at time 0.
///
/// The paper's results concern [`InitialDistribution::Stationary`]; the other
/// variants exist to reproduce the worst-case comparisons of Section 1 (the
/// "exponential gap" between stationary and worst-case flooding in edge-MEG).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialDistribution {
    /// Draw `G_0` from the stationary distribution of the chain
    /// ("perfect simulation").
    Stationary,
    /// Start from the empty graph (every edge absent / an arbitrary worst-case
    /// start for sparse regimes).
    Empty,
    /// Start from the complete graph (every edge present).
    Full,
}

/// How an edge-MEG realises the per-edge two-state chains each round.
///
/// Both modes sample *exactly* the same process — `C(n,2)` independent
/// birth/death chains — but consume randomness differently, so their RNG
/// streams (and therefore individual trajectories at equal seeds) diverge:
///
/// * [`PerPair`](Stepping::PerPair) draws one Bernoulli per pair per round
///   (`O(n²)` draws). This is the reference implementation and the default;
///   all pre-existing golden fixtures are pinned to it.
/// * [`Transitions`](Stepping::Transitions) steps by *flips only*: holding
///   times of the two-state chain are geometric, so the next flip of each
///   edge slot can be skip-sampled (`⌈ln U / ln(1−rate)⌉`) instead of
///   re-flipping a coin every round. Per-round cost drops to
///   `O(1 + p·N_pairs + q·|E|)` over flat arrays, and `advance` emits the
///   flips as a delta into the snapshot instead of rebuilding it.
///
/// Statistical equivalence of the two modes is enforced by the
/// `stepping_equivalence` test suite (chi-square/KS against the closed-form
/// laws and against a `PerPair` reference run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stepping {
    /// One Bernoulli draw per pair per round (reference path, default).
    #[default]
    PerPair,
    /// Geometric skip-sampled flip calendar + snapshot deltas (fast path).
    Transitions,
}

/// A dynamic graph process over a fixed node set `[n]`.
///
/// Implementations own their randomness **and their snapshot storage**: each
/// call to [`advance`](EvolvingGraph::advance) draws the next snapshot `G_t`
/// *into* the model-owned [`SnapshotBuf`] and returns a view of it. The first
/// call returns `G_0`, the second `G_1`, and so on;
/// [`time`](EvolvingGraph::time) reports how many snapshots have been
/// produced so far. The returned reference is invalidated by the next
/// `advance` — consumers that need to keep a snapshot clone it (cheap: two
/// flat vectors).
pub trait EvolvingGraph {
    /// Number of nodes `n`; constant over time.
    fn num_nodes(&self) -> usize;

    /// Produces the snapshot for the current time step (filling the
    /// model-owned buffer in place) and advances the underlying chain.
    fn advance(&mut self) -> &SnapshotBuf;

    /// Number of snapshots produced so far (i.e. the index of the *next*
    /// snapshot that [`advance`](EvolvingGraph::advance) will return).
    fn time(&self) -> u64;
}

/// Adapter that turns a static graph into a (constant) evolving graph.
///
/// Flooding on a `FrozenGraph` is exactly BFS from the source, which gives the
/// reference behaviour every dynamic model is tested against, and also models
/// the "static stationary graph" the paper compares mobility against. The
/// snapshot buffer is filled once at construction (preserving the adjacency
/// list's exact neighbor order) and `advance` only bumps the clock.
#[derive(Clone, Debug)]
pub struct FrozenGraph {
    graph: AdjacencyList,
    snapshot: SnapshotBuf,
    time: u64,
}

impl FrozenGraph {
    /// Wraps a static graph.
    pub fn new(graph: AdjacencyList) -> Self {
        let mut snapshot = SnapshotBuf::new();
        snapshot.copy_from_adjacency(&graph);
        FrozenGraph {
            graph,
            snapshot,
            time: 0,
        }
    }

    /// Borrows the underlying static graph.
    pub fn graph(&self) -> &AdjacencyList {
        &self.graph
    }
}

impl EvolvingGraph for FrozenGraph {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn advance(&mut self) -> &SnapshotBuf {
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

/// An evolving graph defined by an explicit, finite schedule of snapshots that
/// repeats cyclically. Used in tests to script exact dynamic scenarios
/// (e.g. "the bridge edge exists only at even steps").
#[derive(Clone, Debug)]
pub struct ScheduledGraph {
    /// Snapshot buffers converted once at construction (neighbor order
    /// preserved), so `advance` is a zero-cost borrow like `FrozenGraph`.
    snapshots: Vec<SnapshotBuf>,
    time: u64,
}

impl ScheduledGraph {
    /// Creates a scheduled evolving graph. Panics if the schedule is empty or
    /// the snapshots disagree on the number of nodes.
    pub fn new(snapshots: Vec<AdjacencyList>) -> Self {
        assert!(
            !snapshots.is_empty(),
            "schedule must contain at least one snapshot"
        );
        let n = snapshots[0].num_nodes();
        assert!(
            snapshots.iter().all(|g| g.num_nodes() == n),
            "all snapshots must share the node set"
        );
        let snapshots = snapshots
            .iter()
            .map(|g| {
                let mut buf = SnapshotBuf::new();
                buf.copy_from_adjacency(g);
                buf
            })
            .collect();
        ScheduledGraph { snapshots, time: 0 }
    }

    /// Length of one period of the schedule.
    pub fn period(&self) -> usize {
        self.snapshots.len()
    }
}

impl EvolvingGraph for ScheduledGraph {
    fn num_nodes(&self) -> usize {
        self.snapshots[0].num_nodes()
    }

    fn advance(&mut self) -> &SnapshotBuf {
        let idx = (self.time % self.snapshots.len() as u64) as usize;
        self.time += 1;
        &self.snapshots[idx]
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_graph::generators;

    #[test]
    fn frozen_graph_returns_same_snapshot_forever() {
        let mut f = FrozenGraph::new(generators::cycle(5));
        assert_eq!(f.num_nodes(), 5);
        assert_eq!(f.time(), 0);
        let e0 = f.advance().num_edges();
        let e1 = f.advance().num_edges();
        assert_eq!(e0, 5);
        assert_eq!(e0, e1);
        assert_eq!(f.time(), 2);
        assert_eq!(f.graph().num_edges(), 5);
    }

    #[test]
    fn frozen_snapshot_preserves_neighbor_order_exactly() {
        let mut g = AdjacencyList::new(4);
        g.add_edge(2, 0);
        g.add_edge(0, 3);
        g.add_edge(1, 0);
        let mut f = FrozenGraph::new(g.clone());
        let snap = f.advance();
        for u in 0..4u32 {
            assert_eq!(snap.neighbors(u), g.neighbors(u), "node {u}");
        }
    }

    #[test]
    fn scheduled_graph_cycles_through_snapshots() {
        let a = generators::path(4); // 3 edges
        let b = generators::complete(4); // 6 edges
        let mut s = ScheduledGraph::new(vec![a, b]);
        assert_eq!(s.period(), 2);
        assert_eq!(s.advance().num_edges(), 3);
        assert_eq!(s.advance().num_edges(), 6);
        assert_eq!(s.advance().num_edges(), 3);
        assert_eq!(s.time(), 3);
    }

    #[test]
    #[should_panic]
    fn scheduled_graph_rejects_mismatched_node_sets() {
        ScheduledGraph::new(vec![generators::path(3), generators::path(4)]);
    }

    #[test]
    #[should_panic]
    fn scheduled_graph_rejects_empty_schedule() {
        ScheduledGraph::new(Vec::new());
    }
}
