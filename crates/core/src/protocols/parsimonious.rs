//! Parsimonious flooding: a node forwards the message only during the first
//! `active_rounds` rounds after it becomes informed, then falls silent
//! (Baumann, Crescenzi, Fraigniaud — reference \[4\] of the paper).
//!
//! On a *static* graph silent nodes are harmless (their neighbors are already
//! informed by the time they fall silent), so parsimonious flooding completes
//! exactly like plain flooding. On a *dynamic* graph a silent node can later
//! meet an uninformed one and fail to inform it — the protocol may stall —
//! which is precisely the phenomenon \[4\] studies and our dynamic tests
//! exhibit. The machine reports such stalls through
//! [`ProtocolMachine::can_progress`], so the driver stops early instead of
//! burning the round budget.

use super::state_machine::{run_machine, NodeState, ProtocolMachine};
use super::ProtocolResult;
use crate::evolving::EvolvingGraph;
use meg_graph::{visit_neighbors, Graph, Node, NodeSet};
use rand::Rng;

/// Per-node state of parsimonious flooding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParsimoniousState {
    /// The node has not received the message yet.
    Uninformed,
    /// The node holds the message and still forwards it.
    Active,
    /// The node holds the message but its activity window has expired.
    Silent,
}

impl NodeState for ParsimoniousState {
    const ALL: &'static [Self] = &[
        ParsimoniousState::Uninformed,
        ParsimoniousState::Active,
        ParsimoniousState::Silent,
    ];

    fn label(self) -> &'static str {
        match self {
            ParsimoniousState::Uninformed => "uninformed",
            ParsimoniousState::Active => "active",
            ParsimoniousState::Silent => "silent",
        }
    }

    fn is_covered(self) -> bool {
        !matches!(self, ParsimoniousState::Uninformed)
    }
}

/// The parsimonious flooding machine.
///
/// Draws **no** randomness: the process is deterministic given the snapshot
/// sequence. Completion: every node informed; permanent stall: every
/// informed node silent.
pub struct ParsimoniousMachine {
    active_rounds: u64,
    informed: NodeSet,
    // remaining_active[v] is meaningful only for informed nodes.
    remaining_active: Vec<u64>,
    newly: Vec<Node>,
    messages: u64,
    // Did the last step see at least one active node? Initially true so a
    // fresh machine never reports a stall before its first round.
    any_active: bool,
}

impl ParsimoniousMachine {
    /// Creates the machine with `source` informed and active.
    ///
    /// Panics if `active_rounds` is zero or `source` is out of range.
    pub fn new(n: usize, source: Node, active_rounds: u64) -> Self {
        assert!(
            active_rounds > 0,
            "a node must be active for at least one round"
        );
        assert!((source as usize) < n, "source out of range");
        let mut remaining_active = vec![0; n];
        remaining_active[source as usize] = active_rounds;
        ParsimoniousMachine {
            active_rounds,
            informed: NodeSet::singleton(n, source),
            remaining_active,
            newly: Vec::new(),
            messages: 0,
            any_active: true,
        }
    }
}

impl ProtocolMachine for ParsimoniousMachine {
    type State = ParsimoniousState;

    fn num_nodes(&self) -> usize {
        self.informed.universe()
    }

    fn state_of(&self, v: Node) -> ParsimoniousState {
        if !self.informed.contains(v) {
            ParsimoniousState::Uninformed
        } else if self.remaining_active[v as usize] > 0 {
            ParsimoniousState::Active
        } else {
            ParsimoniousState::Silent
        }
    }

    fn step<G, R>(&mut self, g: &G, _rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng,
    {
        let active_rounds = self.active_rounds;
        let Self {
            informed,
            remaining_active,
            newly,
            messages,
            ..
        } = self;
        newly.clear();
        let mut any_active = false;
        for u in informed.iter() {
            if remaining_active[u as usize] == 0 {
                continue;
            }
            any_active = true;
            remaining_active[u as usize] -= 1;
            visit_neighbors(g, u, |v| {
                *messages += 1;
                if !informed.contains(v) {
                    newly.push(v);
                }
            });
        }
        for &v in newly.iter() {
            if informed.insert(v) {
                remaining_active[v as usize] = active_rounds;
            }
        }
        self.any_active = any_active;
    }

    fn is_complete(&self) -> bool {
        self.informed.is_full()
    }

    fn can_progress(&self) -> bool {
        // Every informed node silent ⇒ the protocol can never make progress
        // again, regardless of future topology.
        self.any_active
    }

    fn coverage(&self) -> usize {
        self.informed.len()
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }
}

/// Runs parsimonious flooding from `source`.
///
/// `active_rounds` is the number of rounds a newly informed node keeps
/// forwarding (`u64::MAX` recovers plain flooding). The process draws no
/// randomness, so no RNG parameter is needed.
pub fn parsimonious_flood<M>(
    meg: &mut M,
    source: Node,
    active_rounds: u64,
    max_rounds: u64,
) -> ProtocolResult
where
    M: EvolvingGraph,
{
    let mut machine = ParsimoniousMachine::new(meg.num_nodes(), source, active_rounds);
    // The machine is RNG-free; feed the driver an inert mock.
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    run_machine(meg, &mut machine, max_rounds, &mut rng).into_protocol_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::{FrozenGraph, ScheduledGraph};
    use crate::flooding::flood_static;
    use meg_graph::{generators, AdjacencyList};

    #[test]
    fn on_static_graphs_it_matches_plain_flooding() {
        for g in [
            generators::path(8),
            generators::grid2d(4, 4),
            generators::complete(9),
        ] {
            let plain = flood_static(&g, 0);
            let mut meg = FrozenGraph::new(g);
            let pars = parsimonious_flood(&mut meg, 0, 1, 200);
            assert!(pars.completed);
            assert_eq!(Some(pars.rounds), plain.flooding_time());
            assert_eq!(pars.informed_per_round, plain.informed_per_round);
        }
    }

    #[test]
    fn unlimited_activity_is_plain_flooding_on_dynamic_graphs() {
        let a = AdjacencyList::from_edges(3, [(0, 1)]);
        let empty = AdjacencyList::new(3);
        let b = AdjacencyList::from_edges(3, [(0, 2)]);
        let mut meg = ScheduledGraph::new(vec![a.clone(), empty.clone(), b.clone()]);
        let r = parsimonious_flood(&mut meg, 0, u64::MAX, 100);
        assert!(r.completed);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn short_activity_can_stall_on_dynamic_graphs() {
        // Node 2's only edge (to the source) appears after the source has
        // already fallen silent.
        let a = AdjacencyList::from_edges(3, [(0, 1)]);
        let empty = AdjacencyList::new(3);
        let late = AdjacencyList::from_edges(3, [(0, 2)]);
        let mut meg = ScheduledGraph::new(vec![a, empty, late]);
        let r = parsimonious_flood(&mut meg, 0, 1, 100);
        assert!(!r.completed);
        assert_eq!(r.informed_count(), 2);
        // The run stops early once every informed node is silent.
        assert!(r.rounds < 100);
    }

    #[test]
    fn longer_activity_windows_save_the_same_schedule() {
        let a = AdjacencyList::from_edges(3, [(0, 1)]);
        let empty = AdjacencyList::new(3);
        let late = AdjacencyList::from_edges(3, [(0, 2)]);
        let mut meg = ScheduledGraph::new(vec![a, empty, late]);
        let r = parsimonious_flood(&mut meg, 0, 3, 100);
        assert!(r.completed);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn message_overhead_is_lower_than_plain_flooding() {
        // On a cycle, plain flooding keeps every informed node shouting every
        // round; parsimonious flooding with one active round only ever has the
        // two frontier nodes talking, yet completes in the same number of
        // rounds.
        let n = 20usize;
        let mut plain_meg = FrozenGraph::new(generators::cycle(n));
        let plain = super::super::probabilistic::probabilistic_flood(
            &mut plain_meg,
            0,
            1.0,
            100,
            &mut rand::rngs::mock::StepRng::new(0, 1),
        );
        let mut pars_meg = FrozenGraph::new(generators::cycle(n));
        let pars = parsimonious_flood(&mut pars_meg, 0, 1, 100);
        assert!(plain.completed && pars.completed);
        assert_eq!(plain.rounds, pars.rounds);
        assert!(pars.messages_sent < plain.messages_sent / 2);
    }

    #[test]
    #[should_panic]
    fn zero_active_rounds_rejected() {
        let mut meg = FrozenGraph::new(generators::path(3));
        parsimonious_flood(&mut meg, 0, 0, 10);
    }
}
