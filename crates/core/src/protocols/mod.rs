//! Spreading processes as per-node state machines.
//!
//! The paper motivates flooding as the baseline every dissemination protocol
//! is measured against; this module generalizes the protocol layer from
//! informed-set flooding variants to a per-node **state machine** —
//! [`state_machine::NodeState`] alphabets, [`state_machine::ProtocolMachine`]
//! transition rules driven by each snapshot's neighborhoods, and a
//! protocol-defined completion predicate — so epidemics, rumors and
//! adversaries run on the exact same chassis (and through the exact same
//! engine pipeline) as flooding:
//!
//! * [`probabilistic`] — each informed node forwards at each step only with
//!   probability `β` (probabilistic flooding, \[29\] in the paper; β = 1 is
//!   plain flooding);
//! * [`parsimonious`] — each node forwards only for the first `k` steps after
//!   becoming informed (parsimonious flooding, \[4\] in the paper);
//! * [`push_pull`] — classic randomized push–pull gossip, the standard
//!   point of comparison for complete-graph rumor spreading;
//! * [`epidemics`] — SIS/SIR/SIRS contagion with infection duration and
//!   re-susceptibility windows; completion is *extinction* ("no infectious
//!   nodes left"), and endemic runs are censored at the round budget;
//! * [`rumor`] — push-only rumor spreading per arXiv:1302.3828, the
//!   protocol whose sparse regime shows that dynamism *helps* spreading;
//! * [`byzantine`] — push–pull with tampering adversaries, measured by
//!   *correct*-information coverage.
//!
//! The dissemination variants reduce to plain flooding in a limiting case
//! (β = 1, k = ∞, fan-out = all neighbors), which is what their tests
//! verify; the state-machine ports are additionally pinned byte-identical
//! to the pre-refactor loops (same RNG draw order, same traces) by
//! differential tests here and in `meg-engine`.

pub mod byzantine;
pub mod epidemics;
pub mod parsimonious;
pub mod probabilistic;
pub mod push_pull;
pub mod rumor;
pub mod state_machine;

pub use byzantine::{ByzantineMachine, ByzantineState};
pub use epidemics::{EpidemicMachine, EpidemicState};
pub use parsimonious::{parsimonious_flood, ParsimoniousMachine, ParsimoniousState};
pub use probabilistic::{probabilistic_flood, FloodMachine, FloodState};
pub use push_pull::{push_pull_gossip, PushPullMachine};
pub use rumor::{rumor_spread, RumorMachine};
pub use state_machine::{run_machine, MachineResult, NodeState, ProtocolMachine, RunOutcome};

/// Outcome of a protocol run (shared by all protocol variants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolResult {
    /// `true` if every node was informed within the round budget.
    pub completed: bool,
    /// Rounds executed (equals the completion time when `completed`).
    pub rounds: u64,
    /// `informed_per_round[t]` is the number of informed nodes after `t`
    /// rounds (index 0 holds the initial count).
    pub informed_per_round: Vec<usize>,
    /// Total number of point-to-point message transmissions performed.
    pub messages_sent: u64,
}

impl ProtocolResult {
    /// Completion time if the protocol finished.
    pub fn completion_time(&self) -> Option<u64> {
        if self.completed {
            Some(self.rounds)
        } else {
            None
        }
    }

    /// Final number of informed nodes.
    pub fn informed_count(&self) -> usize {
        *self
            .informed_per_round
            .last()
            .expect("at least the initial count")
    }
}
