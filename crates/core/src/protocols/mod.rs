//! Protocol variants built on the flooding machinery.
//!
//! The paper motivates flooding as the baseline every dissemination protocol
//! is measured against. This module implements the most common alternatives
//! from the literature it cites so the benchmark harness can compare them on
//! the same evolving-graph models:
//!
//! * [`probabilistic`] — each informed node forwards at each step only with
//!   probability `β` (probabilistic flooding, \[29\] in the paper);
//! * [`parsimonious`] — each node forwards only for the first `k` steps after
//!   becoming informed (parsimonious flooding, \[4\] in the paper);
//! * [`push_pull`] — classic randomized push–pull gossip, the standard
//!   point of comparison for complete-graph rumor spreading.
//!
//! All three reduce to plain flooding in a limiting case (β = 1, k = ∞,
//! fan-out = all neighbors), which is what their tests verify.

pub mod parsimonious;
pub mod probabilistic;
pub mod push_pull;

pub use parsimonious::parsimonious_flood;
pub use probabilistic::probabilistic_flood;
pub use push_pull::push_pull_gossip;

/// Outcome of a protocol run (shared by all protocol variants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolResult {
    /// `true` if every node was informed within the round budget.
    pub completed: bool,
    /// Rounds executed (equals the completion time when `completed`).
    pub rounds: u64,
    /// `informed_per_round[t]` is the number of informed nodes after `t`
    /// rounds (index 0 holds the initial count).
    pub informed_per_round: Vec<usize>,
    /// Total number of point-to-point message transmissions performed.
    pub messages_sent: u64,
}

impl ProtocolResult {
    /// Completion time if the protocol finished.
    pub fn completion_time(&self) -> Option<u64> {
        if self.completed {
            Some(self.rounds)
        } else {
            None
        }
    }

    /// Final number of informed nodes.
    pub fn informed_count(&self) -> usize {
        *self
            .informed_per_round
            .last()
            .expect("at least the initial count")
    }
}
