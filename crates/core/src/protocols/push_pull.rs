//! Randomized push–pull gossip.
//!
//! At every round each node contacts **one** uniformly random current
//! neighbor; if either endpoint of the contact is informed, both become
//! informed (push if the caller is informed, pull if the callee is). This is
//! the classic rumor-spreading protocol whose `Θ(log n)` behaviour on
//! complete graphs is the usual point of comparison for flooding, and whose
//! per-round message count is `n` (one contact per node) instead of flooding's
//! `Σ deg`.

use super::state_machine::{random_contact, run_machine, ProtocolMachine};
use super::ProtocolResult;
use crate::evolving::EvolvingGraph;
use meg_graph::{Graph, Node, NodeSet};
use rand::Rng;

pub use super::probabilistic::FloodState;

/// The push–pull gossip machine.
///
/// Each round every node (informed or not) draws one uniformly random
/// current neighbor — exactly one `gen_range` per non-isolated node, in
/// ascending node order — and the pair exchanges the message in both
/// directions. Completion: every node informed.
pub struct PushPullMachine {
    informed: NodeSet,
    newly: Vec<Node>,
    scratch: Vec<Node>,
    messages: u64,
}

impl PushPullMachine {
    /// Creates the machine with `source` informed.
    ///
    /// Panics if `source` is out of range.
    pub fn new(n: usize, source: Node) -> Self {
        assert!((source as usize) < n, "source out of range");
        PushPullMachine {
            informed: NodeSet::singleton(n, source),
            newly: Vec::new(),
            scratch: Vec::new(),
            messages: 0,
        }
    }
}

impl ProtocolMachine for PushPullMachine {
    type State = FloodState;

    fn num_nodes(&self) -> usize {
        self.informed.universe()
    }

    fn state_of(&self, v: Node) -> FloodState {
        if self.informed.contains(v) {
            FloodState::Informed
        } else {
            FloodState::Uninformed
        }
    }

    fn step<G, R>(&mut self, g: &G, rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng,
    {
        let n = self.informed.universe();
        let Self {
            informed,
            newly,
            scratch,
            messages,
        } = self;
        newly.clear();
        for u in 0..n as Node {
            let Some(v) = random_contact(g, u, scratch, rng) else {
                continue;
            };
            *messages += 1;
            let u_informed = informed.contains(u);
            let v_informed = informed.contains(v);
            if u_informed && !v_informed {
                newly.push(v); // push
            } else if v_informed && !u_informed {
                newly.push(u); // pull
            }
        }
        for &v in newly.iter() {
            informed.insert(v);
        }
    }

    fn is_complete(&self) -> bool {
        self.informed.is_full()
    }

    fn coverage(&self) -> usize {
        self.informed.len()
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }
}

/// Runs push–pull gossip from `source` for at most `max_rounds` rounds.
pub fn push_pull_gossip<M, R>(
    meg: &mut M,
    source: Node,
    max_rounds: u64,
    rng: &mut R,
) -> ProtocolResult
where
    M: EvolvingGraph,
    R: Rng,
{
    let mut machine = PushPullMachine::new(meg.num_nodes(), source);
    run_machine(meg, &mut machine, max_rounds, rng).into_protocol_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::FrozenGraph;
    use meg_graph::{generators, AdjacencyList};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn completes_on_a_clique_in_logarithmic_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let n = 256usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let r = push_pull_gossip(&mut meg, 0, 200, &mut rng);
        assert!(r.completed);
        // Push–pull on K_n finishes in Θ(log n) rounds; allow a wide margin.
        assert!(r.rounds >= 4, "rounds {}", r.rounds);
        assert!(r.rounds <= 40, "rounds {}", r.rounds);
    }

    #[test]
    fn per_round_message_count_is_at_most_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 64usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let r = push_pull_gossip(&mut meg, 0, 100, &mut rng);
        assert!(r.completed);
        assert!(r.messages_sent <= r.rounds * n as u64);
    }

    #[test]
    fn monotone_and_completes_on_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut meg = FrozenGraph::new(generators::path(12));
        let r = push_pull_gossip(&mut meg, 0, 10_000, &mut rng);
        assert!(r.completed);
        // On a path, each endpoint of the informed segment advances by at most
        // one per round, so completion needs at least n-1 ... /2 rounds? The
        // informed segment grows from one end only (source 0), at most one new
        // node per round via push or pull.
        assert!(r.rounds >= 11);
        for w in r.informed_per_round.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn isolated_nodes_prevent_completion() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = AdjacencyList::from_edges(4, [(0, 1), (1, 2)]);
        let mut meg = FrozenGraph::new(g);
        let r = push_pull_gossip(&mut meg, 0, 50, &mut rng);
        assert!(!r.completed);
        assert_eq!(r.informed_count(), 3);
    }

    #[test]
    fn gossip_uses_fewer_messages_than_flooding_on_dense_graphs() {
        // On K_{64,64} flooding needs 2 rounds but its second round has 65
        // informed nodes each shouting to 64 neighbors (≈ 4200 messages);
        // push–pull sends only n = 128 contacts per round for O(log n) rounds.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::complete_bipartite(64, 64);
        let mut gossip_meg = FrozenGraph::new(g.clone());
        let gossip = push_pull_gossip(&mut gossip_meg, 0, 1000, &mut rng);
        let mut flood_meg = FrozenGraph::new(g);
        let flood = super::super::probabilistic::probabilistic_flood(
            &mut flood_meg,
            0,
            1.0,
            1000,
            &mut rng,
        );
        assert!(gossip.completed && flood.completed);
        assert!(flood.rounds <= gossip.rounds);
        assert!(gossip.messages_sent < flood.messages_sent);
    }
}
