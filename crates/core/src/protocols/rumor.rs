//! Push-only rumor spreading, after Clementi, Crescenzi, Doerr, Fraigniaud,
//! Pasquale, Silvestri, "Rumor Spreading in Random Evolving Graphs"
//! (arXiv:1302.3828).
//!
//! Each round, every *informed* node picks one uniformly random current
//! neighbor and pushes the rumor to it. No pull: an uninformed node can
//! only wait to be picked. On a *static* sparse `G(n, p)` this is slow —
//! low-degree nodes wait `Θ(np)` rounds to be chosen by their informed
//! neighbor, and below the connectivity threshold isolated nodes are never
//! reached at all. On the *evolving* `G(n, p)` of the same expected density
//! the neighborhoods re-randomize every round, so every node keeps getting
//! fresh chances: the paper shows `O(log n)` rounds w.h.p. for any
//! `p̂ = Ω(1/n)` — **dynamism helps**. The engine's `rumor_dynamism`
//! builtin reproduces exactly this comparison and the statistical gates in
//! `meg-engine` assert the direction across seeds.

use super::state_machine::{random_contact, run_machine, ProtocolMachine};
use super::ProtocolResult;
use crate::evolving::EvolvingGraph;
use meg_graph::{Graph, Node, NodeSet};
use rand::Rng;

pub use super::probabilistic::FloodState;

/// The push-only rumor machine.
///
/// Each round every informed node, in ascending order, draws one uniformly
/// random current neighbor (one `gen_range` per non-isolated informed
/// node) and pushes the rumor. Completion: every node informed.
pub struct RumorMachine {
    informed: NodeSet,
    newly: Vec<Node>,
    scratch: Vec<Node>,
    messages: u64,
}

impl RumorMachine {
    /// Creates the machine with `source` informed.
    ///
    /// Panics if `source` is out of range.
    pub fn new(n: usize, source: Node) -> Self {
        assert!((source as usize) < n, "source out of range");
        RumorMachine {
            informed: NodeSet::singleton(n, source),
            newly: Vec::new(),
            scratch: Vec::new(),
            messages: 0,
        }
    }
}

impl ProtocolMachine for RumorMachine {
    type State = FloodState;

    fn num_nodes(&self) -> usize {
        self.informed.universe()
    }

    fn state_of(&self, v: Node) -> FloodState {
        if self.informed.contains(v) {
            FloodState::Informed
        } else {
            FloodState::Uninformed
        }
    }

    fn step<G, R>(&mut self, g: &G, rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng,
    {
        let Self {
            informed,
            newly,
            scratch,
            messages,
        } = self;
        newly.clear();
        for u in informed.iter() {
            let Some(v) = random_contact(g, u, scratch, rng) else {
                continue;
            };
            *messages += 1;
            if !informed.contains(v) {
                newly.push(v);
            }
        }
        for &v in newly.iter() {
            informed.insert(v);
        }
    }

    fn is_complete(&self) -> bool {
        self.informed.is_full()
    }

    fn coverage(&self) -> usize {
        self.informed.len()
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }
}

/// Runs push-only rumor spreading from `source` for at most `max_rounds`
/// rounds.
pub fn rumor_spread<M, R>(meg: &mut M, source: Node, max_rounds: u64, rng: &mut R) -> ProtocolResult
where
    M: EvolvingGraph,
    R: Rng,
{
    let mut machine = RumorMachine::new(meg.num_nodes(), source);
    run_machine(meg, &mut machine, max_rounds, rng).into_protocol_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::FrozenGraph;
    use meg_graph::{generators, AdjacencyList};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn completes_on_a_clique_in_logarithmic_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 128usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let r = rumor_spread(&mut meg, 0, 500, &mut rng);
        assert!(r.completed);
        assert!(r.rounds >= 5, "rounds {}", r.rounds);
        assert!(r.rounds <= 60, "rounds {}", r.rounds);
    }

    #[test]
    fn push_only_sends_at_most_one_message_per_informed_node() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 32usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let r = rumor_spread(&mut meg, 0, 100, &mut rng);
        assert!(r.completed);
        // Σ_t informed(t) bounds the pushes; crude upper bound n per round.
        assert!(r.messages_sent <= r.rounds * n as u64);
    }

    #[test]
    fn uninformed_nodes_cannot_pull() {
        // Star with an informed center would finish in one round under
        // push–pull; push-only from a *leaf* must first wait for the leaf
        // to push to the center (its only neighbor), then the center
        // coupon-collects the remaining leaves.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut meg = FrozenGraph::new(generators::star(8));
        let r = rumor_spread(&mut meg, 1, 10_000, &mut rng);
        assert!(r.completed);
        assert!(
            r.rounds >= 8,
            "push-only on a star needs coupon collection, got {}",
            r.rounds
        );
    }

    #[test]
    fn isolated_nodes_are_never_reached() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = AdjacencyList::from_edges(4, [(0, 1), (1, 2)]);
        let mut meg = FrozenGraph::new(g);
        let r = rumor_spread(&mut meg, 0, 50, &mut rng);
        assert!(!r.completed);
        assert_eq!(r.informed_count(), 3);
        assert_eq!(r.rounds, 50, "censored at the budget");
    }
}
