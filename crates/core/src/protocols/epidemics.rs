//! SIS/SIR/SIRS epidemics on evolving graphs.
//!
//! The compartmental contagion family, run on the same snapshot sequence as
//! flooding: each round every *infectious* node exposes all of its current
//! neighbors, and each exposed *susceptible* node becomes infectious with
//! the contagion probability (at most once per round, whoever exposes it).
//! An infection lasts `infection_rounds` rounds, after which the node
//! recovers into the protocol's immunity regime:
//!
//! * **SIR** (`immunity = None`): recovery is permanent — the node is
//!   removed from the process. The epidemic *always* goes extinct, and the
//!   interesting observable is the final size (how many nodes were ever
//!   infected).
//! * **SIS** (`immunity = Some(0)`): the node is immediately susceptible
//!   again. Above the epidemic threshold the process is *endemic* — it
//!   legitimately never completes, and a run is **censored** at the round
//!   budget rather than failed.
//! * **SIRS** (`immunity = Some(w)`, `w > 0`): the node is immune for `w`
//!   rounds, then susceptible again — the general re-susceptibility window.
//!
//! Completion is "no infectious nodes left" — *not* "everyone reached",
//! which is what distinguishes epidemics from every dissemination protocol
//! in this module and why the state-machine trait lets each protocol define
//! its own predicate.

use super::state_machine::{NodeState, ProtocolMachine};
use meg_graph::{visit_neighbors, Graph, Node, NodeSet};
use rand::Rng;

/// Compartment of a node in an epidemic, as exposed to generic harnesses.
///
/// (Internally the machine also tracks per-node timers; `Recovered` covers
/// both the temporarily immune and the permanently removed.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpidemicState {
    /// The node can be infected.
    Susceptible,
    /// The node is infected and transmitting.
    Infectious,
    /// The node recovered: permanently removed (SIR) or temporarily
    /// immune (SIRS).
    Recovered,
}

impl NodeState for EpidemicState {
    const ALL: &'static [Self] = &[
        EpidemicState::Susceptible,
        EpidemicState::Infectious,
        EpidemicState::Recovered,
    ];

    fn label(self) -> &'static str {
        match self {
            EpidemicState::Susceptible => "susceptible",
            EpidemicState::Infectious => "infectious",
            EpidemicState::Recovered => "recovered",
        }
    }

    fn is_covered(self) -> bool {
        // A node counts once it carries (or carried) the infection. The
        // machine overrides `coverage` with its ever-infected set, which
        // also covers SIS nodes that are susceptible *again*.
        !matches!(self, EpidemicState::Susceptible)
    }
}

/// Per-node compartment with its timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Health {
    Susceptible,
    /// Infected; transmits for `left` more rounds (including this one).
    Infectious {
        left: u64,
    },
    /// Temporarily immune for `left` more rounds (SIRS window).
    Immune {
        left: u64,
    },
    /// Permanently removed (SIR).
    Removed,
}

/// The SIS/SIR/SIRS epidemic machine.
pub struct EpidemicMachine {
    contagion: f64,
    infection_rounds: u64,
    /// `None` = permanent removal (SIR); `Some(w)` = immune for `w` rounds,
    /// then susceptible again (`w = 0` is classic SIS).
    immunity: Option<u64>,
    health: Vec<Health>,
    ever_infected: NodeSet,
    pending: Vec<Node>,
    pending_set: NodeSet,
    infectious_count: usize,
    messages: u64,
    infections: u64,
    recoveries: u64,
}

impl EpidemicMachine {
    /// Creates the machine with `source` infectious (patient zero).
    ///
    /// Panics if `contagion` ∉ \[0, 1\], `infection_rounds` is zero, or
    /// `source` is out of range.
    pub fn new(
        n: usize,
        source: Node,
        contagion: f64,
        infection_rounds: u64,
        immunity: Option<u64>,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&contagion),
            "contagion={contagion} outside [0, 1]"
        );
        assert!(
            infection_rounds > 0,
            "an infection must last at least one round"
        );
        assert!((source as usize) < n, "source out of range");
        let mut health = vec![Health::Susceptible; n];
        health[source as usize] = Health::Infectious {
            left: infection_rounds,
        };
        EpidemicMachine {
            contagion,
            infection_rounds,
            immunity,
            health,
            ever_infected: NodeSet::singleton(n, source),
            pending: Vec::new(),
            pending_set: NodeSet::new(n),
            infectious_count: 1,
            messages: 0,
            // The seed counts as the first infection.
            infections: 1,
            recoveries: 0,
        }
    }

    /// Number of nodes ever infected (the epidemic's final size once the
    /// process went extinct).
    pub fn final_size(&self) -> usize {
        self.ever_infected.len()
    }

    /// Number of currently infectious nodes.
    pub fn infectious_count(&self) -> usize {
        self.infectious_count
    }

    /// Total infection events, including the initial seed.
    pub fn infections(&self) -> u64 {
        self.infections
    }

    /// Total recovery events (infectious → immune/removed/susceptible).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

impl ProtocolMachine for EpidemicMachine {
    type State = EpidemicState;

    fn num_nodes(&self) -> usize {
        self.health.len()
    }

    fn state_of(&self, v: Node) -> EpidemicState {
        match self.health[v as usize] {
            Health::Susceptible => EpidemicState::Susceptible,
            Health::Infectious { .. } => EpidemicState::Infectious,
            Health::Immune { .. } | Health::Removed => EpidemicState::Recovered,
        }
    }

    fn step<G, R>(&mut self, g: &G, rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng,
    {
        let n = self.health.len();
        let contagion = self.contagion;
        let Self {
            health,
            pending,
            pending_set,
            messages,
            ..
        } = self;

        // Phase 1: transmissions, evaluated against the round-start
        // compartments. Each infectious node exposes its whole current
        // neighborhood; a susceptible node is infected at most once per
        // round (the first successful exposure wins and later exposures
        // draw no randomness for it).
        pending.clear();
        pending_set.clear();
        for u in 0..n as Node {
            if !matches!(health[u as usize], Health::Infectious { .. }) {
                continue;
            }
            visit_neighbors(g, u, |v| {
                *messages += 1;
                if matches!(health[v as usize], Health::Susceptible)
                    && !pending_set.contains(v)
                    && rng.gen_bool(contagion)
                {
                    pending_set.insert(v);
                    pending.push(v);
                }
            });
        }

        // Phase 2: timers on the round-start infectious/immune nodes.
        for u in 0..n {
            match self.health[u] {
                Health::Infectious { left } => {
                    if left <= 1 {
                        self.recoveries += 1;
                        self.infectious_count -= 1;
                        self.health[u] = match self.immunity {
                            None => Health::Removed,
                            Some(0) => Health::Susceptible,
                            Some(w) => Health::Immune { left: w },
                        };
                    } else {
                        self.health[u] = Health::Infectious { left: left - 1 };
                    }
                }
                Health::Immune { left } => {
                    self.health[u] = if left <= 1 {
                        Health::Susceptible
                    } else {
                        Health::Immune { left: left - 1 }
                    };
                }
                Health::Susceptible | Health::Removed => {}
            }
        }

        // Phase 3: this round's infections become infectious for the next.
        for i in 0..self.pending.len() {
            let v = self.pending[i];
            self.health[v as usize] = Health::Infectious {
                left: self.infection_rounds,
            };
            self.ever_infected.insert(v);
            self.infectious_count += 1;
            self.infections += 1;
        }
    }

    fn is_complete(&self) -> bool {
        // Extinction: no infectious nodes left. NOT "everyone reached".
        self.infectious_count == 0
    }

    fn coverage(&self) -> usize {
        self.ever_infected.len()
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::{EvolvingGraph, FrozenGraph};
    use crate::protocols::state_machine::{run_machine, RunOutcome};
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sir_with_certain_contagion_sweeps_a_path_then_goes_extinct() {
        let n = 10usize;
        let mut meg = FrozenGraph::new(generators::path(n));
        let mut m = EpidemicMachine::new(n, 0, 1.0, 1, None);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = run_machine(&mut meg, &mut m, 1000, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(m.final_size(), n);
        // The wave moves one hop per round and dies one round after the
        // last infection.
        assert_eq!(r.rounds, n as u64);
        assert_eq!(m.infections(), n as u64);
        assert_eq!(m.recoveries(), n as u64);
    }

    #[test]
    fn zero_contagion_dies_at_the_source() {
        let mut meg = FrozenGraph::new(generators::complete(8));
        let mut m = EpidemicMachine::new(8, 0, 0.0, 3, None);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = run_machine(&mut meg, &mut m, 100, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.rounds, 3, "patient zero transmits for its full window");
        assert_eq!(m.final_size(), 1);
        assert_eq!(m.recoveries(), 1);
    }

    #[test]
    fn endemic_sis_is_censored_at_the_round_cap_not_an_error() {
        // Certain contagion + immediate re-susceptibility on a clique: the
        // infection can never go extinct. The driver must cut the run at
        // the budget and say so.
        let mut meg = FrozenGraph::new(generators::complete(12));
        let mut m = EpidemicMachine::new(12, 0, 1.0, 2, Some(0));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = run_machine(&mut meg, &mut m, 50, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Censored);
        assert_eq!(r.rounds, 50);
        assert!(m.infectious_count() > 0);
        assert!(!r.into_protocol_result().completed);
    }

    #[test]
    fn sirs_window_delays_resusceptibility() {
        // One round of immunity: after recovering, a node cannot be
        // re-infected on the immediately following round.
        let mut meg = FrozenGraph::new(generators::complete(2));
        let mut m = EpidemicMachine::new(2, 0, 1.0, 1, Some(1));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Round 1: node 0 infects node 1, then recovers into immunity.
        let s = meg.advance();
        m.step(s, &mut rng);
        assert_eq!(m.state_of(0), EpidemicState::Recovered);
        assert_eq!(m.state_of(1), EpidemicState::Infectious);
        // Round 2: node 1 exposes node 0, but node 0 is immune this round.
        let s = meg.advance();
        m.step(s, &mut rng);
        assert_eq!(m.state_of(0), EpidemicState::Susceptible);
        assert_eq!(m.state_of(1), EpidemicState::Recovered);
    }

    #[test]
    fn a_node_is_infected_at_most_once_per_round() {
        // A star center with certain contagion: all leaves expose the
        // center... rather, many infectious leaves expose the one
        // susceptible center; it must be infected exactly once.
        let n = 6usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let mut m = EpidemicMachine::new(n, 0, 1.0, 10, Some(0));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..4 {
            let s = meg.advance();
            m.step(s, &mut rng);
            let infectious = (0..n as Node)
                .filter(|&v| m.state_of(v) == EpidemicState::Infectious)
                .count();
            assert_eq!(infectious, m.infectious_count());
            assert!(m.infectious_count() <= n);
        }
        assert_eq!(m.final_size(), n);
        // n nodes infected once each: the seed plus n-1 transmissions.
        assert_eq!(m.infections(), n as u64);
    }
}
