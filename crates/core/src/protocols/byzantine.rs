//! Byzantine/tampering nodes in randomized gossip.
//!
//! A fixed set of Byzantine nodes participates in push–pull gossip but
//! spreads a *tampered* version of the message. Honest nodes adopt the
//! first version they receive and relay it faithfully — a node that first
//! hears the tampered rumor keeps spreading the tampered rumor. The process
//! completes when no node is uninformed; the measured outcome is the
//! **correct-information coverage**: the fraction of nodes holding the
//! *untampered* message, which is what an adversary degrades even when
//! "everyone heard something" (the SNIPPETS.md tampering exemplar).

use super::state_machine::{random_contact, NodeState, ProtocolMachine};
use meg_graph::{Graph, Node};
use rand::Rng;

/// What a node believes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineState {
    /// The node has heard nothing yet.
    Uninformed,
    /// The node holds (and relays) the correct message.
    Correct,
    /// The node holds (and relays) the tampered message.
    Tampered,
    /// The node is an adversary: always informed, always relays tampered
    /// content, never changes its mind.
    Byzantine,
}

impl NodeState for ByzantineState {
    const ALL: &'static [Self] = &[
        ByzantineState::Uninformed,
        ByzantineState::Correct,
        ByzantineState::Tampered,
        ByzantineState::Byzantine,
    ];

    fn label(self) -> &'static str {
        match self {
            ByzantineState::Uninformed => "uninformed",
            ByzantineState::Correct => "correct",
            ByzantineState::Tampered => "tampered",
            ByzantineState::Byzantine => "byzantine",
        }
    }

    fn is_covered(self) -> bool {
        !matches!(self, ByzantineState::Uninformed)
    }
}

/// Push–pull gossip with Byzantine tampering.
///
/// The contact model is exactly push–pull's (one uniformly random neighbor
/// per node per round, ascending order); the payload differs — Byzantine
/// and tampered nodes transmit the tampered version, correct nodes the
/// correct one, and an uninformed node adopts whatever reaches it first
/// (the first contact of the round wins).
pub struct ByzantineMachine {
    opinion: Vec<ByzantineState>,
    /// (node, adopts_correct) decided this round; first writer wins.
    newly: Vec<(Node, bool)>,
    pending: meg_graph::NodeSet,
    scratch: Vec<Node>,
    informed_count: usize,
    correct_count: usize,
    tampered_adoptions: u64,
    messages: u64,
}

impl ByzantineMachine {
    /// Creates the machine: `source` holds the correct message and
    /// `byzantine` adversaries are placed on the highest-indexed nodes
    /// (skipping `source`), clamped to `n - 1`.
    ///
    /// Panics if `source` is out of range.
    pub fn new(n: usize, source: Node, byzantine: usize) -> Self {
        assert!((source as usize) < n, "source out of range");
        let mut opinion = vec![ByzantineState::Uninformed; n];
        opinion[source as usize] = ByzantineState::Correct;
        let mut placed = 0usize;
        let budget = byzantine.min(n - 1);
        for v in (0..n).rev() {
            if placed == budget {
                break;
            }
            if v == source as usize {
                continue;
            }
            opinion[v] = ByzantineState::Byzantine;
            placed += 1;
        }
        ByzantineMachine {
            opinion,
            newly: Vec::new(),
            pending: meg_graph::NodeSet::new(n),
            scratch: Vec::new(),
            informed_count: 1 + placed,
            correct_count: 1,
            tampered_adoptions: 0,
            messages: 0,
        }
    }

    /// Number of nodes holding the *correct* message (the source included;
    /// Byzantine and tampered nodes excluded).
    pub fn correct_count(&self) -> usize {
        self.correct_count
    }

    /// Correct-information coverage as a fraction of all nodes.
    pub fn correct_fraction(&self) -> f64 {
        self.correct_count as f64 / self.opinion.len() as f64
    }

    /// Honest nodes that adopted the tampered message.
    pub fn tampered_adoptions(&self) -> u64 {
        self.tampered_adoptions
    }
}

/// Does a node in this state transmit, and is its payload correct?
fn payload(s: ByzantineState) -> Option<bool> {
    match s {
        ByzantineState::Uninformed => None,
        ByzantineState::Correct => Some(true),
        ByzantineState::Tampered | ByzantineState::Byzantine => Some(false),
    }
}

impl ProtocolMachine for ByzantineMachine {
    type State = ByzantineState;

    fn num_nodes(&self) -> usize {
        self.opinion.len()
    }

    fn state_of(&self, v: Node) -> ByzantineState {
        self.opinion[v as usize]
    }

    fn step<G, R>(&mut self, g: &G, rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng,
    {
        let n = self.opinion.len();
        let Self {
            opinion,
            newly,
            pending,
            scratch,
            informed_count,
            correct_count,
            tampered_adoptions,
            messages,
        } = self;
        newly.clear();
        pending.clear();
        for u in 0..n as Node {
            let Some(v) = random_contact(g, u, scratch, rng) else {
                continue;
            };
            *messages += 1;
            // Push: the caller's payload reaches v; pull: v's payload
            // reaches the caller. First delivery of the round wins.
            if let Some(correct) = payload(opinion[u as usize]) {
                if opinion[v as usize] == ByzantineState::Uninformed && pending.insert(v) {
                    newly.push((v, correct));
                }
            }
            if let Some(correct) = payload(opinion[v as usize]) {
                if opinion[u as usize] == ByzantineState::Uninformed && pending.insert(u) {
                    newly.push((u, correct));
                }
            }
        }
        for &(v, correct) in newly.iter() {
            opinion[v as usize] = if correct {
                *correct_count += 1;
                ByzantineState::Correct
            } else {
                *tampered_adoptions += 1;
                ByzantineState::Tampered
            };
            *informed_count += 1;
        }
    }

    fn is_complete(&self) -> bool {
        // Everyone has heard *something* — correct or not. The interesting
        // observable is then `correct_fraction`, not the round count.
        self.informed_count == self.opinion.len()
    }

    fn coverage(&self) -> usize {
        self.informed_count
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::FrozenGraph;
    use crate::protocols::state_machine::{run_machine, RunOutcome};
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_byzantine_nodes_is_plain_push_pull_with_full_correctness() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 64usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let mut m = ByzantineMachine::new(n, 0, 0);
        let r = run_machine(&mut meg, &mut m, 500, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(m.correct_count(), n);
        assert_eq!(m.tampered_adoptions(), 0);
        assert!((m.correct_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn byzantine_nodes_degrade_correct_coverage() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 64usize;
        let mut meg = FrozenGraph::new(generators::complete(n));
        let mut m = ByzantineMachine::new(n, 0, 16);
        let r = run_machine(&mut meg, &mut m, 500, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert!(m.tampered_adoptions() > 0, "16/64 adversaries never won");
        assert!(m.correct_count() < n - 16);
        // Correct coverage can never exceed total coverage.
        assert!(m.correct_count() <= m.coverage());
    }

    #[test]
    fn byzantine_count_is_clamped_and_skips_the_source() {
        let n = 5usize;
        let m = ByzantineMachine::new(n, 2, 100);
        assert_eq!(m.state_of(2), ByzantineState::Correct);
        let adversaries = (0..n as Node)
            .filter(|&v| m.state_of(v) == ByzantineState::Byzantine)
            .count();
        assert_eq!(adversaries, n - 1);
        assert!(m.is_complete(), "everyone starts informed when b = n - 1");
    }

    #[test]
    fn first_delivery_wins_and_is_sticky() {
        // Path 0-1-2 with node 2 Byzantine: node 1 will hear both versions
        // over time but keeps whichever arrived first; counts stay
        // consistent.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 3usize;
        let mut meg = FrozenGraph::new(generators::path(n));
        let mut m = ByzantineMachine::new(n, 0, 1);
        let r = run_machine(&mut meg, &mut m, 200, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        let mid = m.state_of(1);
        assert!(
            mid == ByzantineState::Correct || mid == ByzantineState::Tampered,
            "the middle node adopted one version"
        );
        assert_eq!(
            m.correct_count() + m.tampered_adoptions() as usize,
            2,
            "source + exactly one adoption decision for node 1"
        );
    }
}
