//! Probabilistic flooding: each informed node forwards at each round only
//! with probability β (reference \[29\] of the paper). β = 1 recovers plain
//! flooding, which is how the engine runs its baseline.

use super::state_machine::{run_machine, NodeState, ProtocolMachine};
use super::ProtocolResult;
use crate::evolving::EvolvingGraph;
use meg_graph::{visit_neighbors, Graph, Node, NodeSet};
use rand::Rng;

/// Per-node state of (probabilistic) flooding: informed or not.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FloodState {
    /// The node has not received the message yet.
    Uninformed,
    /// The node holds the message and forwards it (with probability β).
    Informed,
}

impl NodeState for FloodState {
    const ALL: &'static [Self] = &[FloodState::Uninformed, FloodState::Informed];

    fn label(self) -> &'static str {
        match self {
            FloodState::Uninformed => "uninformed",
            FloodState::Informed => "informed",
        }
    }

    fn is_covered(self) -> bool {
        matches!(self, FloodState::Informed)
    }
}

/// The (probabilistic) flooding machine.
///
/// Each round every informed node broadcasts to its whole current
/// neighborhood with probability β (always, when β = 1 — in which case the
/// machine draws **no** randomness, byte-compatible with the historical
/// plain-flooding path). Completion: every node informed.
pub struct FloodMachine {
    beta: f64,
    informed: NodeSet,
    newly: Vec<Node>,
    messages: u64,
}

impl FloodMachine {
    /// Creates the machine with `source` informed.
    ///
    /// Panics if β ∉ \[0, 1\] or `source` is out of range.
    pub fn new(n: usize, source: Node, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta={beta} outside [0, 1]");
        assert!((source as usize) < n, "source out of range");
        FloodMachine {
            beta,
            informed: NodeSet::singleton(n, source),
            newly: Vec::new(),
            messages: 0,
        }
    }
}

impl ProtocolMachine for FloodMachine {
    type State = FloodState;

    fn num_nodes(&self) -> usize {
        self.informed.universe()
    }

    fn state_of(&self, v: Node) -> FloodState {
        if self.informed.contains(v) {
            FloodState::Informed
        } else {
            FloodState::Uninformed
        }
    }

    fn step<G, R>(&mut self, g: &G, rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng,
    {
        let beta = self.beta;
        let Self {
            informed,
            newly,
            messages,
            ..
        } = self;
        newly.clear();
        for u in informed.iter() {
            // β = 1 must not consume randomness (plain flooding is
            // RNG-free); `gen_bool` is only reached when β < 1.
            if beta < 1.0 && !rng.gen_bool(beta) {
                continue;
            }
            visit_neighbors(g, u, |v| {
                *messages += 1;
                if !informed.contains(v) {
                    newly.push(v);
                }
            });
        }
        for &v in newly.iter() {
            informed.insert(v);
        }
    }

    fn is_complete(&self) -> bool {
        self.informed.is_full()
    }

    fn coverage(&self) -> usize {
        self.informed.len()
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }
}

/// Runs probabilistic flooding from `source` with forwarding probability
/// `beta` for at most `max_rounds` rounds.
///
/// `beta = 1.0` is plain flooding and consumes no randomness.
pub fn probabilistic_flood<M, R>(
    meg: &mut M,
    source: Node,
    beta: f64,
    max_rounds: u64,
    rng: &mut R,
) -> ProtocolResult
where
    M: EvolvingGraph,
    R: Rng,
{
    let mut machine = FloodMachine::new(meg.num_nodes(), source, beta);
    run_machine(meg, &mut machine, max_rounds, rng).into_protocol_result()
}

#[cfg(test)]
pub(crate) mod legacy {
    //! The pre-refactor flooding loop, verbatim — kept as the reference
    //! implementation for the differential tests that prove the
    //! state-machine port is byte-identical (same RNG draw order, same
    //! message counts, same informed-per-round trace).

    use super::*;

    /// The historical `probabilistic_flood` body, before the state-machine
    /// refactor.
    pub fn probabilistic_flood_reference<M, R>(
        meg: &mut M,
        source: Node,
        beta: f64,
        max_rounds: u64,
        rng: &mut R,
    ) -> ProtocolResult
    where
        M: EvolvingGraph,
        R: Rng,
    {
        assert!((0.0..=1.0).contains(&beta), "beta={beta} outside [0, 1]");
        let n = meg.num_nodes();
        assert!((source as usize) < n, "source out of range");
        let mut informed = NodeSet::singleton(n, source);
        let mut informed_per_round = vec![informed.len()];
        let mut messages = 0u64;
        let mut rounds = 0u64;
        let mut completed = informed.is_full();
        let mut newly: Vec<Node> = Vec::new();
        while rounds < max_rounds && !completed {
            let snapshot = meg.advance();
            newly.clear();
            for u in informed.iter() {
                if beta < 1.0 && !rng.gen_bool(beta) {
                    continue;
                }
                visit_neighbors(snapshot, u, |v| {
                    messages += 1;
                    if !informed.contains(v) {
                        newly.push(v);
                    }
                });
            }
            for &v in &newly {
                informed.insert(v);
            }
            rounds += 1;
            informed_per_round.push(informed.len());
            completed = informed.is_full();
        }
        ProtocolResult {
            completed,
            rounds,
            informed_per_round,
            messages_sent: messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::{FrozenGraph, ScheduledGraph};
    use crate::flooding::flood_static;
    use meg_graph::{generators, AdjacencyList};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn beta_one_matches_plain_flooding() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for g in [
            generators::path(10),
            generators::cycle(9),
            generators::grid2d(4, 5),
            generators::complete(8),
        ] {
            let plain = flood_static(&g, 0);
            let mut meg = FrozenGraph::new(g);
            let prob = probabilistic_flood(&mut meg, 0, 1.0, 500, &mut rng);
            assert!(prob.completed);
            assert_eq!(Some(prob.rounds), plain.flooding_time());
            assert_eq!(prob.informed_per_round, plain.informed_per_round);
        }
    }

    #[test]
    fn machine_is_byte_identical_to_the_legacy_loop() {
        // Differential check at the core level: the machine and the
        // pre-refactor reference produce the same trace from the same RNG
        // stream, including the β < 1 draw-order-sensitive path.
        for beta in [1.0, 0.7, 0.3] {
            for seed in 0..8u64 {
                let a = AdjacencyList::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
                let b = AdjacencyList::from_edges(5, [(2, 3), (0, 4)]);
                let mut meg_new = ScheduledGraph::new(vec![a.clone(), b.clone()]);
                let mut meg_old = ScheduledGraph::new(vec![a, b]);
                let mut rng_new = ChaCha8Rng::seed_from_u64(seed);
                let mut rng_old = ChaCha8Rng::seed_from_u64(seed);
                let new = probabilistic_flood(&mut meg_new, 0, beta, 40, &mut rng_new);
                let old =
                    legacy::probabilistic_flood_reference(&mut meg_old, 0, beta, 40, &mut rng_old);
                assert_eq!(new, old, "beta={beta} seed={seed}");
                assert_eq!(
                    rng_new.gen::<u64>(),
                    rng_old.gen::<u64>(),
                    "RNG cursor drifted"
                );
            }
        }
    }

    #[test]
    fn beta_zero_never_spreads() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut meg = FrozenGraph::new(generators::complete(6));
        let r = probabilistic_flood(&mut meg, 0, 0.0, 50, &mut rng);
        assert!(!r.completed);
        assert_eq!(r.informed_count(), 1);
        assert_eq!(r.messages_sent, 0);
    }

    #[test]
    fn lower_beta_is_slower_but_still_completes_on_cliques() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 32usize;
        let mut fast_meg = FrozenGraph::new(generators::complete(n));
        let fast = probabilistic_flood(&mut fast_meg, 0, 1.0, 1000, &mut rng);
        let mut slow_meg = FrozenGraph::new(generators::complete(n));
        let slow = probabilistic_flood(&mut slow_meg, 0, 0.2, 1000, &mut rng);
        assert!(fast.completed && slow.completed);
        assert!(slow.rounds >= fast.rounds);
    }

    #[test]
    fn message_count_scales_with_beta() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 24usize;
        let mut meg_full = FrozenGraph::new(generators::complete(n));
        let full = probabilistic_flood(&mut meg_full, 0, 1.0, 100, &mut rng);
        let mut meg_half = FrozenGraph::new(generators::complete(n));
        let half = probabilistic_flood(&mut meg_half, 0, 0.5, 100, &mut rng);
        // Fewer transmissions per round on average (completion may take
        // longer, but per-round cost is halved in expectation).
        let full_rate = full.messages_sent as f64 / full.rounds as f64;
        let half_rate = half.messages_sent as f64 / half.rounds as f64;
        assert!(half_rate < full_rate);
    }

    #[test]
    fn completion_time_accessor() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut meg = FrozenGraph::new(generators::path(4));
        let r = probabilistic_flood(&mut meg, 0, 1.0, 100, &mut rng);
        assert_eq!(r.completion_time(), Some(r.rounds));
        let mut meg = FrozenGraph::new(AdjacencyList::new(3));
        let r = probabilistic_flood(&mut meg, 0, 1.0, 5, &mut rng);
        assert_eq!(r.completion_time(), None);
    }
}
