//! Probabilistic flooding: every informed node, at every round, forwards the
//! message to all of its current neighbors with probability `beta`
//! (independently per node per round).
//!
//! `beta = 1` is exactly plain flooding; smaller `beta` trades completion time
//! for message overhead, which is why it is the standard "cheap" variant in
//! the unstructured-network literature the paper cites.

use super::ProtocolResult;
use crate::evolving::EvolvingGraph;
use meg_graph::{visit_neighbors, Node, NodeSet};
use rand::Rng;

/// Runs probabilistic flooding from `source` with forwarding probability
/// `beta` for at most `max_rounds` rounds.
pub fn probabilistic_flood<M, R>(
    meg: &mut M,
    source: Node,
    beta: f64,
    max_rounds: u64,
    rng: &mut R,
) -> ProtocolResult
where
    M: EvolvingGraph,
    R: Rng,
{
    assert!((0.0..=1.0).contains(&beta), "beta={beta} outside [0, 1]");
    let n = meg.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut informed = NodeSet::singleton(n, source);
    let mut informed_per_round = vec![informed.len()];
    let mut messages = 0u64;
    let mut rounds = 0u64;
    let mut completed = informed.is_full();
    // Reused across rounds: no per-round allocation after warm-up.
    let mut newly: Vec<Node> = Vec::new();
    while rounds < max_rounds && !completed {
        let snapshot = meg.advance();
        newly.clear();
        for u in informed.iter() {
            if beta < 1.0 && !rng.gen_bool(beta) {
                continue;
            }
            visit_neighbors(snapshot, u, |v| {
                messages += 1;
                if !informed.contains(v) {
                    newly.push(v);
                }
            });
        }
        for &v in &newly {
            informed.insert(v);
        }
        rounds += 1;
        informed_per_round.push(informed.len());
        completed = informed.is_full();
    }
    ProtocolResult {
        completed,
        rounds,
        informed_per_round,
        messages_sent: messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::FrozenGraph;
    use crate::flooding::flood_static;
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn beta_one_matches_plain_flooding() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = generators::grid2d(6, 6);
        let plain = flood_static(&g, 0);
        let mut meg = FrozenGraph::new(g);
        let prob = probabilistic_flood(&mut meg, 0, 1.0, 200, &mut rng);
        assert!(prob.completed);
        assert_eq!(Some(prob.rounds), plain.flooding_time());
        assert_eq!(
            prob.informed_per_round, plain.informed_per_round,
            "β = 1 must reproduce the flooding trajectory exactly"
        );
    }

    #[test]
    fn beta_zero_never_spreads() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut meg = FrozenGraph::new(generators::complete(10));
        let r = probabilistic_flood(&mut meg, 0, 0.0, 50, &mut rng);
        assert!(!r.completed);
        assert_eq!(r.informed_count(), 1);
        assert_eq!(r.messages_sent, 0);
    }

    #[test]
    fn lower_beta_is_slower_but_still_completes_on_cliques() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut fast = FrozenGraph::new(generators::complete(30));
        let mut slow = FrozenGraph::new(generators::complete(30));
        let r_fast = probabilistic_flood(&mut fast, 0, 1.0, 500, &mut rng);
        let r_slow = probabilistic_flood(&mut slow, 0, 0.2, 500, &mut rng);
        assert!(r_fast.completed && r_slow.completed);
        assert!(r_slow.rounds >= r_fast.rounds);
    }

    #[test]
    fn message_count_scales_with_beta() {
        // On a fixed dense graph with a round budget too small to finish,
        // fewer activations mean fewer transmissions.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut a = FrozenGraph::new(generators::complete(40));
        let mut b = FrozenGraph::new(generators::complete(40));
        let full = probabilistic_flood(&mut a, 0, 1.0, 1, &mut rng);
        let half = probabilistic_flood(&mut b, 0, 0.5, 1, &mut rng);
        assert!(half.messages_sent <= full.messages_sent);
    }

    #[test]
    fn completion_time_accessor() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut meg = FrozenGraph::new(generators::path(4));
        let r = probabilistic_flood(&mut meg, 0, 1.0, 10, &mut rng);
        assert_eq!(r.completion_time(), Some(3));
        let mut meg2 = FrozenGraph::new(generators::path(4));
        let r2 = probabilistic_flood(&mut meg2, 0, 1.0, 1, &mut rng);
        assert_eq!(r2.completion_time(), None);
    }
}
