//! The per-node protocol state machine — the shared chassis every spreading
//! process in this crate runs on.
//!
//! The paper's flooding process is one point in a family: probabilistic and
//! parsimonious flooding, push–pull gossip, SIS/SIR epidemics, push-only
//! rumor spreading, Byzantine tampering. All of them share one shape —
//! every node carries a small state, each round the current snapshot's
//! neighborhoods drive state transitions, and the process stops when a
//! protocol-defined completion predicate holds. This module captures that
//! shape as two traits plus one driver loop:
//!
//! * [`NodeState`] — the per-node state alphabet (informed/susceptible/…)
//!   with a protocol-defined notion of "covered";
//! * [`ProtocolMachine`] — the transition rules: one [`step`] per snapshot,
//!   a completion predicate, and an optional progress predicate for
//!   machines that can prove they are permanently stuck;
//! * [`run_machine`] — the driver: `advance → step → record`, bounded by a
//!   round budget, reporting [`RunOutcome::Censored`] when the budget is
//!   exhausted (processes like endemic SIS legitimately *never* complete —
//!   the cap is a measurement decision, not an error).
//!
//! The four pre-existing protocols are thin machines over this chassis and
//! remain byte-identical to their historical RNG draw order; the epidemic
//! ([`super::epidemics`]), rumor ([`super::rumor`]) and Byzantine
//! ([`super::byzantine`]) families are new machines.
//!
//! [`step`]: ProtocolMachine::step

use super::ProtocolResult;
use crate::evolving::EvolvingGraph;
use meg_graph::{Graph, Node};
use rand::Rng;

/// A per-node protocol state.
///
/// Implementors are tiny `Copy` enums ([`super::probabilistic::FloodState`],
/// [`super::epidemics::EpidemicState`], …). The trait exists so generic test
/// harnesses can enumerate the alphabet and tally state counts without
/// knowing the protocol: `ALL` lists every state, [`label`](Self::label)
/// names it, and [`is_covered`](Self::is_covered) says whether a node in
/// this state counts toward the protocol's coverage curve.
pub trait NodeState: Copy + Eq + 'static {
    /// Every state of the alphabet, in a fixed order.
    const ALL: &'static [Self];

    /// Stable snake_case name of this state (for reports and tests).
    fn label(self) -> &'static str;

    /// Does a node in this state count as "reached" by the process?
    ///
    /// For information-spreading protocols this is "informed"; for
    /// epidemics it is "currently or previously infected". The default
    /// [`ProtocolMachine::coverage`] tallies it; machines with a sharper
    /// notion (e.g. epidemics tracking ever-infected across
    /// re-susceptibility) override `coverage` directly.
    fn is_covered(self) -> bool;
}

/// Transition rules for one protocol: per-node states driven by the current
/// snapshot's neighborhoods.
///
/// A machine owns the full per-node state vector plus whatever scratch it
/// needs; [`run_machine`] owns the clock. One [`step`](Self::step) consumes
/// exactly one snapshot and must be deterministic given the snapshot and the
/// RNG — all randomness flows through the `rng` argument so engine rows stay
/// reproducible under sharding and `--resume`.
pub trait ProtocolMachine {
    /// The per-node state alphabet.
    type State: NodeState;

    /// Number of nodes the machine was built for.
    fn num_nodes(&self) -> usize;

    /// Current state of node `v`.
    fn state_of(&self, v: Node) -> Self::State;

    /// Advances every node by one round against snapshot `g`.
    ///
    /// Implementations must evaluate transitions against the *round-start*
    /// state (two-phase update): a node informed or infected during the
    /// round acts only from the next round on.
    fn step<G, R>(&mut self, g: &G, rng: &mut R)
    where
        G: Graph + ?Sized,
        R: Rng;

    /// The protocol's completion predicate.
    ///
    /// "All nodes informed" for dissemination, "no infectious nodes left"
    /// for epidemics, "no uninformed nodes left" for Byzantine spreading.
    fn is_complete(&self) -> bool;

    /// Can the process still make progress, regardless of future topology?
    ///
    /// Defaults to `true`; machines that can prove permanent stalls
    /// (parsimonious flooding with every informed node silent) return
    /// `false` so the driver stops early with [`RunOutcome::Stalled`].
    fn can_progress(&self) -> bool {
        true
    }

    /// Number of nodes the process has reached so far.
    ///
    /// Defaults to counting [`NodeState::is_covered`] states; machines keep
    /// a set and override this with an `O(1)` read.
    fn coverage(&self) -> usize {
        (0..self.num_nodes() as Node)
            .filter(|&v| self.state_of(v).is_covered())
            .count()
    }

    /// Total point-to-point transmissions performed so far.
    fn messages_sent(&self) -> u64;

    /// Tally of nodes per state, in [`NodeState::ALL`] order.
    ///
    /// The counts always partition `num_nodes()` — a property the test
    /// suite checks for every machine after every round.
    fn state_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Self::State::ALL
            .iter()
            .map(|s| (s.label(), 0usize))
            .collect();
        for v in 0..self.num_nodes() as Node {
            let s = self.state_of(v);
            let slot = Self::State::ALL
                .iter()
                .position(|&t| t == s)
                .expect("state_of returned a state missing from State::ALL");
            counts[slot].1 += 1;
        }
        counts
    }
}

/// How a machine run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The completion predicate held within the round budget.
    Completed,
    /// The round budget ran out first. For processes with an endemic
    /// regime (SIS above threshold) this is the *expected* outcome: the
    /// run is censored at the cap, not failed.
    Censored,
    /// The machine proved it can never complete (e.g. parsimonious
    /// flooding with every informed node silent) and stopped early.
    Stalled,
}

/// Result of [`run_machine`]: the outcome, the round count, the coverage
/// curve, and the message total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Rounds executed (equals the completion time when `Completed`).
    pub rounds: u64,
    /// `coverage_per_round[t]` is the machine's coverage after `t` rounds
    /// (index 0 holds the initial coverage).
    pub coverage_per_round: Vec<usize>,
    /// Total point-to-point transmissions performed.
    pub messages_sent: u64,
}

impl MachineResult {
    /// Collapses the outcome into the legacy [`ProtocolResult`] shape
    /// (`completed` ⇔ [`RunOutcome::Completed`]; censored and stalled runs
    /// both report `completed = false`).
    pub fn into_protocol_result(self) -> ProtocolResult {
        ProtocolResult {
            completed: self.outcome == RunOutcome::Completed,
            rounds: self.rounds,
            informed_per_round: self.coverage_per_round,
            messages_sent: self.messages_sent,
        }
    }
}

/// Drives `machine` over `meg` for at most `max_rounds` rounds.
///
/// Each round advances the evolving graph by one snapshot, steps the
/// machine against it, and records the coverage. The loop stops when the
/// completion predicate holds, when the machine reports it can no longer
/// progress, or when the budget is exhausted — in which case the run is
/// *censored*: [`MachineResult::rounds`] equals `max_rounds` and the caller
/// decides how to report the truncation (the engine surfaces it as
/// `completed = false` in its rows).
pub fn run_machine<M, P, R>(
    meg: &mut M,
    machine: &mut P,
    max_rounds: u64,
    rng: &mut R,
) -> MachineResult
where
    M: EvolvingGraph,
    P: ProtocolMachine,
    R: Rng,
{
    let mut coverage_per_round = vec![machine.coverage()];
    let mut rounds = 0u64;
    let mut completed = machine.is_complete();
    let mut stalled = false;
    while rounds < max_rounds && !completed {
        let snapshot = meg.advance();
        machine.step(snapshot, rng);
        rounds += 1;
        coverage_per_round.push(machine.coverage());
        completed = machine.is_complete();
        if !completed && !machine.can_progress() {
            stalled = true;
            break;
        }
    }
    let outcome = if completed {
        RunOutcome::Completed
    } else if stalled {
        RunOutcome::Stalled
    } else {
        RunOutcome::Censored
    };
    MachineResult {
        outcome,
        rounds,
        coverage_per_round,
        messages_sent: machine.messages_sent(),
    }
}

/// Picks one uniformly random neighbor of `u` in `g`, or `None` if `u` is
/// isolated in this snapshot.
///
/// Random-contact machines (push–pull, rumor, Byzantine) draw exactly one
/// `gen_range` over the neighbor count per non-isolated caller. When the
/// snapshot exposes a contiguous neighbor slice (the engine's `SnapshotBuf`
/// always does) the draw indexes it directly — the same order, hence the
/// same byte stream, as the historical `snapshot.neighbors(u)` code path.
/// Other `Graph` impls fall back to collecting into `scratch`.
pub(super) fn random_contact<G, R>(
    g: &G,
    u: Node,
    scratch: &mut Vec<Node>,
    rng: &mut R,
) -> Option<Node>
where
    G: Graph + ?Sized,
    R: Rng,
{
    if let Some(slice) = g.neighbor_slice(u) {
        if slice.is_empty() {
            return None;
        }
        return Some(slice[rng.gen_range(0..slice.len())]);
    }
    scratch.clear();
    g.for_each_neighbor(u, &mut |v| scratch.push(v));
    if scratch.is_empty() {
        return None;
    }
    Some(scratch[rng.gen_range(0..scratch.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::FrozenGraph;
    use crate::protocols::probabilistic::FloodMachine;
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn censored_runs_report_the_budget_and_no_completion() {
        // Flooding on a disconnected graph can never complete; with no
        // stall proof available the driver runs the full budget.
        let g = meg_graph::AdjacencyList::from_edges(4, [(0, 1)]);
        let mut meg = FrozenGraph::new(g);
        let mut machine = FloodMachine::new(4, 0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = run_machine(&mut meg, &mut machine, 7, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Censored);
        assert_eq!(r.rounds, 7);
        assert_eq!(*r.coverage_per_round.last().unwrap(), 2);
    }

    #[test]
    fn completed_runs_stop_at_the_completion_round() {
        let mut meg = FrozenGraph::new(generators::path(6));
        let mut machine = FloodMachine::new(6, 0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = run_machine(&mut meg, &mut machine, 100, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.rounds, 5);
        assert_eq!(r.coverage_per_round, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn an_initially_complete_machine_runs_zero_rounds() {
        let mut meg = FrozenGraph::new(generators::complete(1));
        let mut machine = FloodMachine::new(1, 0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = run_machine(&mut meg, &mut machine, 10, &mut rng);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.coverage_per_round, vec![1]);
    }

    #[test]
    fn state_counts_partition_n() {
        let mut meg = FrozenGraph::new(generators::cycle(9));
        let mut machine = FloodMachine::new(9, 0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..4 {
            let total: usize = machine.state_counts().iter().map(|&(_, c)| c).sum();
            assert_eq!(total, 9);
            let snapshot = meg.advance();
            machine.step(snapshot, &mut rng);
        }
    }
}
