//! # meg-core
//!
//! The primary contribution of Clementi, Monti, Pasquale and Silvestri,
//! *"Information Spreading in Stationary Markovian Evolving Graphs"*
//! (IEEE IPDPS 2009): a framework for analysing the **flooding time** of
//! dynamic graphs whose evolution is governed by a Markov chain observed in
//! its stationary regime.
//!
//! The crate provides:
//!
//! * [`evolving`] — the [`EvolvingGraph`] trait that
//!   every dynamic-graph model implements (geometric-MEG, edge-MEG,
//!   adversarial constructions, frozen static graphs);
//! * [`flooding`] — the flooding process itself (Section 2 of the paper) and
//!   its measurement over any evolving graph;
//! * [`expansion`] — parameterized `(h, k)` expander sequences and the bound
//!   evaluators of Lemma 2.4, Theorem 2.5 and Corollary 2.6;
//! * [`bounds`] — the closed-form upper and lower bounds the paper proves for
//!   geometric-MEG (Theorems 3.4, 3.5) and edge-MEG (Theorems 4.3, 4.4);
//! * [`spec`] — the parameter-regime predicates under which each theorem
//!   applies (connectivity thresholds, tightness conditions);
//! * [`protocols`] — protocol variants built on the same machinery
//!   (probabilistic flooding, parsimonious flooding, push–pull gossip);
//! * [`adversarial`] — evolving graphs that separate diameter from flooding
//!   time (the Introduction's "diameter 3 yet flooding Θ(n)" phenomenon);
//! * [`analysis`] — measurement of empirical expansion sequences of an
//!   evolving graph, bridging simulation and the general theorem.
//!
//! ## Example
//!
//! Flooding a static graph (an evolving graph frozen in time) agrees with
//! BFS eccentricity, and Lemma 2.4's expander-sequence bound dominates it:
//!
//! ```
//! use meg_core::expansion::ExpanderSequence;
//! use meg_core::flooding::flood_static;
//! use meg_graph::AdjacencyList;
//!
//! // A 6-cycle: flooding from any source needs exactly ⌈6/2⌉ = 3 rounds.
//! let g = AdjacencyList::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
//! let result = flood_static(&g, 0);
//! assert_eq!(result.flooding_time(), Some(3));
//!
//! // Every size-h subset of a cycle has at least 2 outside neighbors … use
//! // the trivial expansion k(h) = 1 as a valid (weaker) expander sequence.
//! let seq = ExpanderSequence::new(6, vec![1, 3], vec![1.0, 1.0]).unwrap();
//! assert!(seq.flooding_bound() >= 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod analysis;
pub mod bounds;
pub mod evolving;
pub mod expansion;
pub mod flooding;
pub mod protocols;
pub mod spec;

pub use evolving::{EvolvingGraph, FrozenGraph, InitialDistribution, Stepping};
pub use expansion::ExpanderSequence;
pub use flooding::{flood, flood_static, FloodingOutcome, FloodingResult};
