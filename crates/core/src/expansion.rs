//! Parameterized expander sequences and the flooding-time bound evaluators of
//! Lemma 2.4, Theorem 2.5 and Corollary 2.6.
//!
//! The paper's general theorem turns a family of `(h_i, k_i)`-expander
//! properties into a flooding-time bound
//!
//! ```text
//! T = O( Σ_i  log(h_i / h_{i-1}) / log(1 + k_i) )
//! ```
//!
//! with `1 = h_0 ≤ h_1 < … < h_s = n/2` increasing and `k_1 ≥ … ≥ k_s`
//! non-increasing. [`ExpanderSequence`] validates those side conditions and
//! evaluates the sum; [`corollary_2_6`] specialises it to the per-size form
//! `Σ_{i ≤ n/2} 1 / (i · log(1 + k_i))`.

use meg_graph::expansion::ExpansionProfile;

/// Errors raised when an `(h_i, k_i)` sequence violates the hypotheses of
/// Lemma 2.4 / Theorem 2.5.
#[derive(Clone, Debug, PartialEq)]
pub enum SequenceError {
    /// The sequence is empty.
    Empty,
    /// `h` values must be strictly increasing and ≥ 1.
    NotIncreasing,
    /// `k` values must be positive and non-increasing.
    NotNonIncreasing,
    /// The lengths of the `h` and `k` vectors differ.
    LengthMismatch,
    /// The last `h` must equal `n/2`.
    WrongFinalSize {
        /// Expected final size (`n/2`).
        expected: usize,
        /// Final size actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for SequenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequenceError::Empty => write!(f, "expander sequence is empty"),
            SequenceError::NotIncreasing => {
                write!(f, "h values must be strictly increasing and ≥ 1")
            }
            SequenceError::NotNonIncreasing => {
                write!(f, "k values must be positive and non-increasing")
            }
            SequenceError::LengthMismatch => write!(f, "h and k have different lengths"),
            SequenceError::WrongFinalSize { expected, got } => {
                write!(f, "final h must be n/2 = {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SequenceError {}

/// A validated `(h_i, k_i)` expander sequence for an `n`-node graph family.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpanderSequence {
    n: usize,
    hs: Vec<usize>,
    ks: Vec<f64>,
}

impl ExpanderSequence {
    /// Builds a sequence after checking the hypotheses of Theorem 2.5:
    /// `h` strictly increasing with `h_s = n/2`, `k` positive non-increasing.
    /// (`h_0 = 1` is implicit and must not be included in `hs`.)
    pub fn new(n: usize, hs: Vec<usize>, ks: Vec<f64>) -> Result<Self, SequenceError> {
        if hs.is_empty() || ks.is_empty() {
            return Err(SequenceError::Empty);
        }
        if hs.len() != ks.len() {
            return Err(SequenceError::LengthMismatch);
        }
        if hs[0] < 1 || hs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SequenceError::NotIncreasing);
        }
        if ks.iter().any(|&k| k <= 0.0 || !k.is_finite())
            || ks.windows(2).any(|w| w[0] < w[1] - 1e-12)
        {
            return Err(SequenceError::NotNonIncreasing);
        }
        let expected = n / 2;
        let got = *hs.last().expect("non-empty");
        if got != expected {
            return Err(SequenceError::WrongFinalSize { expected, got });
        }
        Ok(ExpanderSequence { n, hs, ks })
    }

    /// Builds the sequence from an empirically measured
    /// [`ExpansionProfile`], clamping the `k` values into a non-increasing
    /// sequence (a running minimum, which is the conservative direction) and
    /// extending the final point to `n/2` if the profile stopped short.
    pub fn from_profile(n: usize, profile: &ExpansionProfile) -> Result<Self, SequenceError> {
        let (mut hs, mut ks) = profile.monotone_hk();
        if hs.is_empty() {
            return Err(SequenceError::Empty);
        }
        // Drop the h = 1 point if present: h_0 = 1 is the implicit start.
        if hs[0] == 1 && hs.len() > 1 {
            // keep it — h_1 may legitimately equal 1? No: h_1 must be ≥ h_0 = 1
            // and strictly less than h_2; a leading h = 1 entry is fine.
        }
        let target = n / 2;
        match hs.last().copied() {
            Some(last) if last < target => {
                hs.push(target);
                ks.push(*ks.last().expect("non-empty"));
            }
            Some(last) if last > target => {
                // Trim any oversized trailing entries, then re-extend exactly.
                while hs.last().copied().is_some_and(|h| h > target) {
                    hs.pop();
                    ks.pop();
                }
                if hs.last().copied() != Some(target) {
                    hs.push(target);
                    ks.push(ks.last().copied().unwrap_or(1.0));
                }
            }
            _ => {}
        }
        Self::new(n, hs, ks)
    }

    /// Number of nodes of the underlying graph family.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The `h_i` values (not including the implicit `h_0 = 1`).
    pub fn sizes(&self) -> &[usize] {
        &self.hs
    }

    /// The `k_i` values.
    pub fn rates(&self) -> &[f64] {
        &self.ks
    }

    /// Evaluates the Lemma 2.4 bound
    /// `Σ_i log(h_i/h_{i-1}) / log(1 + k_i)` — the number of rounds needed to
    /// reach `n/2` informed nodes; by the symmetric backward argument the
    /// total flooding time is at most twice this (plus O(1)).
    pub fn half_bound(&self) -> f64 {
        let mut total = 0.0;
        let mut prev = 1usize;
        for (&h, &k) in self.hs.iter().zip(self.ks.iter()) {
            if h > prev {
                total += ((h as f64) / (prev as f64)).ln() / (1.0 + k).ln();
            }
            prev = h;
        }
        total
    }

    /// Full flooding-time bound: `2 · half_bound() + 2` rounds (the additive
    /// constant covers the `⌈·⌉` roundings and the final merge step).
    pub fn flooding_bound(&self) -> f64 {
        2.0 * self.half_bound() + 2.0
    }
}

/// Corollary 2.6: given a non-increasing sequence `k_1 ≥ … ≥ k_{n/2}` such
/// that the stationary snapshot is an `(i, k_i)`-expander for every
/// `i ≤ n/2`, flooding time is `O( Σ_i 1 / (i · log(1 + k_i)) )`.
///
/// `ks[i]` is interpreted as `k_{i+1}` (the rate at set size `i + 1`).
/// Returns the evaluated sum (again, the "half" bound; double it for the full
/// flooding estimate).
pub fn corollary_2_6(ks: &[f64]) -> f64 {
    ks.iter()
        .enumerate()
        .map(|(idx, &k)| {
            let i = (idx + 1) as f64;
            1.0 / (i * (1.0 + k).ln())
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_graph::expansion::{ExpansionPoint, SamplingStrategy};
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation_catches_bad_sequences() {
        assert_eq!(
            ExpanderSequence::new(10, vec![], vec![]).unwrap_err(),
            SequenceError::Empty
        );
        assert_eq!(
            ExpanderSequence::new(10, vec![2, 5], vec![1.0]).unwrap_err(),
            SequenceError::LengthMismatch
        );
        assert_eq!(
            ExpanderSequence::new(10, vec![3, 2], vec![1.0, 1.0]).unwrap_err(),
            SequenceError::NotIncreasing
        );
        assert_eq!(
            ExpanderSequence::new(10, vec![2, 5], vec![1.0, 2.0]).unwrap_err(),
            SequenceError::NotNonIncreasing
        );
        assert_eq!(
            ExpanderSequence::new(10, vec![2, 4], vec![2.0, 1.0]).unwrap_err(),
            SequenceError::WrongFinalSize {
                expected: 5,
                got: 4
            }
        );
        assert!(ExpanderSequence::new(10, vec![2, 5], vec![2.0, 1.0]).is_ok());
    }

    #[test]
    fn complete_graph_bound_is_constant_rounds() {
        // On K_n every set of size ≤ n/2 expands by at least a factor 1
        // (indeed (n-h)/h ≥ 1), with k_1 = n-1 for singletons.
        let n = 1000usize;
        let seq = ExpanderSequence::new(n, vec![n / 2], vec![1.0]).unwrap();
        let bound = seq.flooding_bound();
        // log(n/2)/log(2) ≈ 9 doublings, so the bound is ~20 rounds.
        assert!(bound < 25.0, "bound {bound}");
        assert!(bound > 2.0);
    }

    #[test]
    fn expander_bound_scales_logarithmically() {
        // constant expansion k=2 at every scale → bound ~ log n.
        for &n in &[1_000usize, 1_000_000] {
            let seq = ExpanderSequence::new(n, vec![n / 2], vec![2.0]).unwrap();
            let expect = (n as f64 / 2.0).ln() / 3.0f64.ln();
            assert!((seq.half_bound() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_scale_sequence_accumulates_per_interval_costs() {
        // Two regimes: fast expansion up to h=16, slower up to n/2=64.
        let seq = ExpanderSequence::new(128, vec![16, 64], vec![3.0, 0.5]).unwrap();
        let expected = (16.0f64).ln() / (4.0f64).ln() + (64.0f64 / 16.0).ln() / (1.5f64).ln();
        assert!((seq.half_bound() - expected).abs() < 1e-12);
        assert!((seq.flooding_bound() - (2.0 * expected + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn corollary_matches_theorem_for_unit_steps() {
        // For hs = 1,2,...,n/2 with constant k, the Corollary 2.6 sum equals
        // the Lemma 2.4 sum because log(i/(i-1)) telescopes ≈ Σ 1/i.
        let n = 64usize;
        let k = 1.5f64;
        let ks = vec![k; n / 2];
        let coro = corollary_2_6(&ks);
        let hs: Vec<usize> = (2..=n / 2).collect();
        let seq = ExpanderSequence::new(n, hs, vec![k; n / 2 - 1]).unwrap();
        // They agree up to the harmonic-vs-log discrepancy, well within 2x.
        assert!(coro >= seq.half_bound());
        assert!(coro <= 2.0 * seq.half_bound() + 1.0);
    }

    #[test]
    fn from_profile_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::complete(40);
        let profile = meg_graph::expansion::ExpansionProfile::measure(
            &g,
            5,
            SamplingStrategy::UniformSubsets,
            &mut rng,
        );
        let seq = ExpanderSequence::from_profile(40, &profile).unwrap();
        assert_eq!(*seq.sizes().last().unwrap(), 20);
        // On K_40 every set of size h ≤ 20 has |N(I)| = 40 - h ≥ 20 ≥ |I|, so
        // all measured rates are ≥ 1 and the bound is a handful of rounds.
        assert!(seq.rates().iter().all(|&k| k >= 1.0));
        assert!(seq.flooding_bound() < 15.0);
    }

    #[test]
    fn from_profile_handles_short_profiles() {
        // A profile that stops well before n/2 gets extended conservatively.
        let profile = ExpansionProfile {
            points: vec![
                ExpansionPoint {
                    h: 1,
                    min_ratio: 4.0,
                },
                ExpansionPoint {
                    h: 8,
                    min_ratio: 2.0,
                },
            ],
        };
        let seq = ExpanderSequence::from_profile(100, &profile).unwrap();
        assert_eq!(*seq.sizes().last().unwrap(), 50);
        assert_eq!(*seq.rates().last().unwrap(), 2.0);
    }

    #[test]
    fn zero_or_negative_rates_rejected() {
        assert_eq!(
            ExpanderSequence::new(10, vec![5], vec![0.0]).unwrap_err(),
            SequenceError::NotNonIncreasing
        );
        assert_eq!(
            ExpanderSequence::new(10, vec![5], vec![-1.0]).unwrap_err(),
            SequenceError::NotNonIncreasing
        );
    }
}
