//! The flooding process (Section 2 of the paper).
//!
//! Flooding is the simplest information-dissemination mechanism: once a node
//! holds the source message it forwards it to *all* of its current neighbors
//! at every subsequent time step. On an evolving graph `{G_t}` the informed
//! set therefore evolves as
//!
//! ```text
//! I_0     = {source}
//! I_{t+1} = I_t ∪ N_{G_t}(I_t)
//! ```
//!
//! and the *flooding time* `T(s)` is the first step at which `I_t = [n]`
//! (maximised over sources `s` when the worst case is wanted).
//!
//! The engine below is model-agnostic: it drives any
//! [`EvolvingGraph`]. Because the topology
//! changes every step, the frontier optimisation familiar from static BFS is
//! unsound — a node informed long ago can acquire a brand-new uninformed
//! neighbor at any later step — so each round scans whichever of the informed
//! or uninformed side is smaller.

use crate::evolving::{EvolvingGraph, FrozenGraph};
use meg_graph::{visit_neighbors, Graph, Node, NodeSet};

/// Why a flooding run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FloodingOutcome {
    /// All nodes were informed.
    Completed,
    /// The round budget was exhausted before completion.
    RoundLimit,
    /// A round informed no new node **and** the evolving graph is known to be
    /// static, so the process can never complete (unreachable component).
    Stalled,
}

/// Full record of one flooding run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodingResult {
    /// Outcome of the run.
    pub outcome: FloodingOutcome,
    /// Number of rounds executed. When `outcome == Completed` this is exactly
    /// the flooding time `T(source)`.
    pub rounds: u64,
    /// `informed_per_round[t]` is `|I_t|`; index 0 holds the initial value 1.
    pub informed_per_round: Vec<usize>,
    /// The final informed set.
    pub informed: NodeSet,
}

impl FloodingResult {
    /// Flooding time if the run completed.
    pub fn flooding_time(&self) -> Option<u64> {
        match self.outcome {
            FloodingOutcome::Completed => Some(self.rounds),
            _ => None,
        }
    }

    /// Fraction of nodes informed at the end of the run.
    pub fn coverage(&self) -> f64 {
        self.informed.len() as f64 / self.informed.universe() as f64
    }
}

/// Mutable flooding state, advanced one snapshot at a time.
///
/// Exposed so callers can interleave flooding with their own per-round
/// measurements (expansion of the informed set, snapshot statistics, …).
/// The `newly` scratch vector is part of the state and reused across rounds,
/// so a round allocates nothing once its capacity has warmed up.
#[derive(Clone, Debug)]
pub struct FloodingState {
    informed: NodeSet,
    /// Scratch: nodes informed during the current round (reused each round).
    newly: Vec<Node>,
}

impl FloodingState {
    /// Starts a flooding process from a single source.
    pub fn new(num_nodes: usize, source: Node) -> Self {
        FloodingState {
            informed: NodeSet::singleton(num_nodes, source),
            newly: Vec::new(),
        }
    }

    /// Starts a flooding process from several sources at once.
    pub fn with_sources(num_nodes: usize, sources: &[Node]) -> Self {
        assert!(!sources.is_empty(), "at least one source required");
        FloodingState {
            informed: NodeSet::from_iter(num_nodes, sources.iter().copied()),
            newly: Vec::new(),
        }
    }

    /// The informed set `I_t`.
    pub fn informed(&self) -> &NodeSet {
        &self.informed
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Returns `true` when every node is informed.
    pub fn is_complete(&self) -> bool {
        self.informed.is_full()
    }

    /// Applies one flooding round using snapshot `g`; returns the number of
    /// newly informed nodes.
    pub fn step<G: Graph + ?Sized>(&mut self, g: &G) -> usize {
        let n = self.informed.universe();
        debug_assert_eq!(g.num_nodes(), n, "snapshot node count changed");
        let informed_count = self.informed.len();
        let informed = &self.informed;
        let newly = &mut self.newly;
        newly.clear();
        if informed_count * 2 <= n {
            // Scan informed nodes and collect their uninformed neighbors.
            for u in informed.iter() {
                visit_neighbors(g, u, |v| {
                    if !informed.contains(v) {
                        newly.push(v);
                    }
                });
            }
        } else {
            // Scan uninformed nodes (ascending, exactly the old
            // `complement().iter()` order without materialising the
            // complement) and test whether any neighbor is informed.
            for v in 0..n as Node {
                if informed.contains(v) {
                    continue;
                }
                let mut hit = false;
                visit_neighbors(g, v, |w| {
                    if !hit && informed.contains(w) {
                        hit = true;
                    }
                });
                if hit {
                    newly.push(v);
                }
            }
        }
        let mut added = 0usize;
        for i in 0..self.newly.len() {
            if self.informed.insert(self.newly[i]) {
                added += 1;
            }
        }
        added
    }
}

/// Runs flooding from `source` on `meg` for at most `max_rounds` rounds.
pub fn flood<M: EvolvingGraph>(meg: &mut M, source: Node, max_rounds: u64) -> FloodingResult {
    let n = meg.num_nodes();
    assert!(
        (source as usize) < n,
        "source {source} out of range for n={n}"
    );
    let mut state = FloodingState::new(n, source);
    // Pre-size the per-round trace from the round budget, capped so a
    // generous budget (the engine uses 2·10⁶) cannot force a huge up-front
    // reservation: completed floods rarely exceed ~2n rounds, and a run that
    // does simply grows the vector as before.
    let expected_rounds = (max_rounds as usize).min(2 * n + 64);
    let mut informed_per_round = Vec::with_capacity(expected_rounds + 1);
    informed_per_round.push(state.informed_count());
    let mut rounds = 0u64;
    let mut outcome = if state.is_complete() {
        FloodingOutcome::Completed
    } else {
        FloodingOutcome::RoundLimit
    };
    while rounds < max_rounds && !state.is_complete() {
        let snapshot = meg.advance();
        state.step(snapshot);
        rounds += 1;
        informed_per_round.push(state.informed_count());
        if state.is_complete() {
            outcome = FloodingOutcome::Completed;
            break;
        }
    }
    FloodingResult {
        outcome,
        rounds,
        informed_per_round,
        informed: state.informed,
    }
}

/// Flooding on a static graph (BFS semantics). The flooding time equals the
/// eccentricity of the source when the graph is connected.
pub fn flood_static(graph: &meg_graph::AdjacencyList, source: Node) -> FloodingResult {
    let n = graph.num_nodes();
    let mut frozen = FrozenGraph::new(graph.clone());
    // On a static graph, flooding either completes within n-1 rounds or stalls.
    let mut result = flood(&mut frozen, source, n.saturating_sub(1).max(1) as u64);
    if result.outcome != FloodingOutcome::Completed {
        // Distinguish "needs more rounds" (impossible on a static graph) from
        // a genuine stall caused by disconnection.
        result.outcome = FloodingOutcome::Stalled;
    }
    result
}

/// Worst-case flooding time over all sources on a static graph
/// (`max_s T(s)`), or `None` if the graph is disconnected. Equals the graph's
/// diameter.
pub fn flooding_time_all_sources_static(graph: &meg_graph::AdjacencyList) -> Option<u64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Some(0);
    }
    let mut worst = 0u64;
    for s in 0..n as Node {
        match flood_static(graph, s).flooding_time() {
            Some(t) => worst = worst.max(t),
            None => return None,
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::ScheduledGraph;
    use meg_graph::{generators, AdjacencyList};

    #[test]
    fn static_flooding_equals_eccentricity() {
        let g = generators::path(6);
        let r = flood_static(&g, 0);
        assert_eq!(r.outcome, FloodingOutcome::Completed);
        assert_eq!(r.flooding_time(), Some(5));
        assert_eq!(r.informed_per_round, vec![1, 2, 3, 4, 5, 6]);
        let r_mid = flood_static(&g, 3);
        assert_eq!(r_mid.flooding_time(), Some(3));
        assert_eq!(r_mid.coverage(), 1.0);
    }

    #[test]
    fn static_flooding_worst_case_is_diameter() {
        for g in [
            generators::path(9),
            generators::cycle(9),
            generators::grid2d(4, 5),
        ] {
            let diam = meg_graph::diameter::exact(&g).finite().unwrap() as u64;
            assert_eq!(flooding_time_all_sources_static(&g), Some(diam));
        }
    }

    #[test]
    fn disconnected_static_graph_stalls() {
        let g = AdjacencyList::from_edges(5, [(0, 1), (2, 3)]);
        let r = flood_static(&g, 0);
        assert_eq!(r.outcome, FloodingOutcome::Stalled);
        assert_eq!(r.flooding_time(), None);
        assert_eq!(r.informed.len(), 2);
        assert!(r.coverage() < 1.0);
        assert_eq!(flooding_time_all_sources_static(&g), None);
    }

    #[test]
    fn single_node_graph_completes_instantly() {
        let g = AdjacencyList::new(1);
        let r = flood_static(&g, 0);
        assert_eq!(r.outcome, FloodingOutcome::Completed);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.flooding_time(), Some(0));
    }

    #[test]
    fn complete_graph_floods_in_one_round() {
        let g = generators::complete(20);
        let r = flood_static(&g, 7);
        assert_eq!(r.flooding_time(), Some(1));
        assert_eq!(r.informed_per_round, vec![1, 20]);
    }

    #[test]
    fn dynamic_edges_can_beat_any_static_snapshot() {
        // Node 2 is never reachable in snapshot A, node 1 never in snapshot B,
        // yet alternating between them floods everything.
        let a = AdjacencyList::from_edges(3, [(0, 1)]);
        let b = AdjacencyList::from_edges(3, [(0, 2)]);
        let mut meg = ScheduledGraph::new(vec![a, b]);
        let r = flood(&mut meg, 0, 10);
        assert_eq!(r.outcome, FloodingOutcome::Completed);
        assert_eq!(r.flooding_time(), Some(2));
    }

    #[test]
    fn round_limit_is_respected() {
        let g = AdjacencyList::from_edges(4, [(0, 1), (2, 3)]);
        let mut meg = FrozenGraph::new(g);
        let r = flood(&mut meg, 0, 3);
        assert_eq!(r.outcome, FloodingOutcome::RoundLimit);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.informed.len(), 2);
    }

    #[test]
    fn informed_set_grows_monotonically() {
        let g = generators::grid2d(5, 5);
        let r = flood_static(&g, 12);
        for w in r.informed_per_round.windows(2) {
            assert!(w[0] <= w[1], "informed counts must be non-decreasing");
        }
        assert_eq!(*r.informed_per_round.last().unwrap(), 25);
    }

    #[test]
    fn multi_source_state_floods_faster() {
        let g = generators::path(10);
        let mut single = FloodingState::new(10, 0);
        let mut double = FloodingState::with_sources(10, &[0, 9]);
        let mut rounds_single = 0;
        while !single.is_complete() {
            single.step(&g);
            rounds_single += 1;
        }
        let mut rounds_double = 0;
        while !double.is_complete() {
            double.step(&g);
            rounds_double += 1;
        }
        assert_eq!(rounds_single, 9);
        assert_eq!(rounds_double, 4);
    }

    #[test]
    fn late_edges_reach_old_informed_nodes() {
        // Node 3's only-ever edge appears at step 3, attached to the source
        // itself (informed since round 0). A frontier-only implementation
        // would miss it.
        let empty = AdjacencyList::new(4);
        let g0 = AdjacencyList::from_edges(4, [(0, 1)]);
        let g1 = AdjacencyList::from_edges(4, [(1, 2)]);
        let g3 = AdjacencyList::from_edges(4, [(0, 3)]);
        let mut meg = ScheduledGraph::new(vec![g0, g1, empty, g3]);
        let r = flood(&mut meg, 0, 10);
        assert_eq!(r.flooding_time(), Some(4));
        assert_eq!(r.informed_per_round, vec![1, 2, 3, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_source_panics() {
        let mut meg = FrozenGraph::new(generators::path(3));
        flood(&mut meg, 5, 10);
    }
}
