//! Closed-form flooding-time bounds proved in the paper.
//!
//! These are *shape* functions: the theorems hide absolute constants inside
//! `O(·)` / `Ω(·)`, so each function exposes the constant as a parameter with
//! a default of 1. The experiments compare measured flooding times against
//! these shapes (ratio plots, fitted constants), never against absolute
//! values.

/// Bounds for stationary geometric-MEG (Section 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeometricBounds {
    /// Number of nodes (the square has side `√n` at density 1).
    pub n: usize,
    /// Transmission radius `R`.
    pub radius: f64,
    /// Move radius `r` (maximum node speed).
    pub move_radius: f64,
}

impl GeometricBounds {
    /// Creates the bound helper. Panics on non-positive radius or `n = 0`.
    pub fn new(n: usize, radius: f64, move_radius: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(radius > 0.0, "transmission radius must be positive");
        assert!(move_radius >= 0.0, "move radius must be non-negative");
        GeometricBounds {
            n,
            radius,
            move_radius,
        }
    }

    /// Theorem 3.4 upper bound shape: `√n / R + log log R` (natural logs,
    /// clamped at 0 for small `R`).
    pub fn upper_shape(&self) -> f64 {
        let sqrt_n = (self.n as f64).sqrt();
        let loglog_r = if self.radius > std::f64::consts::E {
            self.radius.ln().ln().max(0.0)
        } else {
            0.0
        };
        sqrt_n / self.radius + loglog_r
    }

    /// Theorem 3.4 upper bound with an explicit constant: `c · upper_shape()`.
    pub fn upper(&self, c: f64) -> f64 {
        c * self.upper_shape()
    }

    /// Theorem 3.5 lower bound: `√n / (2 (R + 2r))` rounds are needed w.h.p.
    /// (this is the explicit constant the proof of Theorem 3.5 yields).
    pub fn lower(&self) -> f64 {
        (self.n as f64).sqrt() / (2.0 * (self.radius + 2.0 * self.move_radius))
    }

    /// The dominant `√n / R` term alone, i.e. the `Θ(√n/R)` value of
    /// Corollary 3.6.
    pub fn theta_shape(&self) -> f64 {
        (self.n as f64).sqrt() / self.radius
    }

    /// Theorem 3.2 expansion prediction in the small regime
    /// (`1 ≤ h ≤ αR²`): an `(h, αR²/h)`-expander.
    pub fn expansion_small(&self, h: usize, alpha: f64) -> f64 {
        alpha * self.radius * self.radius / h as f64
    }

    /// Theorem 3.2 expansion prediction in the large regime
    /// (`αR² ≤ h ≤ n/2`): an `(h, βR/√h)`-expander.
    pub fn expansion_large(&self, h: usize, beta: f64) -> f64 {
        beta * self.radius / (h as f64).sqrt()
    }

    /// The crossover set size `αR²` between the two expansion regimes.
    pub fn expansion_crossover(&self, alpha: f64) -> f64 {
        alpha * self.radius * self.radius
    }
}

/// Bounds for stationary edge-MEG (Section 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeBounds {
    /// Number of nodes.
    pub n: usize,
    /// Stationary edge probability `p̂ = p / (p + q)`.
    pub p_hat: f64,
}

impl EdgeBounds {
    /// Creates the bound helper. Panics unless `0 < p̂ ≤ 1` and `n ≥ 2`.
    pub fn new(n: usize, p_hat: f64) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(p_hat > 0.0 && p_hat <= 1.0, "p̂ must lie in (0, 1]");
        EdgeBounds { n, p_hat }
    }

    /// Expected stationary degree `(n − 1) p̂ ≈ n p̂`.
    pub fn expected_degree(&self) -> f64 {
        (self.n as f64 - 1.0) * self.p_hat
    }

    /// Theorem 4.3 upper bound shape:
    /// `log n / log(np̂) + log log(np̂)` (natural logs; the `log log` term is
    /// clamped at 0 when `np̂ ≤ e`).
    pub fn upper_shape(&self) -> f64 {
        let nphat = self.n as f64 * self.p_hat;
        let lead = (self.n as f64).ln() / nphat.ln().max(f64::MIN_POSITIVE);
        let loglog = if nphat > std::f64::consts::E {
            nphat.ln().ln().max(0.0)
        } else {
            0.0
        };
        lead + loglog
    }

    /// Theorem 4.3 upper bound with an explicit constant.
    pub fn upper(&self, c: f64) -> f64 {
        c * self.upper_shape()
    }

    /// Theorem 4.4 lower bound: `log(n/2) / log(2np̂)` rounds are needed
    /// w.h.p. (the explicit form appearing in the proof).
    pub fn lower(&self) -> f64 {
        let nphat = self.n as f64 * self.p_hat;
        (self.n as f64 / 2.0).ln() / (2.0 * nphat).ln().max(f64::MIN_POSITIVE)
    }

    /// The `Θ(log n / log(np̂))` value of Corollary 4.5.
    pub fn theta_shape(&self) -> f64 {
        let nphat = self.n as f64 * self.p_hat;
        (self.n as f64).ln() / nphat.ln().max(f64::MIN_POSITIVE)
    }

    /// Theorem 4.1 expansion prediction in the small regime (`h ≤ 1/p̂`):
    /// an `(h, np̂/c)`-expander.
    pub fn expansion_small(&self, c: f64) -> f64 {
        self.n as f64 * self.p_hat / c
    }

    /// Theorem 4.1 expansion prediction in the large regime
    /// (`1/p̂ ≤ h ≤ n/2`): an `(h, n/(c·h))`-expander.
    pub fn expansion_large(&self, h: usize, c: f64) -> f64 {
        self.n as f64 / (c * h as f64)
    }

    /// The crossover set size `1/p̂` between the two expansion regimes.
    pub fn expansion_crossover(&self) -> f64 {
        1.0 / self.p_hat
    }

    /// Worst-case flooding-time scale for a sparse edge-MEG started far from
    /// stationarity (from \[9\]: roughly `1/p` when the birth rate dominates,
    /// i.e. the time for the first edges to even appear). Used only to
    /// illustrate the stationary-vs-worst-case gap; pass the *birth rate* `p`,
    /// not `p̂`.
    pub fn worst_case_scale(p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "p must lie in (0, 1]");
        1.0 / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_upper_decreases_with_radius() {
        let small_r = GeometricBounds::new(10_000, 10.0, 1.0);
        let large_r = GeometricBounds::new(10_000, 50.0, 1.0);
        assert!(small_r.upper_shape() > large_r.upper_shape());
        assert!(small_r.theta_shape() > large_r.theta_shape());
        assert!((small_r.theta_shape() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_lower_below_upper_shape() {
        for n in [1_000usize, 10_000, 100_000] {
            let b = GeometricBounds::new(n, (n as f64).sqrt() / 10.0, 1.0);
            assert!(b.lower() <= b.upper(1.0) + 1e-9, "n={n}");
        }
    }

    #[test]
    fn geometric_lower_accounts_for_mobility() {
        let slow = GeometricBounds::new(10_000, 10.0, 0.0);
        let fast = GeometricBounds::new(10_000, 10.0, 50.0);
        assert!(fast.lower() < slow.lower());
    }

    #[test]
    fn geometric_expansion_regimes_meet_at_crossover() {
        let b = GeometricBounds::new(40_000, 20.0, 1.0);
        let alpha: f64 = 0.5;
        let beta = alpha.sqrt(); // makes the two regime formulas agree at h = αR²
        let crossover = b.expansion_crossover(alpha) as usize;
        let small = b.expansion_small(crossover, alpha);
        let large = b.expansion_large(crossover, beta);
        assert!((small - large).abs() / small < 1e-9);
        // Small sets expand by ~R² ≫ large sets' ~R/√h.
        assert!(b.expansion_small(1, alpha) > b.expansion_large(b.n / 2, beta));
    }

    #[test]
    fn edge_upper_shape_matches_known_regimes() {
        // Very dense: np̂ = n^0.9 → log n / log(np̂) ≈ 1.11, loglog small.
        let dense = EdgeBounds::new(100_000, 100_000f64.powf(-0.1));
        assert!(dense.theta_shape() < 1.5);
        // Near the connectivity threshold: np̂ = c log n → leading term
        // ≈ log n / log log n, which grows.
        let n = 100_000usize;
        let sparse = EdgeBounds::new(n, 3.0 * (n as f64).ln() / n as f64);
        assert!(sparse.theta_shape() > 3.0);
        assert!(sparse.upper_shape() > sparse.theta_shape());
    }

    #[test]
    fn edge_lower_below_upper() {
        for &(n, phat) in &[(1_000usize, 0.01f64), (10_000, 0.002), (100_000, 0.0002)] {
            let b = EdgeBounds::new(n, phat);
            assert!(b.lower() <= b.upper(1.0) + 1e-9, "n={n} p̂={phat}");
        }
    }

    #[test]
    fn edge_expansion_crossover_consistency() {
        let b = EdgeBounds::new(10_000, 0.005);
        let c = 20.0;
        let crossover = b.expansion_crossover(); // 200
        assert!((crossover - 200.0).abs() < 1e-9);
        // At the crossover the two formulas agree: np̂/c = n/(c · 1/p̂).
        let small = b.expansion_small(c);
        let large = b.expansion_large(crossover as usize, c);
        assert!((small - large).abs() < 1e-9);
    }

    #[test]
    fn worst_case_scale_is_large_for_sparse_birth_rates() {
        let p = 1e-6;
        assert_eq!(EdgeBounds::worst_case_scale(p), 1e6);
        // Stationary flooding for p̂ = c log n / n is polylogarithmic — the
        // "exponential gap" of Section 1.
        let n = 10_000usize;
        let stationary = EdgeBounds::new(n, 20.0 * (n as f64).ln() / n as f64);
        assert!(stationary.upper_shape() < 20.0);
        assert!(EdgeBounds::worst_case_scale(p) / stationary.upper_shape() > 1e4);
    }

    #[test]
    fn expected_degree() {
        let b = EdgeBounds::new(101, 0.1);
        assert!((b.expected_degree() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_radius_rejected() {
        GeometricBounds::new(100, 0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_phat_rejected() {
        EdgeBounds::new(100, 0.0);
    }
}
