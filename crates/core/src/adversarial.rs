//! Evolving graphs that separate diameter from flooding time.
//!
//! The Introduction of the paper points out that a diameter bound for a
//! dynamic network implies nothing about its flooding time: one can build an
//! `n`-node dynamic network whose every snapshot has constant diameter yet
//! whose flooding time is `Θ(n)`. The [`RotatingStar`] below is a concrete,
//! deterministic witness (and, being deterministic, it is trivially a
//! Markovian evolving graph with a one-point stationary distribution — one
//! that is *not* an expander, which is exactly why the general theorem's bound
//! degenerates for it).

use crate::evolving::EvolvingGraph;
use meg_graph::{Node, SnapshotBuf};

/// The rotating-star evolving graph.
///
/// At time step `t` the snapshot is a star centred at node `c_t = (offset + t)
/// mod n`. Every snapshot has diameter 2 (any two leaves are joined through
/// the centre), yet flooding started at the node "just behind" the rotation
/// needs `n` rounds: at each step the only uninformed neighbor of the informed
/// set is the current centre, so exactly one new node learns the message per
/// round until the rotation wraps around to an informed centre.
#[derive(Clone, Debug)]
pub struct RotatingStar {
    n: usize,
    offset: u64,
    time: u64,
    snapshot: SnapshotBuf,
}

impl RotatingStar {
    /// Creates a rotating star over `n ≥ 2` nodes with the centre at time `t`
    /// being `(offset + t) mod n`.
    pub fn new(n: usize, offset: u64) -> Self {
        assert!(n >= 2, "rotating star needs at least two nodes");
        RotatingStar {
            n,
            offset,
            time: 0,
            snapshot: SnapshotBuf::with_nodes(n),
        }
    }

    /// The worst-case source for this construction: the node that the
    /// rotation will visit *last* (the centre of the final step before
    /// wrap-around), giving flooding time exactly `n − 1`.
    pub fn worst_source(&self) -> Node {
        ((self.offset as usize + self.n - 1) % self.n) as Node
    }

    /// Flooding time from the worst-case source, by the closed-form analysis:
    /// at round `t` the only uninformed neighbor of the informed set is the
    /// current centre `c_t`, so exactly one node is informed per round until
    /// the last leaf joins at round `n − 1`.
    pub fn predicted_worst_flooding_time(&self) -> u64 {
        (self.n - 1) as u64
    }

    /// Diameter of every snapshot (2 whenever `n ≥ 3`, 1 for `n = 2`).
    pub fn snapshot_diameter(&self) -> u32 {
        if self.n >= 3 {
            2
        } else {
            1
        }
    }

    fn center_at(&self, t: u64) -> Node {
        (((self.offset + t) % self.n as u64) as usize) as Node
    }
}

impl EvolvingGraph for RotatingStar {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn advance(&mut self) -> &SnapshotBuf {
        let center = self.center_at(self.time);
        self.snapshot.begin(self.n);
        for v in 0..self.n as Node {
            if v != center {
                self.snapshot.push_edge(center.min(v), center.max(v));
            }
        }
        self.snapshot.build();
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

/// A "bottleneck" evolving graph: two cliques `A` and `B` of size `n/2`
/// connected at time `t` by the single bridge `{a_t, b_t}` that rotates
/// through `B`.
///
/// Every snapshot is connected with diameter 3, and flooding from inside `A`
/// completes in 3 rounds — this is the *contrast* construction showing that
/// constant diameter plus good expansion (inside the cliques) does give fast
/// flooding; only the rotating star's bad expansion makes flooding slow.
#[derive(Clone, Debug)]
pub struct RotatingBridge {
    n: usize,
    time: u64,
    snapshot: SnapshotBuf,
}

impl RotatingBridge {
    /// Creates the rotating-bridge graph on `n ≥ 4` nodes (`n` even: nodes
    /// `0..n/2` form clique `A`, nodes `n/2..n` clique `B`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4 && n.is_multiple_of(2), "need an even n ≥ 4");
        RotatingBridge {
            n,
            time: 0,
            snapshot: SnapshotBuf::with_nodes(n),
        }
    }

    /// Diameter of every snapshot (3: leaf of A → bridge endpoints → leaf of B).
    pub fn snapshot_diameter(&self) -> u32 {
        3
    }
}

impl EvolvingGraph for RotatingBridge {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn advance(&mut self) -> &SnapshotBuf {
        let half = self.n / 2;
        self.snapshot.begin(self.n);
        for u in 0..half {
            for v in (u + 1)..half {
                self.snapshot.push_edge(u as Node, v as Node);
            }
        }
        for u in half..self.n {
            for v in (u + 1)..self.n {
                self.snapshot.push_edge(u as Node, v as Node);
            }
        }
        let a = (self.time % half as u64) as u32;
        let b = (half as u64 + self.time % half as u64) as u32;
        self.snapshot.push_edge(a, b);
        self.snapshot.build();
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::{flood, FloodingOutcome};
    use meg_graph::{diameter, Graph};

    #[test]
    fn rotating_star_snapshots_have_constant_diameter() {
        let mut rs = RotatingStar::new(12, 0);
        for _ in 0..5 {
            let g = rs.advance().clone();
            assert_eq!(diameter::exact(&g).finite(), Some(2));
            assert_eq!(g.num_edges(), 11);
        }
        assert_eq!(rs.snapshot_diameter(), 2);
    }

    #[test]
    fn rotating_star_flooding_from_worst_source_takes_n_rounds() {
        for n in [8usize, 16, 33] {
            let mut rs = RotatingStar::new(n, 0);
            let source = rs.worst_source();
            let predicted = rs.predicted_worst_flooding_time();
            let r = flood(&mut rs, source, 4 * n as u64);
            assert_eq!(r.outcome, FloodingOutcome::Completed, "n={n}");
            assert_eq!(r.flooding_time(), Some(predicted), "n={n}");
        }
    }

    #[test]
    fn rotating_star_flooding_from_lucky_source_is_instant() {
        // Sourcing at the very first centre informs everyone in one round.
        let mut rs = RotatingStar::new(20, 0);
        let r = flood(&mut rs, 0, 100);
        assert_eq!(r.flooding_time(), Some(1));
    }

    #[test]
    fn rotating_star_informs_one_node_per_round_before_wraparound() {
        let n = 10usize;
        let mut rs = RotatingStar::new(n, 0);
        let source = rs.worst_source();
        let r = flood(&mut rs, source, 3 * n as u64);
        // counts: 1, 2, 3, ..., n-? — strictly one new node per round until the
        // final round informs the rest at once.
        for w in r.informed_per_round.windows(2).take(n - 2) {
            assert_eq!(w[1] - w[0], 1);
        }
        assert_eq!(*r.informed_per_round.last().unwrap(), n);
    }

    #[test]
    fn rotating_bridge_floods_fast_despite_same_diameter() {
        let mut rb = RotatingBridge::new(40);
        assert_eq!(rb.snapshot_diameter(), 3);
        let g = rb.advance().clone();
        assert_eq!(diameter::exact(&g).finite(), Some(3));
        let mut rb2 = RotatingBridge::new(40);
        let r = flood(&mut rb2, 1, 100);
        assert!(r.flooding_time().unwrap() <= 4);
    }

    #[test]
    #[should_panic]
    fn rotating_star_needs_two_nodes() {
        RotatingStar::new(1, 0);
    }

    #[test]
    #[should_panic]
    fn rotating_bridge_needs_even_n() {
        RotatingBridge::new(7);
    }
}
