//! Parameter-regime predicates.
//!
//! Each theorem in the paper holds only in a specific parameter regime
//! (connectivity thresholds, tightness windows). Encoding those regimes as
//! predicates keeps the experiment harness honest: every table row records
//! whether its configuration actually satisfies the hypotheses of the theorem
//! it is compared against.

/// The connectivity-threshold constant `c` in `R ≥ c√(log n)` and
/// `p̂ ≥ c log n / n`. The paper only requires "a sufficiently large
/// constant"; simulations show `c = 2` already gives connected snapshots with
/// overwhelming probability at the sizes we run, and the harness treats the
/// constant as configurable.
pub const DEFAULT_THRESHOLD_CONSTANT: f64 = 2.0;

/// Parameter regime of a geometric-MEG configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometricRegime {
    /// `R < c√(log n)`: below the connectivity threshold; Theorem 3.4 does not
    /// apply (snapshots are disconnected w.h.p.).
    BelowConnectivity,
    /// Theorem 3.4 applies (`c√(log n) ≤ R ≤ √n`) but the tightness window of
    /// Corollary 3.6 does not (either `R > √n/log log n` or `r ≫ R`).
    UpperBoundOnly,
    /// Corollary 3.6 applies: flooding time is `Θ(√n/R)`.
    Tight,
    /// `R > √n`: the transmission radius exceeds the region diagonal scale;
    /// snapshots are essentially complete graphs.
    Saturated,
}

/// Classifies a geometric-MEG configuration (density 1, square side `√n`).
pub fn geometric_regime(n: usize, radius: f64, move_radius: f64, c: f64) -> GeometricRegime {
    let sqrt_n = (n as f64).sqrt();
    let threshold = c * (n as f64).ln().max(1.0).sqrt();
    if radius < threshold {
        return GeometricRegime::BelowConnectivity;
    }
    if radius > sqrt_n {
        return GeometricRegime::Saturated;
    }
    let loglog_n = (n as f64).ln().ln().max(1.0);
    let tight_radius = radius <= sqrt_n / loglog_n;
    let tight_speed = move_radius <= radius;
    if tight_radius && tight_speed {
        GeometricRegime::Tight
    } else {
        GeometricRegime::UpperBoundOnly
    }
}

/// The geometric connectivity threshold `c√(log n)` (density 1).
pub fn geometric_connectivity_threshold(n: usize, c: f64) -> f64 {
    c * (n as f64).ln().max(1.0).sqrt()
}

/// Observation 3.3: for general density `δ(n)` the threshold scales to
/// `c√(log n / δ)`.
pub fn geometric_connectivity_threshold_density(n: usize, density: f64, c: f64) -> f64 {
    assert!(density > 0.0, "density must be positive");
    c * ((n as f64).ln().max(1.0) / density).sqrt()
}

/// Parameter regime of an edge-MEG configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeRegime {
    /// `p̂ < c log n / n`: below the connectivity threshold; Theorem 4.3 does
    /// not apply.
    BelowConnectivity,
    /// Theorem 4.3 applies but the tightness window of Corollary 4.5 does not
    /// (`p̂ > n^{1/log log n} / n`).
    UpperBoundOnly,
    /// Corollary 4.5 applies: flooding time is `Θ(log n / log(np̂))`.
    Tight,
}

/// Classifies an edge-MEG configuration by its stationary edge probability.
pub fn edge_regime(n: usize, p_hat: f64, c: f64) -> EdgeRegime {
    let threshold = c * (n as f64).ln() / n as f64;
    if p_hat < threshold {
        return EdgeRegime::BelowConnectivity;
    }
    let loglog_n = (n as f64).ln().ln().max(1.0);
    let tight_cap = (n as f64).powf(1.0 / loglog_n) / n as f64;
    if p_hat <= tight_cap {
        EdgeRegime::Tight
    } else {
        EdgeRegime::UpperBoundOnly
    }
}

/// The edge-MEG connectivity threshold `c log n / n` on `p̂`.
pub fn edge_connectivity_threshold(n: usize, c: f64) -> f64 {
    c * (n as f64).ln() / n as f64
}

/// Section 1 gap condition (first form): birth rate `p = O(1/n^{1+ε})` and
/// death rate `q = O(np/log n)` give an exponential gap between stationary and
/// worst-case flooding. The predicate checks the concrete inequalities with
/// constants 1.
pub fn exponential_gap_condition_sparse(n: usize, p: f64, q: f64, epsilon: f64) -> bool {
    let n = n as f64;
    p <= 1.0 / n.powf(1.0 + epsilon) && q <= n * p / n.ln()
}

/// Section 1 gap condition (second form): `p = O(log n / n)` and
/// `q = O(p √n)`.
pub fn exponential_gap_condition_moderate(n: usize, p: f64, q: f64) -> bool {
    let n = n as f64;
    p <= n.ln() / n && q <= p * n.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_regimes_partition_parameter_space() {
        let n = 100_000usize;
        let c = DEFAULT_THRESHOLD_CONSTANT;
        let thr = geometric_connectivity_threshold(n, c);
        assert_eq!(
            geometric_regime(n, thr * 0.5, 1.0, c),
            GeometricRegime::BelowConnectivity
        );
        assert_eq!(
            geometric_regime(n, thr * 2.0, 1.0, c),
            GeometricRegime::Tight
        );
        let sqrt_n = (n as f64).sqrt();
        assert_eq!(
            geometric_regime(n, sqrt_n * 0.9, 1.0, c),
            GeometricRegime::UpperBoundOnly
        );
        assert_eq!(
            geometric_regime(n, sqrt_n * 1.5, 1.0, c),
            GeometricRegime::Saturated
        );
        // High speed breaks tightness even at moderate radius.
        assert_eq!(
            geometric_regime(n, thr * 2.0, thr * 20.0, c),
            GeometricRegime::UpperBoundOnly
        );
    }

    #[test]
    fn geometric_threshold_scales_with_density() {
        let n = 10_000usize;
        let at_density_1 = geometric_connectivity_threshold(n, 1.0);
        let at_density_4 = geometric_connectivity_threshold_density(n, 4.0, 1.0);
        assert!((at_density_4 - at_density_1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_regimes_partition_parameter_space() {
        let n = 100_000usize;
        let c = DEFAULT_THRESHOLD_CONSTANT;
        let thr = edge_connectivity_threshold(n, c);
        assert_eq!(edge_regime(n, thr * 0.5, c), EdgeRegime::BelowConnectivity);
        assert_eq!(edge_regime(n, thr * 2.0, c), EdgeRegime::Tight);
        assert_eq!(edge_regime(n, 0.5, c), EdgeRegime::UpperBoundOnly);
    }

    #[test]
    fn edge_threshold_value() {
        let n = 1_000usize;
        let thr = edge_connectivity_threshold(n, 1.0);
        assert!((thr - (1_000f64).ln() / 1_000.0).abs() < 1e-15);
    }

    #[test]
    fn gap_conditions() {
        let n = 100_000usize;
        // p = n^{-1.5}, q = np/(2 log n): sparse gap condition holds.
        let p = (n as f64).powf(-1.5);
        let q = n as f64 * p / (2.0 * (n as f64).ln());
        assert!(exponential_gap_condition_sparse(n, p, q, 0.5));
        assert!(!exponential_gap_condition_sparse(n, 0.1, q, 0.5));
        // moderate form
        let p2 = (n as f64).ln() / n as f64;
        assert!(exponential_gap_condition_moderate(n, p2, p2));
        assert!(!exponential_gap_condition_moderate(n, 0.5, 0.5));
    }
}
