//! Bridging simulation and the general theorem.
//!
//! Theorem 2.5 needs an `(h_i, k_i)` expander sequence that holds w.h.p. for
//! the *stationary snapshot distribution*. In an experiment we do not know
//! that sequence analytically for an arbitrary model, but we can estimate it:
//! draw several snapshots from the evolving graph, measure each one's
//! empirical expansion profile, and keep the point-wise worst rates. Feeding
//! the result to [`ExpanderSequence`]
//! yields a fully data-driven flooding-time prediction that the measured
//! flooding time can be compared against (experiment `exp_general_bound`).

use crate::evolving::EvolvingGraph;
use crate::expansion::{ExpanderSequence, SequenceError};
use meg_graph::expansion::{ExpansionPoint, ExpansionProfile, SamplingStrategy};
use rand::Rng;

/// Options controlling [`measure_expansion_sequence`].
#[derive(Clone, Copy, Debug)]
pub struct ExpansionMeasurement {
    /// How many snapshots of the evolving graph to inspect.
    pub snapshots: usize,
    /// Candidate sets sampled per set size per snapshot.
    pub samples_per_size: usize,
    /// Sampling strategy for candidate sets.
    pub strategy: SamplingStrategy,
}

impl Default for ExpansionMeasurement {
    fn default() -> Self {
        ExpansionMeasurement {
            snapshots: 5,
            samples_per_size: 20,
            strategy: SamplingStrategy::Mixed,
        }
    }
}

/// Measures an empirical expansion profile of `meg` across several snapshots,
/// keeping the worst (smallest) observed rate at each set size.
pub fn measure_expansion_profile<M, R>(
    meg: &mut M,
    options: ExpansionMeasurement,
    rng: &mut R,
) -> ExpansionProfile
where
    M: EvolvingGraph,
    R: Rng,
{
    let mut merged: Vec<ExpansionPoint> = Vec::new();
    for _ in 0..options.snapshots.max(1) {
        let snapshot = meg.advance();
        let profile =
            ExpansionProfile::measure(snapshot, options.samples_per_size, options.strategy, rng);
        if merged.is_empty() {
            merged = profile.points;
        } else {
            for (acc, new) in merged.iter_mut().zip(profile.points.iter()) {
                debug_assert_eq!(acc.h, new.h, "profiles measured on the same node count");
                if new.min_ratio < acc.min_ratio {
                    acc.min_ratio = new.min_ratio;
                }
            }
        }
    }
    ExpansionProfile { points: merged }
}

/// Measures an empirical [`ExpanderSequence`] for `meg`
/// (worst observed expansion over several snapshots, made monotone).
pub fn measure_expansion_sequence<M, R>(
    meg: &mut M,
    options: ExpansionMeasurement,
    rng: &mut R,
) -> Result<ExpanderSequence, SequenceError>
where
    M: EvolvingGraph,
    R: Rng,
{
    let n = meg.num_nodes();
    let profile = measure_expansion_profile(meg, options, rng);
    ExpanderSequence::from_profile(n, &profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolving::FrozenGraph;
    use crate::flooding::flood_static;
    use meg_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn measured_bound_dominates_measured_flooding_on_good_expanders() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::complete(60);
        let mut frozen = FrozenGraph::new(g.clone());
        let seq =
            measure_expansion_sequence(&mut frozen, ExpansionMeasurement::default(), &mut rng)
                .unwrap();
        let bound = seq.flooding_bound();
        let measured = flood_static(&g, 0).flooding_time().unwrap() as f64;
        assert!(
            bound >= measured,
            "Lemma 2.4 bound {bound} must dominate measured flooding {measured}"
        );
    }

    #[test]
    fn measured_bound_dominates_flooding_on_grid() {
        // Grids are weak expanders; the bound is far from tight but must still
        // be an upper bound on the measured flooding time.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::grid2d(8, 8);
        let mut frozen = FrozenGraph::new(g.clone());
        let options = ExpansionMeasurement {
            snapshots: 3,
            samples_per_size: 40,
            strategy: SamplingStrategy::Mixed,
        };
        let seq = measure_expansion_sequence(&mut frozen, options, &mut rng).unwrap();
        let bound = seq.flooding_bound();
        // Source near the centre of the grid (the bound is a worst-case-source
        // statement only when fed the exact worst-case expansion; the sampled
        // profile is an estimate, so compare against a typical source).
        let measured = flood_static(&g, 27).flooding_time().unwrap() as f64;
        assert!(bound >= measured, "bound {bound} vs measured {measured}");
    }

    #[test]
    fn profile_merging_keeps_worst_rate() {
        // An evolving graph alternating between a complete graph and a cycle:
        // the merged profile must reflect the cycle's (much worse) expansion.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let complete = generators::complete(24);
        let cycle = generators::cycle(24);
        let mut meg = crate::evolving::ScheduledGraph::new(vec![complete.clone(), cycle.clone()]);
        let options = ExpansionMeasurement {
            snapshots: 4,
            samples_per_size: 30,
            strategy: SamplingStrategy::BfsBalls,
        };
        let merged = measure_expansion_profile(&mut meg, options, &mut rng);
        // At set size 4, the cycle's BFS balls expand by exactly 2/4 = 0.5,
        // while the complete graph expands by 20/4 = 5.
        let at_4 = merged.points.iter().find(|p| p.h == 4).unwrap();
        assert!(at_4.min_ratio <= 0.5 + 1e-12);
    }

    #[test]
    fn default_options_are_sane() {
        let o = ExpansionMeasurement::default();
        assert!(o.snapshots >= 1);
        assert!(o.samples_per_size >= 1);
    }
}
