//! Property tests for the protocol state machines: structural invariants
//! that must hold for *every* machine after *every* round, on random static
//! and random dynamic (scheduled) graphs.
//!
//! * the per-state tallies partition `n` at all times;
//! * SIR recovery is monotone — a removed node never becomes infectious
//!   again, and coverage (ever-infected) never shrinks;
//! * Byzantine correct-information coverage never exceeds total coverage;
//! * completion predicates terminate within their provable round caps
//!   (SIR within `n·d` infectious rounds, parsimonious within `n·k` active
//!   rounds) — the driver never spins past them.

use meg_core::evolving::{EvolvingGraph, ScheduledGraph};
use meg_core::protocols::{
    run_machine, ByzantineMachine, EpidemicMachine, EpidemicState, FloodMachine,
    ParsimoniousMachine, ProtocolMachine, PushPullMachine, RumorMachine, RunOutcome,
};
use meg_graph::{generators, Node};
use proptest::prelude::*;
use proptest::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random dynamic graph: a short cyclic schedule of Erdős–Rényi
/// snapshots (possibly disconnected, possibly empty — machines must cope).
fn random_meg(n: usize, p: f64, snapshots: usize, seed: u64) -> ScheduledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    ScheduledGraph::new(
        (0..snapshots)
            .map(|_| generators::erdos_renyi(n, p, &mut rng))
            .collect(),
    )
}

/// Steps `machine` over `meg` for at most `rounds` rounds, asserting after
/// every round that the state tallies partition `n`.
fn check_partition<P: ProtocolMachine>(
    machine: &mut P,
    meg: &mut ScheduledGraph,
    rounds: u64,
    rng: &mut ChaCha8Rng,
) -> Result<(), TestCaseError> {
    let n = machine.num_nodes();
    for _ in 0..rounds {
        let total: usize = machine.state_counts().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, n, "state counts must partition n");
        prop_assert!(machine.coverage() <= n);
        if machine.is_complete() || !machine.can_progress() {
            break;
        }
        let snapshot = meg.advance();
        machine.step(snapshot, rng);
    }
    let total: usize = machine.state_counts().iter().map(|&(_, c)| c).sum();
    prop_assert_eq!(total, n);
    Ok(())
}

fn arb_world() -> impl Strategy<Value = (usize, f64, u64)> {
    // (n, edge probability, seed)
    (2usize..24, 0.0f64..=1.0, 0u64..u64::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every machine's state tallies partition `n` after every round.
    #[test]
    fn state_counts_partition_n_for_every_machine(
        (n, p, seed) in arb_world(),
        beta in 0.0f64..=1.0,
        k in 1u64..5,
        contagion in 0.0f64..=1.0,
        d in 1u64..4,
        w in 0u64..3,
        b in 0usize..8,
    ) {
        let rounds = 20u64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(&mut FloodMachine::new(n, 0, beta), &mut meg, rounds, &mut rng)?;
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(&mut ParsimoniousMachine::new(n, 0, k), &mut meg, rounds, &mut rng)?;
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(&mut PushPullMachine::new(n, 0), &mut meg, rounds, &mut rng)?;
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(&mut RumorMachine::new(n, 0), &mut meg, rounds, &mut rng)?;
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(
            &mut EpidemicMachine::new(n, 0, contagion, d, None),
            &mut meg, rounds, &mut rng,
        )?;
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(
            &mut EpidemicMachine::new(n, 0, contagion, d, Some(w)),
            &mut meg, rounds, &mut rng,
        )?;
        let mut meg = random_meg(n, p, 3, seed);
        check_partition(&mut ByzantineMachine::new(n, 0, b), &mut meg, rounds, &mut rng)?;
    }

    /// SIR is monotone: a removed node stays removed forever, an
    /// ever-infected node stays counted, and coverage never decreases.
    #[test]
    fn sir_recovery_is_monotone_and_permanent(
        (n, p, seed) in arb_world(),
        contagion in 0.0f64..=1.0,
        d in 1u64..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 2);
        let mut meg = random_meg(n, p, 4, seed);
        let mut m = EpidemicMachine::new(n, 0, contagion, d, None);
        let mut recovered = vec![false; n];
        let mut last_coverage = m.coverage();
        for _ in 0..40 {
            if m.is_complete() {
                break;
            }
            let snapshot = meg.advance();
            m.step(snapshot, &mut rng);
            for v in 0..n as Node {
                let state = m.state_of(v);
                if recovered[v as usize] {
                    prop_assert_eq!(
                        state,
                        EpidemicState::Recovered,
                        "SIR removal must be permanent"
                    );
                } else if state == EpidemicState::Recovered {
                    recovered[v as usize] = true;
                }
            }
            prop_assert!(m.coverage() >= last_coverage, "ever-infected never shrinks");
            last_coverage = m.coverage();
        }
    }

    /// Correct-information coverage can never exceed total coverage, and
    /// both are bounded by `n`; completion means everyone holds *some*
    /// version of the rumor.
    #[test]
    fn byzantine_correct_coverage_is_bounded_by_total_coverage(
        (n, p, seed) in arb_world(),
        b in 0usize..10,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 3);
        let mut meg = random_meg(n, p, 4, seed);
        let mut m = ByzantineMachine::new(n, 0, b);
        for _ in 0..30 {
            prop_assert!(m.correct_count() <= m.coverage());
            prop_assert!(m.coverage() <= n);
            if m.is_complete() {
                prop_assert_eq!(m.coverage(), n);
                break;
            }
            let snapshot = meg.advance();
            m.step(snapshot, &mut rng);
        }
    }

    /// SIR always goes extinct within `n·d + 2` rounds: the total remaining
    /// infectious time is at most `n·d` and every round with an infectious
    /// node burns at least one unit. The driver must report `Completed`
    /// inside that cap — never spin to the budget.
    #[test]
    fn sir_terminates_within_its_provable_round_cap(
        (n, p, seed) in arb_world(),
        contagion in 0.0f64..=1.0,
        d in 1u64..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 4);
        let mut meg = random_meg(n, p, 3, seed);
        let mut m = EpidemicMachine::new(n, 0, contagion, d, None);
        let cap = n as u64 * d + 2;
        let r = run_machine(&mut meg, &mut m, cap, &mut rng);
        prop_assert_eq!(r.outcome, RunOutcome::Completed);
        prop_assert!(r.rounds < cap);
        prop_assert_eq!(m.infectious_count(), 0);
    }

    /// Parsimonious flooding either completes or *proves* a stall within
    /// `n·k + 2` rounds (total activity mass is at most `n·k`): a run is
    /// never censored at that budget.
    #[test]
    fn parsimonious_never_reaches_a_budget_of_n_times_k(
        (n, p, seed) in arb_world(),
        k in 1u64..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 5);
        let mut meg = random_meg(n, p, 3, seed);
        let mut m = ParsimoniousMachine::new(n, 0, k);
        let cap = n as u64 * k + 2;
        let r = run_machine(&mut meg, &mut m, cap, &mut rng);
        prop_assert!(
            r.outcome != RunOutcome::Censored,
            "parsimonious must complete or stall within n·k rounds, got {:?} after {}",
            r.outcome,
            r.rounds
        );
    }
}
