//! Property-based tests for the flooding engine, the protocol variants and the
//! bound evaluators.

use meg_core::adversarial::RotatingStar;
use meg_core::bounds::{EdgeBounds, GeometricBounds};
use meg_core::evolving::{EvolvingGraph, FrozenGraph, ScheduledGraph};
use meg_core::expansion::ExpanderSequence;
use meg_core::flooding::{flood, flood_static, FloodingOutcome};
use meg_core::protocols::{parsimonious_flood, probabilistic_flood, push_pull_gossip};
use meg_graph::{generators, AdjacencyList, Graph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..(4 * n)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flooding_time_is_bounded_by_n_minus_1_on_connected_static_graphs((n, edges) in edges_strategy(50), s in 0u32..50) {
        let g = AdjacencyList::from_edges(n, edges);
        let s = s % n as u32;
        let result = flood_static(&g, s);
        if let Some(t) = result.flooding_time() {
            prop_assert!(t <= (n - 1) as u64);
            prop_assert_eq!(result.informed.len(), n);
        }
    }

    #[test]
    fn flooding_never_loses_informed_nodes_on_scheduled_graphs(
        (n, edges_a) in edges_strategy(30),
        edges_b in proptest::collection::vec((0u32..30, 0u32..30), 0..60),
        s in 0u32..30,
    ) {
        let a = AdjacencyList::from_edges(n, edges_a);
        let b = AdjacencyList::from_edges(
            n,
            edges_b.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)),
        );
        let mut meg = ScheduledGraph::new(vec![a, b]);
        let result = flood(&mut meg, s % n as u32, 4 * n as u64);
        for w in result.informed_per_round.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(result.informed.contains(s % n as u32));
        prop_assert_eq!(
            result.outcome == FloodingOutcome::Completed,
            result.informed.len() == n
        );
    }

    #[test]
    fn probabilistic_flooding_with_beta_one_equals_flooding((n, edges) in edges_strategy(40), s in 0u32..40, seed in 0u64..100) {
        let g = AdjacencyList::from_edges(n, edges);
        let s = s % n as u32;
        let plain = flood_static(&g, s);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut frozen = FrozenGraph::new(g);
        let prob = probabilistic_flood(&mut frozen, s, 1.0, (2 * n) as u64, &mut rng);
        prop_assert_eq!(prob.informed_per_round.last(), plain.informed_per_round.last());
        if let Some(t) = plain.flooding_time() {
            prop_assert!(prob.completed);
            prop_assert_eq!(prob.rounds, t);
        }
    }

    #[test]
    fn parsimonious_flooding_never_beats_plain_flooding_coverage(
        (n, edges) in edges_strategy(40),
        s in 0u32..40,
        k in 1u64..4,
    ) {
        let g = AdjacencyList::from_edges(n, edges);
        let s = s % n as u32;
        let budget = (2 * n) as u64;
        let plain = flood_static(&g, s);
        let mut frozen = FrozenGraph::new(g);
        let pars = parsimonious_flood(&mut frozen, s, k, budget);
        // On static graphs parsimonious flooding reaches exactly the same set.
        prop_assert_eq!(pars.informed_count(), plain.informed.len());
    }

    #[test]
    fn push_pull_gossip_informs_only_reachable_nodes((n, edges) in edges_strategy(30), s in 0u32..30, seed in 0u64..100) {
        let g = AdjacencyList::from_edges(n, edges);
        let s = s % n as u32;
        let reachable = meg_graph::bfs::reachable_count(&g, s);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut frozen = FrozenGraph::new(g);
        let run = push_pull_gossip(&mut frozen, s, (20 * n) as u64, &mut rng);
        prop_assert!(run.informed_count() <= reachable);
        prop_assert!(run.informed_count() >= 1);
    }

    #[test]
    fn rotating_star_flooding_matches_closed_form(n in 2usize..60, offset in 0u64..100) {
        let mut star = RotatingStar::new(n, offset);
        let source = star.worst_source();
        let predicted = star.predicted_worst_flooding_time();
        let measured = flood(&mut star, source, (4 * n) as u64).flooding_time();
        prop_assert_eq!(measured, Some(predicted));
    }

    #[test]
    fn expander_sequence_bound_is_monotone_in_expansion(
        n in 10usize..2000,
        k_small in 0.1f64..1.0,
        boost in 1.1f64..10.0,
    ) {
        let weak = ExpanderSequence::new(n, vec![n / 2], vec![k_small]).unwrap();
        let strong = ExpanderSequence::new(n, vec![n / 2], vec![k_small * boost]).unwrap();
        prop_assert!(strong.flooding_bound() <= weak.flooding_bound());
    }

    #[test]
    fn geometric_bounds_are_ordered_and_positive(
        n in 10usize..1_000_000,
        radius in 1.0f64..100.0,
        move_radius in 0.0f64..100.0,
    ) {
        let b = GeometricBounds::new(n, radius, move_radius);
        prop_assert!(b.lower() >= 0.0);
        prop_assert!(b.upper_shape() > 0.0);
        prop_assert!(b.lower() <= b.upper(1.0) + 1e-9);
        // faster nodes can only lower the lower bound
        let faster = GeometricBounds::new(n, radius, move_radius + 1.0);
        prop_assert!(faster.lower() <= b.lower() + 1e-12);
    }

    #[test]
    fn edge_bounds_are_ordered_and_positive(n in 10usize..1_000_000, exponent in 0.1f64..0.9) {
        // p̂ = n^{-exponent}, always above the connectivity threshold for the
        // exponents sampled here when n is large; the ordering must hold regardless.
        let p_hat = (n as f64).powf(-exponent).min(0.99);
        let b = EdgeBounds::new(n, p_hat);
        prop_assert!(b.theta_shape() > 0.0);
        prop_assert!(b.lower() <= b.upper(1.0) + 1e-9);
        prop_assert!(b.expected_degree() >= 0.0);
    }

    #[test]
    fn frozen_graph_time_advances_by_one_per_snapshot(steps in 1usize..50) {
        let mut frozen = FrozenGraph::new(generators::cycle(8));
        for expected in 1..=steps as u64 {
            let snapshot_edges = frozen.advance().num_edges();
            prop_assert_eq!(snapshot_edges, 8);
            prop_assert_eq!(frozen.time(), expected);
        }
    }
}
