//! Property-based tests for the static-graph substrate.

use meg_graph::{bfs, connectivity, diameter, expansion, generators, AdjacencyList, Csr, Graph};
use proptest::prelude::*;

fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..(4 * n)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_and_adjacency_agree((n, edges) in edges_strategy(60)) {
        let adj = AdjacencyList::from_edges(n, edges);
        let csr = Csr::from_adjacency(&adj);
        prop_assert_eq!(adj.num_nodes(), csr.num_nodes());
        prop_assert_eq!(adj.num_edges(), csr.num_edges());
        for u in 0..n as u32 {
            prop_assert_eq!(Graph::degree(&adj, u), Graph::degree(&csr, u));
            let mut a = adj.neighbors_vec(u);
            let mut c = csr.neighbors_vec(u);
            a.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(a, c);
        }
    }

    #[test]
    fn handshake_lemma_holds((n, edges) in edges_strategy(80)) {
        let g = AdjacencyList::from_edges(n, edges);
        let degree_sum: usize = (0..n as u32).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_like_step((n, edges) in edges_strategy(50), s in 0u32..50) {
        let g = AdjacencyList::from_edges(n, edges);
        let s = s % n as u32;
        let dist = bfs::distances(&g, s);
        prop_assert_eq!(dist[s as usize], 0);
        // every edge connects nodes whose distances differ by at most 1
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            match (du == bfs::UNREACHABLE, dv == bfs::UNREACHABLE) {
                (true, true) => {}
                (false, false) => prop_assert!(du.abs_diff(dv) <= 1),
                _ => prop_assert!(false, "edge between reachable and unreachable node"),
            }
        }
    }

    #[test]
    fn components_partition_the_nodes((n, edges) in edges_strategy(60)) {
        let g = AdjacencyList::from_edges(n, edges);
        let comps = connectivity::connected_components(&g);
        prop_assert_eq!(comps.labels.len(), n);
        prop_assert_eq!(comps.sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(comps.count() == 1, connectivity::is_connected(&g));
        // nodes joined by an edge share a label
        for (u, v) in g.edges() {
            prop_assert_eq!(comps.labels[u as usize], comps.labels[v as usize]);
        }
    }

    #[test]
    fn double_sweep_bounds_exact_diameter((n, edges) in edges_strategy(40), s in 0u32..40) {
        let g = AdjacencyList::from_edges(n, edges);
        let s = s % n as u32;
        match (diameter::exact(&g), diameter::double_sweep_lower_bound(&g, s)) {
            (diameter::Diameter::Finite(exact), diameter::Diameter::Finite(lower)) => {
                prop_assert!(lower <= exact);
                prop_assert!(2 * lower >= exact, "double sweep is a 2-approximation");
            }
            (diameter::Diameter::Infinite, _) => {}
            (finite, infinite) => {
                prop_assert!(false, "exact {:?} but double sweep {:?}", finite, infinite);
            }
        }
    }

    #[test]
    fn erdos_renyi_monotone_in_p(n in 5usize..80, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng1 = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
        let sparse = generators::erdos_renyi(n, 0.05, &mut rng1);
        let dense = generators::erdos_renyi(n, 0.6, &mut rng2);
        // not a coupling, but with these p values and n ≥ 5 the ordering of the
        // expected edge counts is overwhelmingly respected; allow slack.
        prop_assert!(dense.num_edges() + 3 >= sparse.num_edges());
    }

    #[test]
    fn expansion_ratio_of_half_the_nodes_is_bounded_by_one((n, edges) in edges_strategy(30)) {
        // |N(I)| ≤ n − |I|, so for |I| = ⌈n/2⌉ the ratio is at most ~1.
        let g = AdjacencyList::from_edges(n, edges);
        let h = n.div_ceil(2);
        let set = meg_graph::NodeSet::from_iter(n, 0..h as u32);
        let ratio = expansion::expansion_ratio(&g, &set);
        prop_assert!(ratio <= (n - h) as f64 / h as f64 + 1e-12);
    }

    #[test]
    fn bfs_ball_is_connected_and_has_requested_size((n, edges) in edges_strategy(40), seed in 0u32..40, target in 1usize..20) {
        let g = AdjacencyList::from_edges(n, edges);
        let seed_node = seed % n as u32;
        let ball = expansion::bfs_ball(&g, seed_node, target);
        prop_assert!(ball.contains(seed_node));
        let component = bfs::reachable_count(&g, seed_node);
        prop_assert_eq!(ball.len(), target.min(component));
    }
}
