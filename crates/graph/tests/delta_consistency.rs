//! Delta-edit consistency of [`SnapshotBuf`].
//!
//! After any sequence of [`SnapshotBuf::apply_delta`] calls — random
//! birth/death batches, including batches large enough to exhaust the
//! per-row slack and trip the rebuild fallback — the buffer must represent
//! exactly the edge set a from-scratch build of the same set represents:
//! identical node count, edge count, degrees, and per-row neighbor *sets*.
//! (Within-row neighbor order is explicitly not part of the contract:
//! deaths swap-remove within the live prefix, so rows are compared sorted.)

use meg_graph::{Graph, Node, SnapshotBuf};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One build-then-edit scenario: node count, initial edges, slack, and a
/// sequence of delta rounds given as fractions (how much of the current edge
/// set dies, how much of the complement is born).
fn scenario_strategy() -> impl Strategy<Value = (usize, u32, Vec<(u64, u64)>, u64)> {
    (
        4usize..40,
        0u32..5,
        proptest::collection::vec((0u64..=100, 0u64..=100), 1..8),
        0u64..u64::MAX,
    )
}

/// Deterministic splitmix64 step, used to derive reproducible pseudo-random
/// choices inside a proptest case without dragging an RNG dependency in.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rebuilds `edges` from scratch (plain `build`, no slack) and checks the
/// delta-maintained `buf` agrees with it on everything observable.
fn assert_matches_fresh_build(
    buf: &SnapshotBuf,
    n: usize,
    edges: &BTreeSet<(Node, Node)>,
) -> Result<(), TestCaseError> {
    let mut fresh = SnapshotBuf::new();
    fresh.begin(n);
    for &(u, v) in edges {
        fresh.push_edge(u, v);
    }
    fresh.build();
    prop_assert_eq!(buf.num_nodes(), fresh.num_nodes());
    prop_assert_eq!(buf.num_edges(), fresh.num_edges());
    for u in 0..n as Node {
        prop_assert_eq!(buf.degree(u), fresh.degree(u), "degree of {}", u);
        let mut got = buf.neighbors(u).to_vec();
        let mut want = fresh.neighbors(u).to_vec();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want, "row of {}", u);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn apply_delta_equals_from_scratch_rebuild(
        (n, slack, rounds, seed) in scenario_strategy()
    ) {
        let mut state = seed;
        // Initial edge set: each pair present with probability ~1/3.
        let mut edges: BTreeSet<(Node, Node)> = BTreeSet::new();
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                if splitmix(&mut state).is_multiple_of(3) {
                    edges.insert((u, v));
                }
            }
        }
        let mut buf = SnapshotBuf::new();
        buf.begin(n);
        for &(u, v) in &edges {
            buf.push_edge(u, v);
        }
        buf.build_with_slack(slack);
        assert_matches_fresh_build(&buf, n, &edges)?;

        for &(death_pct, birth_pct) in &rounds {
            // Deaths: a random subset of the current edges.
            let deaths: Vec<(Node, Node)> = edges
                .iter()
                .copied()
                .filter(|_| splitmix(&mut state) % 100 < death_pct)
                .collect();
            for d in &deaths {
                edges.remove(d);
            }
            // Births: a random subset of the now-absent pairs. High birth
            // percentages overwhelm any slack level and force the rebuild
            // fallback; low ones stay on the in-place path.
            let mut births: Vec<(Node, Node)> = Vec::new();
            for u in 0..n as Node {
                for v in (u + 1)..n as Node {
                    if !edges.contains(&(u, v)) && splitmix(&mut state) % 100 < birth_pct {
                        births.push((u, v));
                        edges.insert((u, v));
                    }
                }
            }
            let outcome = buf.apply_delta(&births, &deaths);
            // Deaths swap-remove within the live prefix and never consume
            // slack, so a births-free round must stay on the in-place path.
            if births.is_empty() {
                prop_assert!(
                    !outcome.is_rebuilt(),
                    "deaths alone must never trip the rebuild fallback"
                );
            }
            assert_matches_fresh_build(&buf, n, &edges)?;
        }
    }

    #[test]
    fn slack_exhaustion_fallback_is_transparent(n in 4usize..30, slack in 0u32..3) {
        // Start from an empty graph and insert a full star at node 0 in one
        // delta: with any bounded slack this must trip the fallback, after
        // which the buffer must still answer queries exactly like a fresh
        // build — and keep absorbing further deltas.
        let n_nodes = n as Node;
        let mut buf = SnapshotBuf::new();
        buf.begin(n);
        buf.build_with_slack(slack);
        let star: Vec<(Node, Node)> = (1..n_nodes).map(|v| (0, v)).collect();
        // n − 1 ≥ 3 new arcs at the hub against slack ≤ 2: the outcome must
        // report the fallback, and size the rebuild it paid for.
        let outcome = buf.apply_delta(&star, &[]);
        prop_assert!(outcome.is_rebuilt(), "a full star must exhaust slack {}", slack);
        prop_assert!(outcome.rebuild_bytes() > 0, "a rebuild has a byte cost");
        let mut edges: BTreeSet<(Node, Node)> = star.iter().copied().collect();
        assert_matches_fresh_build(&buf, n, &edges)?;
        // Kill the whole star again (deaths-only: in-place), then add a ring
        // (may or may not exhaust the post-rebuild slack — outcome unpinned).
        let outcome = buf.apply_delta(&[], &star);
        prop_assert!(!outcome.is_rebuilt(), "deaths-only round must patch in place");
        edges.clear();
        let ring: Vec<(Node, Node)> = (0..n_nodes)
            .map(|u| {
                let v = (u + 1) % n_nodes;
                (u.min(v), u.max(v))
            })
            .collect();
        let _ = buf.apply_delta(&ring, &[]);
        edges.extend(ring.iter().copied());
        assert_matches_fresh_build(&buf, n, &edges)?;
    }
}
