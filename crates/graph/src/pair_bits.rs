//! Word-packed bitset over the `n(n−1)/2` unordered node pairs.
//!
//! The dense edge-MEG keeps one two-state chain per potential edge. Packing
//! the per-pair alive flags 64-to-a-word (instead of `Vec<bool>`, one byte
//! per pair) shrinks the stepping loop's memory traffic 8×, makes flip
//! accounting popcount-cheap (`old ^ new`, then `count_ones` per word), and
//! lets snapshot rebuilds skip empty regions by walking set bits with
//! `trailing_zeros` instead of scanning every pair.
//!
//! Pairs are indexed row-major: index `k` of pair `{a, b}` (`a < b`) is
//! `row_start(a) + (b − a − 1)` with `row_start(a) = a·n − a(a+1)/2` — the
//! same linearization as `meg_graph::generators::pair_from_index`.
//!
//! **Invariant:** bits at positions `len..` of the last word are always zero.
//! [`words_mut`](PairBits::words_mut) exposes the raw words for in-place
//! word-at-a-time stepping; callers that write through it must preserve the
//! invariant (stepping a partial tail word with an `nbits`-limited kernel
//! does so naturally).

/// A fixed-universe bitset over pair indices `0 .. len`, packed 64 per word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairBits {
    words: Vec<u64>,
    len: usize,
}

impl PairBits {
    /// Creates an all-zeros bitset over `0 .. len`.
    pub fn new(len: usize) -> Self {
        PairBits {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-ones bitset over `0 .. len` (tail bits zero).
    pub fn full(len: usize) -> Self {
        let mut bits = Self::new(len);
        for w in bits.words.iter_mut() {
            *w = u64::MAX;
        }
        let rem = len % 64;
        if rem != 0 {
            if let Some(last) = bits.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        bits
    }

    /// Number of pair slots (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the universe is empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test for pair index `k`.
    #[inline]
    pub fn get(&self, k: usize) -> bool {
        debug_assert!(k < self.len, "pair index {k} outside universe {}", self.len);
        (self.words[k / 64] >> (k % 64)) & 1 == 1
    }

    /// Sets bit `k`.
    #[inline]
    pub fn set(&mut self, k: usize) {
        debug_assert!(k < self.len, "pair index {k} outside universe {}", self.len);
        self.words[k / 64] |= 1u64 << (k % 64);
    }

    /// Clears bit `k`.
    #[inline]
    pub fn clear(&mut self, k: usize) {
        debug_assert!(k < self.len, "pair index {k} outside universe {}", self.len);
        self.words[k / 64] &= !(1u64 << (k % 64));
    }

    /// Writes bit `k` (branchless).
    #[inline]
    pub fn put(&mut self, k: usize, value: bool) {
        debug_assert!(k < self.len, "pair index {k} outside universe {}", self.len);
        let w = &mut self.words[k / 64];
        let mask = 1u64 << (k % 64);
        *w = (*w & !mask) | (mask * value as u64);
    }

    /// Number of set bits (alive pairs), one popcount per word.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words, low bit of word 0 = pair 0. Bits `len..` of the
    /// last word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words for in-place word-at-a-time
    /// stepping. Callers must keep bits `len..` of the last word zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Number of valid bits in the last word (64 when `len` is a positive
    /// multiple of 64; 0 only when `len == 0`).
    pub fn last_word_bits(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            let rem = (self.len % 64) as u32;
            if rem == 0 {
                64
            } else {
                rem
            }
        }
    }

    /// Invokes `f` on every set bit in increasing index order, skipping
    /// zero words, via `trailing_zeros` within each word.
    #[inline]
    pub fn for_each_set_bit(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(wi * 64 + b);
                bits &= bits - 1;
            }
        }
    }

    /// Debug check of the tail invariant: bits `len..` of the last word are
    /// zero. Cheap enough to call from debug assertions in hot callers.
    pub fn tail_is_clean(&self) -> bool {
        let rem = self.len % 64;
        if rem == 0 {
            return true;
        }
        match self.words.last() {
            Some(&last) => last >> rem == 0,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zeros() {
        let b = PairBits::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.words().len(), 3);
        assert!((0..130).all(|k| !b.get(k)));
        assert!(b.tail_is_clean());
    }

    #[test]
    fn full_sets_everything_and_keeps_tail_clean() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let b = PairBits::full(len);
            assert_eq!(b.count_ones(), len, "len {len}");
            assert!((0..len).all(|k| b.get(k)));
            assert!(b.tail_is_clean(), "len {len}");
        }
    }

    #[test]
    fn empty_universe() {
        let b = PairBits::new(0);
        assert!(b.is_empty());
        assert_eq!(b.words().len(), 0);
        assert_eq!(b.last_word_bits(), 0);
        assert!(b.tail_is_clean());
        let mut visited = 0;
        b.for_each_set_bit(|_| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn set_clear_put_roundtrip() {
        let mut b = PairBits::new(200);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert_eq!(b.count_ones(), 4);
        assert!(b.get(63) && b.get(64));
        b.clear(63);
        assert!(!b.get(63));
        b.put(63, true);
        assert!(b.get(63));
        b.put(63, false);
        b.put(64, false);
        assert_eq!(b.count_ones(), 2);
        assert!(b.tail_is_clean());
    }

    #[test]
    fn for_each_set_bit_in_order() {
        let mut b = PairBits::new(300);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &k in &idx {
            b.set(k);
        }
        let mut seen = Vec::new();
        b.for_each_set_bit(|k| seen.push(k));
        assert_eq!(seen, idx);
    }

    #[test]
    fn last_word_bits_cases() {
        assert_eq!(PairBits::new(64).last_word_bits(), 64);
        assert_eq!(PairBits::new(65).last_word_bits(), 1);
        assert_eq!(PairBits::new(127).last_word_bits(), 63);
        assert_eq!(PairBits::new(128).last_word_bits(), 64);
    }

    #[test]
    fn words_mut_supports_in_place_stepping() {
        let mut b = PairBits::new(100);
        // Simulate a word-stepper writing the low `nbits` of each word.
        let nbits_last = b.last_word_bits();
        assert_eq!(nbits_last, 36);
        let n_words = b.words().len();
        for (wi, w) in b.words_mut().iter_mut().enumerate() {
            let nbits = if wi + 1 == n_words { nbits_last } else { 64 };
            *w = if nbits == 64 {
                u64::MAX
            } else {
                (1u64 << nbits) - 1
            };
        }
        assert!(b.tail_is_clean());
        assert_eq!(b.count_ones(), 100);
    }

    #[test]
    fn tail_is_clean_detects_violation() {
        let mut b = PairBits::new(100);
        b.words_mut()[1] = 1u64 << 40; // bit 104 > len
        assert!(!b.tail_is_clean());
    }
}
