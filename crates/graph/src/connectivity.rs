//! Connectivity: connected components, a union–find structure, and
//! connectivity predicates.
//!
//! The paper's bounds assume the stationary snapshots are connected
//! (`R ≥ c√(log n)` for geometric-MEG, `p̂ ≥ c log n / n` for edge-MEG).
//! Experiments verify connectivity before trusting a measured flooding time,
//! and the disconnected regime is itself an interesting ablation.

use crate::{Graph, Node};

/// Classic union–find (disjoint set union) with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the components of `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Summary of the component structure of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Component id of each node (ids are `0 .. num_components`, assigned in
    /// order of first appearance by node index).
    pub labels: Vec<u32>,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for the empty graph on zero nodes).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Computes connected components by repeated BFS.
pub fn connected_components<G: Graph + ?Sized>(g: &G) -> Components {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        labels[start] = id;
        queue.push_back(start as Node);
        while let Some(u) = queue.pop_front() {
            size += 1;
            g.for_each_neighbor(u, &mut |v| {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = id;
                    queue.push_back(v);
                }
            });
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Returns `true` if the graph is connected (graphs on 0 or 1 nodes count as
/// connected).
pub fn is_connected<G: Graph + ?Sized>(g: &G) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    crate::bfs::reachable_count(g, 0) == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, AdjacencyList};

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(1), 3);
        assert_eq!(uf.component_size(4), 1);
    }

    #[test]
    fn components_of_two_triangles() {
        let g = AdjacencyList::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.sizes, vec![3, 3]);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_predicates() {
        assert!(is_connected(&generators::complete(10)));
        assert!(is_connected(&generators::path(10)));
        assert!(is_connected(&AdjacencyList::new(1)));
        assert!(is_connected(&AdjacencyList::new(0)));
        assert!(!is_connected(&AdjacencyList::new(2)));
    }

    #[test]
    fn isolated_nodes_are_singleton_components() {
        let g = AdjacencyList::from_edges(4, [(1, 2)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest(), 2);
    }
}
