//! Diameter computation: exact (all-pairs BFS), lower-bounded by double sweep,
//! and estimated by sampled eccentricities.
//!
//! The paper's headline conclusion is that, under mild conditions, flooding on
//! a stationary MEG takes about as long as the *diameter of a static
//! stationary snapshot* — so the experiments repeatedly compare measured
//! flooding times against snapshot diameters.

use crate::{bfs, Graph, Node};
use rand::Rng;

/// Result of a diameter computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diameter {
    /// Graph is connected with the given diameter.
    Finite(u32),
    /// Graph is disconnected (diameter is infinite).
    Infinite,
}

impl Diameter {
    /// Returns the finite value, or `None` if the graph was disconnected.
    pub fn finite(self) -> Option<u32> {
        match self {
            Diameter::Finite(d) => Some(d),
            Diameter::Infinite => None,
        }
    }
}

/// Exact diameter via one BFS per node. O(n · (n + m)): fine for the snapshot
/// sizes used in tests and calibration, too slow for the largest sweeps (use
/// [`double_sweep_lower_bound`] or [`estimate_by_sampling`] there).
pub fn exact<G: Graph + ?Sized>(g: &G) -> Diameter {
    let n = g.num_nodes();
    if n == 0 {
        return Diameter::Finite(0);
    }
    let mut best = 0u32;
    for u in 0..n {
        let (ecc, reached) = bfs::eccentricity(g, u as Node);
        if reached != n {
            return Diameter::Infinite;
        }
        best = best.max(ecc);
    }
    Diameter::Finite(best)
}

/// Double-sweep lower bound: BFS from `start`, then BFS again from the
/// farthest node found. Exact on trees, usually very tight on geometric
/// graphs. Returns `Infinite` if the graph is disconnected (detected from the
/// first sweep).
pub fn double_sweep_lower_bound<G: Graph + ?Sized>(g: &G, start: Node) -> Diameter {
    let n = g.num_nodes();
    if n == 0 {
        return Diameter::Finite(0);
    }
    let d1 = bfs::distances(g, start);
    let mut far = start;
    let mut far_d = 0u32;
    let mut reached = 0usize;
    for (v, &d) in d1.iter().enumerate() {
        if d == bfs::UNREACHABLE {
            continue;
        }
        reached += 1;
        if d > far_d {
            far_d = d;
            far = v as Node;
        }
    }
    if reached != n {
        return Diameter::Infinite;
    }
    let (ecc, _) = bfs::eccentricity(g, far);
    Diameter::Finite(ecc.max(far_d))
}

/// Estimates the diameter as the maximum eccentricity over `samples` random
/// start nodes (always a lower bound on the true diameter). Returns `Infinite`
/// if any sampled BFS fails to reach the whole graph.
pub fn estimate_by_sampling<G: Graph + ?Sized, R: Rng>(
    g: &G,
    samples: usize,
    rng: &mut R,
) -> Diameter {
    let n = g.num_nodes();
    if n == 0 {
        return Diameter::Finite(0);
    }
    let mut best = 0u32;
    for _ in 0..samples.max(1) {
        let s = rng.gen_range(0..n) as Node;
        let (ecc, reached) = bfs::eccentricity(g, s);
        if reached != n {
            return Diameter::Infinite;
        }
        best = best.max(ecc);
    }
    Diameter::Finite(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, AdjacencyList};
    use rand::SeedableRng;

    #[test]
    fn exact_diameters_of_known_graphs() {
        assert_eq!(exact(&generators::path(10)), Diameter::Finite(9));
        assert_eq!(exact(&generators::cycle(10)), Diameter::Finite(5));
        assert_eq!(exact(&generators::cycle(11)), Diameter::Finite(5));
        assert_eq!(exact(&generators::complete(7)), Diameter::Finite(1));
        assert_eq!(exact(&generators::star(9)), Diameter::Finite(2));
        assert_eq!(exact(&AdjacencyList::new(1)), Diameter::Finite(0));
        assert_eq!(exact(&AdjacencyList::new(0)), Diameter::Finite(0));
    }

    #[test]
    fn exact_detects_disconnection() {
        let g = AdjacencyList::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(exact(&g), Diameter::Infinite);
        assert_eq!(exact(&g).finite(), None);
    }

    #[test]
    fn double_sweep_is_exact_on_paths_and_trees() {
        let g = generators::path(20);
        assert_eq!(double_sweep_lower_bound(&g, 7), Diameter::Finite(19));
        // star from a leaf
        let s = generators::star(5);
        assert_eq!(double_sweep_lower_bound(&s, 2), Diameter::Finite(2));
    }

    #[test]
    fn double_sweep_never_exceeds_exact() {
        let g = generators::grid2d(5, 4);
        let exact_d = exact(&g).finite().unwrap();
        for start in 0..20u32 {
            let ds = double_sweep_lower_bound(&g, start).finite().unwrap();
            assert!(ds <= exact_d);
            assert!(ds * 2 >= exact_d, "double sweep is a 2-approximation");
        }
    }

    #[test]
    fn sampling_estimate_bounded_by_exact() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let g = generators::grid2d(6, 6);
        let exact_d = exact(&g).finite().unwrap();
        let est = estimate_by_sampling(&g, 10, &mut rng).finite().unwrap();
        assert!(est <= exact_d);
        assert!(est >= exact_d / 2);
    }

    #[test]
    fn sampling_detects_disconnection() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let g = AdjacencyList::from_edges(5, [(0, 1), (1, 2)]);
        assert_eq!(estimate_by_sampling(&g, 3, &mut rng), Diameter::Infinite);
    }
}
