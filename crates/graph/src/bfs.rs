//! Breadth-first search primitives.
//!
//! BFS drives three things in this workspace: distances on static snapshots
//! (the "static diameter" the paper compares flooding against), eccentricities
//! for lower-bound sanity checks, and the reference implementation that the
//! flooding engine on a *frozen* evolving graph must agree with.

use crate::{visit_neighbors, Graph, Node};

/// Distance label meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Computes hop distances from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`].
pub fn distances<G: Graph + ?Sized>(g: &G, source: Node) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::with_capacity(n.min(1024));
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        visit_neighbors(g, u, |v| {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        });
    }
    dist
}

/// Eccentricity of `source`: the maximum finite distance to any reachable
/// node, together with the number of reachable nodes (including `source`).
pub fn eccentricity<G: Graph + ?Sized>(g: &G, source: Node) -> (u32, usize) {
    let dist = distances(g, source);
    let mut ecc = 0u32;
    let mut reached = 0usize;
    for &d in &dist {
        if d != UNREACHABLE {
            reached += 1;
            ecc = ecc.max(d);
        }
    }
    (ecc, reached)
}

/// Nodes reachable from `source`, including `source` itself.
pub fn reachable_count<G: Graph + ?Sized>(g: &G, source: Node) -> usize {
    eccentricity(g, source).1
}

/// Runs BFS level by level and returns, for each round `t ≥ 0`, the number of
/// nodes at distance exactly `t` from the source.
///
/// On a *static* graph this is exactly the per-step growth of the flooding
/// frontier, so it doubles as the reference trace for flooding tests.
pub fn level_sizes<G: Graph + ?Sized>(g: &G, source: Node) -> Vec<usize> {
    let dist = distances(g, source);
    let max_d = dist
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .max()
        .copied()
        .unwrap_or(0);
    let mut levels = vec![0usize; max_d as usize + 1];
    for &d in &dist {
        if d != UNREACHABLE {
            levels[d as usize] += 1;
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_path() {
        let g = generators::path(5);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = distances(&g, 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn distances_with_unreachable() {
        let g = crate::AdjacencyList::from_edges(4, [(0, 1)]);
        let d = distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(reachable_count(&g, 0), 2);
    }

    #[test]
    fn eccentricity_of_star_center_and_leaf() {
        let g = generators::star(6); // center + 6 leaves = 7 nodes
        assert_eq!(eccentricity(&g, 0), (1, 7));
        assert_eq!(eccentricity(&g, 3), (2, 7));
    }

    #[test]
    fn level_sizes_on_cycle() {
        let g = generators::cycle(6);
        let levels = level_sizes(&g, 0);
        assert_eq!(levels, vec![1, 2, 2, 1]);
        assert_eq!(levels.iter().sum::<usize>(), 6);
    }

    #[test]
    fn level_sizes_singleton() {
        let g = crate::AdjacencyList::new(3);
        let levels = level_sizes(&g, 1);
        assert_eq!(levels, vec![1]);
    }
}
