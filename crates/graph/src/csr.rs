//! Compressed sparse row (CSR) representation of an undirected graph.
//!
//! A frozen snapshot that is queried many times (expansion profiling, repeated
//! BFS for diameters) benefits from the contiguous neighbor storage of CSR:
//! a single `Vec<Node>` of column indices plus an offset array, giving
//! cache-friendly neighbor scans and no per-node allocation.

use crate::{AdjacencyList, Graph, Node};

/// Immutable CSR graph.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<Node>,
    num_edges: usize,
}

impl Csr {
    /// Builds a CSR graph with `n` nodes from an edge list.
    ///
    /// Self-loops are dropped. Duplicate edges are kept as given (callers that
    /// need a simple graph should deduplicate first); all generators in this
    /// workspace produce unique edges.
    pub fn from_edges(n: usize, edges: &[(Node, Node)]) -> Self {
        let mut deg = vec![0usize; n];
        let mut kept = 0usize;
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
            deg[u as usize] += 1;
            deg[v as usize] += 1;
            kept += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as Node; 2 * kept];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            num_edges: kept,
        }
    }

    /// Builds a CSR graph with `n` nodes from an edge list, **dropping
    /// duplicate edges** (and self-loops) so the result is guaranteed simple.
    ///
    /// This is the constructor consumers that assume simple graphs — the
    /// diameter and expansion probes, whose math is over simple snapshots —
    /// should freeze edge lists through: [`Csr::from_edges`] keeps duplicates
    /// silently (its documented caveat), which double-counts degrees and
    /// skews expansion ratios. Duplicates are detected on the canonical
    /// `(min, max)` form; the first occurrence wins, so neighbor order is the
    /// first-occurrence order of the input stream. In debug builds the
    /// result is additionally asserted to be simple.
    pub fn from_edges_dedup(n: usize, edges: &[(Node, Node)]) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        let filtered: Vec<(Node, Node)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && seen.insert((u.min(v), u.max(v))))
            .collect();
        let csr = Csr::from_edges(n, &filtered);
        debug_assert!(
            (0..n as Node).all(|u| {
                let nb = csr.neighbors(u);
                !nb.contains(&u) && (1..nb.len()).all(|i| !nb[..i].contains(&nb[i]))
            }),
            "from_edges_dedup produced a non-simple graph"
        );
        csr
    }

    /// Converts an adjacency list into CSR form.
    pub fn from_adjacency(g: &AdjacencyList) -> Self {
        let n = g.num_nodes();
        let mut offsets = vec![0usize; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + g.neighbors(u as Node).len();
        }
        let mut targets = Vec::with_capacity(offsets[n]);
        for u in 0..n {
            targets.extend_from_slice(g.neighbors(u as Node));
        }
        Csr {
            offsets,
            targets,
            num_edges: g.num_edges(),
        }
    }

    /// Borrows the neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: Node) -> &[Node] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }
}

impl From<&AdjacencyList> for Csr {
    fn from(g: &AdjacencyList) -> Self {
        Csr::from_adjacency(g)
    }
}

impl Graph for Csr {
    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn for_each_neighbor(&self, u: Node, f: &mut dyn FnMut(Node)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }

    fn degree(&self, u: Node) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).contains(&v)
    }

    fn neighbor_slice(&self, u: Node) -> Option<&[Node]> {
        Some(self.neighbors(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn csr_matches_adjacency() {
        let adj = generators::cycle(10);
        let csr = Csr::from_adjacency(&adj);
        assert_eq!(csr.num_nodes(), 10);
        assert_eq!(csr.num_edges(), 10);
        for u in 0..10u32 {
            let mut a = adj.neighbors(u).to_vec();
            let mut c = csr.neighbors(u).to_vec();
            a.sort_unstable();
            c.sort_unstable();
            assert_eq!(a, c, "neighbors of {u}");
            assert_eq!(Graph::degree(&csr, u), 2);
        }
    }

    #[test]
    fn csr_from_edges_drops_self_loops() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 1), (1, 2)]);
        assert_eq!(csr.num_edges(), 2);
        assert_eq!(Graph::degree(&csr, 1), 2);
        assert!(csr.has_edge(0, 1));
        assert!(!csr.has_edge(0, 2));
    }

    #[test]
    fn from_edges_dedup_drops_duplicates_and_self_loops() {
        let edges = [(0u32, 1u32), (1, 0), (0, 1), (2, 2), (1, 2), (2, 1)];
        let naive = Csr::from_edges(3, &edges);
        assert_eq!(naive.num_edges(), 5, "from_edges keeps duplicates");
        let clean = Csr::from_edges_dedup(3, &edges);
        assert_eq!(clean.num_edges(), 2);
        assert_eq!(Graph::degree(&clean, 1), 2);
        assert_eq!(clean.neighbors(1), &[0, 2], "first occurrence wins");
        assert!(clean.has_edge(0, 1) && clean.has_edge(1, 2));
        assert!(!clean.has_edge(0, 2));
        // Already-simple input is passed through unchanged.
        let simple = [(0u32, 1u32), (1, 2)];
        let a = Csr::from_edges(3, &simple);
        let b = Csr::from_edges_dedup(3, &simple);
        for u in 0..3u32 {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn csr_empty_graph() {
        let csr = Csr::from_edges(4, &[]);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 0);
        for u in 0..4u32 {
            assert!(csr.neighbors(u).is_empty());
        }
    }
}
