//! Whole-graph metrics: density, average degree, clustering, and a compact
//! snapshot summary used by experiment logs.

use crate::{connectivity, degree, Graph, Node};

/// Edge density: `m / C(n, 2)`. Zero for graphs with fewer than two nodes.
pub fn density<G: Graph + ?Sized>(g: &G) -> f64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    g.num_edges() as f64 / pairs
}

/// Average degree `2m / n`. Zero for the empty graph.
pub fn average_degree<G: Graph + ?Sized>(g: &G) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / n as f64
}

/// Global clustering coefficient (transitivity): `3 · #triangles / #wedges`.
/// Returns 0 when the graph has no wedge.
pub fn global_clustering<G: Graph + ?Sized>(g: &G) -> f64 {
    let n = g.num_nodes();
    let mut wedges = 0u64;
    let mut closed = 0u64; // counts each triangle 3 times (once per apex) x ordered pair / 2
    for u in 0..n as Node {
        let nb = g.neighbors_vec(u);
        let d = nb.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                if g.has_edge(nb[i], nb[j]) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

/// Compact summary of a snapshot, convenient for experiment logging.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotSummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated nodes.
    pub isolated: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

/// Builds a [`SnapshotSummary`].
pub fn summarize<G: Graph + ?Sized>(g: &G) -> SnapshotSummary {
    let comps = connectivity::connected_components(g);
    let ds = degree::degree_stats(g);
    SnapshotSummary {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        average_degree: average_degree(g),
        max_degree: ds.as_ref().map_or(0, |d| d.max),
        isolated: ds.as_ref().map_or(0, |d| d.isolated),
        components: comps.count(),
        largest_component: comps.largest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, AdjacencyList};

    #[test]
    fn density_extremes() {
        assert_eq!(density(&generators::complete(6)), 1.0);
        assert_eq!(density(&AdjacencyList::new(6)), 0.0);
        assert_eq!(density(&AdjacencyList::new(1)), 0.0);
    }

    #[test]
    fn average_degree_of_cycle_is_two() {
        assert_eq!(average_degree(&generators::cycle(9)), 2.0);
        assert_eq!(average_degree(&AdjacencyList::new(0)), 0.0);
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        assert!((global_clustering(&generators::complete(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_and_tree_is_zero() {
        assert_eq!(global_clustering(&generators::star(6)), 0.0);
        assert_eq!(global_clustering(&generators::path(6)), 0.0);
    }

    #[test]
    fn summary_of_disconnected_graph() {
        let g = AdjacencyList::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let s = summarize(&g);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 3);
        assert_eq!(s.components, 3);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.max_degree, 2);
    }
}
